"""Async execution backend benchmark: real-latency makespans, end to end.

Until this PR every measured speedup in the repo was *modelled* — the
executors fanned out against zero-latency simulated clients and the
critical path was computed, not clocked.  This bench runs the new
transport stack with **real sleeps** and clocks the wall:

* **Batch makespan** — one batch of independent requests through a
  :class:`~repro.fm.transport.TransportFMClient` over a
  :class:`~repro.fm.transport.SimulatedHTTPTransport` (latency jitter,
  429s with ``Retry-After``, 5xx — the retry schedule runs for real),
  executed serially, on the thread pool, and on the asyncio backend at
  concurrency 1–16.  Asserted: the async backend at concurrency 8 cuts
  the measured makespan ≥2× vs serial.
* **Physical stage overlap** — the same SMARTFEAT search through
  stateless transport clients under ``stage_plan="serial"`` vs
  ``"overlap"``: the scheduler detects the stateless clients and fans
  the independent post-unary stages out through the shared event loop.
  Asserted: the overlap run reports ``physical_overlap`` and its
  measured per-stage windows genuinely intersect.

``python benchmarks/bench_async.py`` runs standalone and writes
``BENCH_async.json`` at the repo root; ``--smoke`` runs a reduced
version of both assertions (the CI gate).
"""

import json
import sys
import time
from pathlib import Path

from repro.datasets import load_dataset
from repro.eval import physical_overlap_report, render_table
from repro.fm import (
    AsyncFMExecutor,
    FMRequest,
    RetryPolicy,
    SerialExecutor,
    SimulatedHTTPTransport,
    ThreadPoolFMExecutor,
    TransportFMClient,
)

CONCURRENCIES = (1, 2, 4, 8, 16)
N_REQUESTS = 48
BASE_LATENCY_S = 0.03
JITTER_S = 0.01
RETRY = dict(max_attempts=4, backoff_s=0.01, backoff_multiplier=2.0, max_backoff_s=0.1)


def _make_client(seed: int = 7) -> TransportFMClient:
    return TransportFMClient(
        SimulatedHTTPTransport(
            base_latency_s=BASE_LATENCY_S,
            jitter_s=JITTER_S,
            rate_limit_rate=0.04,
            server_error_rate=0.02,
            retry_after_s=0.02,
            seed=seed,
        )
    )


def _measure(executor, n_requests: int) -> float:
    """Wall seconds for one batch; asserts every request succeeded."""
    client = _make_client()
    requests = [FMRequest(f"bench request {i}") for i in range(n_requests)]
    started = time.perf_counter()
    results = executor.run(client, requests)
    wall = time.perf_counter() - started
    failed = [r for r in results if not r.ok]
    assert not failed, f"{len(failed)} requests failed after retries: {failed[:3]}"
    assert client.ledger.n_calls == n_requests
    return wall


def run_batch_benchmark(
    concurrencies=CONCURRENCIES, n_requests: int = N_REQUESTS
) -> dict:
    """Serial vs thread vs async real-latency batch makespans."""
    retry = RetryPolicy(**RETRY)
    serial_wall = _measure(SerialExecutor(retry=retry), n_requests)
    points = []
    for concurrency in concurrencies:
        with ThreadPoolFMExecutor(concurrency, retry=retry) as pool:
            thread_wall = _measure(pool, n_requests)
        with AsyncFMExecutor(concurrency, retry=retry) as loop:
            async_wall = _measure(loop, n_requests)
        points.append(
            {
                "concurrency": concurrency,
                "thread_wall_s": round(thread_wall, 3),
                "async_wall_s": round(async_wall, 3),
                "thread_speedup": round(serial_wall / thread_wall, 2),
                "async_speedup": round(serial_wall / async_wall, 2),
            }
        )
    by_concurrency = {p["concurrency"]: p for p in points}
    return {
        "n_requests": n_requests,
        "base_latency_s": BASE_LATENCY_S,
        "jitter_s": JITTER_S,
        "serial_wall_s": round(serial_wall, 3),
        "points": points,
        "async_speedup_at_8": by_concurrency.get(8, points[-1])["async_speedup"],
    }


def render_batch_table(payload: dict) -> str:
    rows = [
        [
            str(p["concurrency"]),
            f"{payload['serial_wall_s']:.2f}",
            f"{p['thread_wall_s']:.2f}",
            f"{p['async_wall_s']:.2f}",
            f"{p['thread_speedup']:.1f}x",
            f"{p['async_speedup']:.1f}x",
        ]
        for p in payload["points"]
    ]
    return render_table(
        ["concurrency", "serial (s)", "thread (s)", "async (s)", "thread", "async"],
        rows,
    )


def run_overlap_benchmark(dataset: str = "heart", n_rows: int = 250) -> dict:
    """Measured physical stage fan-out against stateless transport clients."""
    return physical_overlap_report(load_dataset(dataset, n_rows=n_rows))


def render_overlap_table(payload: dict) -> str:
    rows = [
        [
            payload["dataset"],
            f"{payload['wall_serial_s']:.2f}",
            f"{payload['wall_overlap_s']:.2f}",
            f"{payload['measured_speedup']:.2f}x",
            "yes" if payload["physical_overlap"] else "NO",
            "; ".join("+".join(pair) for pair in payload["stages_overlapped"]) or "-",
        ]
    ]
    return render_table(
        [
            "dataset",
            "serial plan (s)",
            "overlap plan (s)",
            "speedup",
            "physical",
            "measured overlaps",
        ],
        rows,
    )


def assert_batch(payload: dict, min_speedup: float = 2.0) -> None:
    speedup = payload["async_speedup_at_8"]
    assert speedup >= min_speedup, (
        f"async backend at concurrency 8 below {min_speedup}x vs serial: {speedup}x"
    )


def assert_overlap(payload: dict) -> None:
    assert payload["physical_overlap"], payload
    assert not payload["serial_plan_physical"], payload
    assert payload["stages_overlapped"], (
        "no post-unary stages physically overlapped: "
        f"{payload['schedule']['nodes']}"
    )


def run_smoke() -> int:
    """CI gate: reduced sizes, same assertions."""
    batch = run_batch_benchmark(concurrencies=(8,), n_requests=24)
    assert_batch(batch)
    overlap = run_overlap_benchmark(n_rows=150)
    assert_overlap(overlap)
    print(
        "async smoke ok: "
        f"batch speedup {batch['async_speedup_at_8']:.1f}x at concurrency 8, "
        f"physical stage overlap {overlap['stages_overlapped']} "
        f"({overlap['measured_speedup']:.2f}x measured)"
    )
    return 0


def test_async_batch_speedup(results_dir):
    """Async executor: ≥2x lower measured batch makespan at concurrency 8."""
    from benchmarks.conftest import write_result

    payload = run_batch_benchmark()
    write_result(results_dir, "async_batch.txt", render_batch_table(payload))
    assert_batch(payload)


def test_physical_stage_overlap(results_dir):
    """Stateless clients: overlap plan physically fans stages out."""
    from benchmarks.conftest import write_result

    payload = run_overlap_benchmark()
    write_result(results_dir, "async_overlap.txt", render_overlap_table(payload))
    assert_overlap(payload)


def main() -> int:
    if "--smoke" in sys.argv:
        return run_smoke()
    batch = run_batch_benchmark()
    print(render_batch_table(batch))
    overlap = run_overlap_benchmark()
    print()
    print(render_overlap_table(overlap))
    out = Path(__file__).resolve().parent.parent / "BENCH_async.json"
    out.write_text(
        json.dumps({"batch": batch, "stage_overlap": overlap}, indent=2) + "\n"
    )
    print(f"wrote {out}")
    assert_batch(batch)
    assert_overlap(overlap)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
