"""Data-plane benchmark: element loops vs numpy kernels at 10⁴–10⁶ rows.

PRs 1–2 made the FM control plane concurrent; this benchmark tracks the
*data* plane — what it costs to realise features once the FM has answered.
Four operations are timed on synthetic tables
(:func:`repro.datasets.synth.make_synthetic_frame`):

* ``groupby_agg`` — the paper's high-order idiom
  ``df.groupby(col)[val].transform("mean")`` plus a keyed ``agg``;
* ``generated_transform`` — applying FM-generated transform sources
  (log-transform and masked division) through the sandbox;
* ``feature_matrix`` — the evaluation harness's factorise/impute step;
* ``fit_transform`` — the end-to-end pipeline against a zero-latency
  simulated client (vectorized path only; the loop path lives on in
  ``repro.dataframe.reference`` for the per-op comparisons).

Each compared op runs both the retained loop reference and the vectorized
path, asserts the outputs match (exact dtypes and missingness; float
accumulations within a few ulp — summation order differs), and records
the speedup.  ``python benchmarks/bench_dataplane.py`` runs standalone
and writes ``BENCH_dataplane.json`` at the repo root;  ``--smoke`` runs a
small row count and only the equivalence assertions (the CI regression
gate).
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.sandbox import run_transform
from repro.datasets.synth import make_synthetic_bundle, make_synthetic_frame
from repro.dataframe import DataFrame
from repro.dataframe.reference import (
    FLOAT_RTOL,
    REFERENCE_TRANSFORM_SOURCES,
    assert_frame_equivalent,
    assert_series_equivalent,
    reference_feature_matrix,
    reference_groupby_agg,
    reference_groupby_transform,
)
from repro.eval.harness import feature_matrix
from repro.fm.codegen import generate_transform_source
from repro.fm.knowledge import KnowledgeStore

ROW_COUNTS = (10_000, 100_000, 1_000_000)
SMOKE_ROW_COUNTS = (2_000,)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


# ----------------------------------------------------------------------
# Op: groupby aggregation (transform idiom + keyed agg)
# ----------------------------------------------------------------------
def _bench_groupby_keys(frame: DataFrame, transform_key: str, agg_key: str) -> dict:
    def reference():
        t = reference_groupby_transform(frame, transform_key, "Income", "mean")
        a = reference_groupby_agg(frame, agg_key, "Balance", "sum")
        return t, a

    def vectorized():
        t = frame.groupby(transform_key)["Income"].transform("mean")
        a = frame.groupby(agg_key)["Balance"].agg("sum")
        return t, a

    (ref_t, ref_a), ref_s = _timed(reference)
    (new_t, new_a), new_s = _timed(vectorized)
    assert_series_equivalent(new_t, ref_t, f"groupby.transform[{transform_key}]")
    assert_frame_equivalent(new_a, ref_a, f"groupby.agg[{agg_key}]")
    return {"reference_s": ref_s, "vectorized_s": new_s}


def bench_groupby(frame: DataFrame) -> dict:
    """Integer group keys (segment ids): the fully radix-sorted fast path."""
    return _bench_groupby_keys(frame, "SegmentId", "Age")


def bench_groupby_str(frame: DataFrame) -> dict:
    """String group keys: byte-packed sort keys (partial acceleration)."""
    return _bench_groupby_keys(frame, "Segment", "City")


# ----------------------------------------------------------------------
# Op: generated-transform application through the sandbox
# ----------------------------------------------------------------------
def _generated_sources() -> list[tuple[str, str, str]]:
    """(label, reference_source, vectorized_source) per generated feature."""
    knowledge = KnowledgeStore()
    log_ref = REFERENCE_TRANSFORM_SOURCES["log_transform"].format(col="Income")
    log_new = generate_transform_source(
        "log_Income", ["Income"], "log_transform: squash the tail", knowledge
    )
    div_ref = REFERENCE_TRANSFORM_SOURCES["binary_div"].format(a="Income", b="Balance")
    div_new = generate_transform_source(
        "Income_per_Balance", ["Income", "Balance"], "binary[/]: ratio", knowledge
    )
    return [("log_transform", log_ref, log_new), ("masked_division", div_ref, div_new)]


def bench_generated_transform(frame: DataFrame) -> dict:
    sources = _generated_sources()
    ref_s = new_s = 0.0
    for label, ref_src, new_src in sources:
        ref_out, dt = _timed(lambda s=ref_src: run_transform(s, frame))
        ref_s += dt
        new_out, dt = _timed(lambda s=new_src: run_transform(s, frame))
        new_s += dt
        assert_series_equivalent(new_out, ref_out, f"generated.{label}")
    return {"reference_s": ref_s, "vectorized_s": new_s}


# ----------------------------------------------------------------------
# Op: evaluation-harness feature matrix
# ----------------------------------------------------------------------
def bench_feature_matrix(frame: DataFrame) -> dict:
    (rX, ry, rnames), ref_s = _timed(lambda: reference_feature_matrix(frame, "Target"))
    (nX, ny, nnames), new_s = _timed(lambda: feature_matrix(frame, "Target"))
    assert nnames == rnames, "feature_matrix: names diverge"
    assert nX.dtype == rX.dtype and nX.shape == rX.shape
    assert np.allclose(nX, rX, rtol=FLOAT_RTOL, atol=0.0, equal_nan=True)
    assert (ny == ry).all()
    return {"reference_s": ref_s, "vectorized_s": new_s}


# ----------------------------------------------------------------------
# Op: end-to-end fit_transform with a zero-latency simulated client
# ----------------------------------------------------------------------
def bench_fit_transform(n_rows: int, seed: int = 0) -> dict:
    from repro.core import SmartFeat
    from repro.fm import SimulatedFM

    bundle = make_synthetic_bundle(n_rows, seed=seed)
    pipeline = SmartFeat(SimulatedFM(seed=seed))
    result, wall_s = _timed(
        lambda: pipeline.fit_transform(
            bundle["frame"],
            bundle["target"],
            descriptions=bundle["descriptions"],
            title=bundle["title"],
        )
    )
    return {
        "wall_s": round(wall_s, 3),
        "rows_per_s": round(n_rows / wall_s),
        "n_new_features": len(result.new_features),
        "dataplane": result.fm_usage["execution"]["dataplane"],
    }


COMPARED_OPS = {
    "groupby_agg": bench_groupby,
    "groupby_agg_str": bench_groupby_str,
    "generated_transform": bench_generated_transform,
    "feature_matrix": bench_feature_matrix,
}


def run(row_counts=ROW_COUNTS, fit_transform_rows=(10_000, 100_000), seed: int = 0) -> dict:
    from conftest import peak_rss_mb

    payload: dict = {"row_counts": list(row_counts), "ops": {}, "fit_transform": {}}
    for n_rows in row_counts:
        frame = make_synthetic_frame(n_rows, seed=seed)
        for op, bench in COMPARED_OPS.items():
            cell = bench(frame)
            cell["speedup"] = round(cell["reference_s"] / cell["vectorized_s"], 2)
            cell["reference_s"] = round(cell["reference_s"], 4)
            cell["vectorized_s"] = round(cell["vectorized_s"], 4)
            payload["ops"].setdefault(op, {})[str(n_rows)] = cell
            print(
                f"{op:>20} @ {n_rows:>9,} rows: "
                f"loop {cell['reference_s']:8.4f}s  numpy {cell['vectorized_s']:8.4f}s  "
                f"{cell['speedup']:6.1f}x"
            )
    for n_rows in fit_transform_rows:
        cell = bench_fit_transform(n_rows, seed=seed)
        payload["fit_transform"][str(n_rows)] = cell
        print(
            f"{'fit_transform':>20} @ {n_rows:>9,} rows: "
            f"{cell['wall_s']:8.3f}s  ({cell['rows_per_s']:,} rows/s, "
            f"{cell['n_new_features']} features)"
        )
    payload["peak_rss_mb"] = round(peak_rss_mb(), 1)
    print(f"peak RSS: {payload['peak_rss_mb']} MB")
    return payload


def smoke() -> int:
    """Equivalence-only pass at a small row count (the CI regression gate)."""
    for n_rows in SMOKE_ROW_COUNTS:
        frame = make_synthetic_frame(n_rows, seed=0)
        for op, bench in COMPARED_OPS.items():
            bench(frame)  # raises on any vectorized/reference divergence
            print(f"smoke {op} @ {n_rows} rows: vectorized == reference")
        cell = bench_fit_transform(n_rows, seed=0)
        assert cell["n_new_features"] > 0, "pipeline produced no features"
        print(f"smoke fit_transform @ {n_rows} rows: {cell['n_new_features']} features")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small rows, equivalence assertions only"
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke()
    payload = run()
    at_100k = {op: payload["ops"][op]["100000"]["speedup"] for op in COMPARED_OPS}
    out = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    for op in ("groupby_agg", "generated_transform"):
        assert at_100k[op] >= 10.0, f"{op} speedup below 10x at 1e5 rows: {at_100k[op]}"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# Pytest entry points (benchmarks/ is also collected as a suite)
# ----------------------------------------------------------------------
def test_dataplane_equivalence_smoke():
    """Vectorized paths match the loop reference on the synthetic table."""
    assert smoke() == 0
