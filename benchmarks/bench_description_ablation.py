"""Section 4.2 "Impact of Feature Descriptions" — the names-only ablation.

The Tennis feature names are opaque abbreviations (``FSW.1``), so
removing the data-card descriptions starves the FM of context and the
engineered features degrade: fewer features generated and a lower
average AUC than the descriptions-on run.
"""

from benchmarks.conftest import write_result
from repro.core import SmartFeat
from repro.datasets import load_dataset
from repro.eval import evaluate_models, render_table
from repro.fm import SimulatedFM

MODELS = ("lr", "nb", "rf")


def _run(bundle, with_descriptions: bool):
    source = bundle if with_descriptions else bundle.names_only()
    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="random_forest",
    )
    result = tool.fit_transform(
        source.frame,
        target=source.target,
        descriptions=source.descriptions,
        title=source.title,
        target_description=source.target_description,
    )
    aucs = evaluate_models(result.frame, source.target, models=MODELS, n_splits=3)
    return result, aucs


def test_description_ablation(benchmark, results_dir):
    bundle = load_dataset("tennis", n_rows=800)
    initial = evaluate_models(bundle.frame, bundle.target, models=MODELS, n_splits=3)

    with_result, with_aucs = benchmark.pedantic(
        lambda: _run(bundle, with_descriptions=True), rounds=1, iterations=1
    )
    without_result, without_aucs = _run(bundle, with_descriptions=False)

    def avg(aucs):
        return sum(aucs.values()) / len(aucs)

    rows = [
        ["initial", "-", *(f"{initial[m]:.2f}" for m in MODELS), f"{avg(initial):.2f}"],
        [
            "with descriptions",
            str(len(with_result.new_features)),
            *(f"{with_aucs[m]:.2f}" for m in MODELS),
            f"{avg(with_aucs):.2f}",
        ],
        [
            "names only",
            str(len(without_result.new_features)),
            *(f"{without_aucs[m]:.2f}" for m in MODELS),
            f"{avg(without_aucs):.2f}",
        ],
    ]
    table = render_table(["Input", "# new feats", *MODELS, "Avg"], rows)
    write_result(results_dir, "description_ablation_tennis.txt", table)

    # Fewer features without context, and a lower average AUC.
    assert len(without_result.new_features) < len(with_result.new_features)
    assert avg(without_aucs) < avg(with_aucs)
