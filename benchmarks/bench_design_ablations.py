"""Design-choice ablations called out in DESIGN.md §5.

Three knobs of SMARTFEAT itself, each exercised on a dataset where the
mechanism matters:

* **sampling budget** (west_nile): more samples → more features until
  the candidate space saturates;
* **validation screens** (diabetes): disabling the null/constant screens
  lets low-quality features through;
* **drop heuristic** (adult): enabling it removes superseded originals
  without hurting AUC.
"""

from benchmarks.conftest import write_result
from repro.core import SmartFeat, ValidationConfig
from repro.datasets import load_dataset
from repro.eval import evaluate_models, render_table
from repro.fm import SimulatedFM


def _tool(**kwargs):
    return SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="random_forest",
        **kwargs,
    )


def _fit(bundle, tool):
    return tool.fit_transform(
        bundle.frame,
        target=bundle.target,
        descriptions=bundle.descriptions,
        title=bundle.title,
        target_description=bundle.target_description,
    )


def test_sampling_budget_ablation(benchmark, results_dir):
    bundle = load_dataset("west_nile", n_rows=800)
    outcomes = {}

    def run_all():
        for budget in (2, 5, 10, 20):
            result = _fit(bundle, _tool(sampling_budget=budget))
            outcomes[budget] = len(result.new_features)
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[str(b), str(n)] for b, n in outcomes.items()]
    write_result(
        results_dir,
        "ablation_sampling_budget.txt",
        render_table(["Sampling budget", "# features"], rows),
    )
    assert outcomes[2] <= outcomes[10]
    assert outcomes[20] >= outcomes[5]


def test_validation_screens_ablation(benchmark, results_dir):
    bundle = load_dataset("diabetes", n_rows=700)

    def run_both():
        screened = _fit(bundle, _tool())
        unscreened = _fit(
            bundle,
            _tool(
                validation=ValidationConfig(
                    max_null_fraction=1.0, reject_constant=False, max_dummy_columns=10**6
                )
            ),
        )
        return screened, unscreened

    screened, unscreened = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ["screens on", str(len(screened.new_columns)), str(len(screened.rejections))],
        ["screens off", str(len(unscreened.new_columns)), str(len(unscreened.rejections))],
    ]
    write_result(
        results_dir,
        "ablation_validation_screens.txt",
        render_table(["Variant", "# kept columns", "# rejections"], rows),
    )
    # The screens reject something on diabetes (e.g. the half-null
    # guarded glucose/insulin ratio); disabling them keeps more columns.
    assert len(unscreened.new_columns) >= len(screened.new_columns)
    assert len(screened.rejections) > len(unscreened.rejections)


def test_drop_heuristic_ablation(benchmark, results_dir):
    bundle = load_dataset("adult", n_rows=900)

    def run_both():
        kept = _fit(bundle, _tool(drop_heuristic=False))
        dropped = _fit(bundle, _tool(drop_heuristic=True))
        return kept, dropped

    kept, dropped = benchmark.pedantic(run_both, rounds=1, iterations=1)
    auc_kept = evaluate_models(kept.frame, bundle.target, models=("rf",), n_splits=3)["rf"]
    auc_dropped = evaluate_models(dropped.frame, bundle.target, models=("rf",), n_splits=3)["rf"]
    rows = [
        ["heuristic off", "0", f"{auc_kept:.2f}"],
        ["heuristic on", str(len(dropped.dropped)), f"{auc_dropped:.2f}"],
    ]
    write_result(
        results_dir,
        "ablation_drop_heuristic.txt",
        render_table(["Variant", "# originals dropped", "RF AUC"], rows),
    )
    assert dropped.dropped, "heuristic should fire on adult"
    # Dropping superseded originals should not cost material AUC.
    assert auc_dropped > auc_kept - 2.5
