"""Section 4.2 "Efficiency" — modelled full-scale runtimes and DNFs.

From the shared sweep: per method × dataset, the modelled full-scale
time (working-sample wall time extrapolated to Table 3 row counts, plus
simulated FM latency; see EXPERIMENTS.md).  Shape assertions mirror the
paper's findings:

* SMARTFEAT and Featuretools finish well within budget everywhere;
* AutoFeat exhausts the budget on the large datasets (Bank, Adult);
* CAAFE is slower than SMARTFEAT in general, with its DNN-validated runs
  timing out on large datasets.
"""

from benchmarks.conftest import write_result
from repro.eval import render_table


def _cell(outcome) -> str:
    if outcome.status == "dnf" and not outcome.auc_by_model:
        return "DNF"
    dnf_models = [m for m, s in outcome.model_status.items() if s == "dnf"]
    suffix = f" (DNF: {','.join(dnf_models)})" if dnf_models else ""
    return f"{outcome.modelled_s:,.0f}s{suffix}"


def test_efficiency_runtimes(benchmark, paper_sweep, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # table is derived, not re-run

    datasets = paper_sweep.config.datasets
    methods = [m for m in paper_sweep.config.methods if m != "initial"]
    rows = []
    for method in methods:
        rows.append(
            [method] + [_cell(paper_sweep.get(dataset, method)) for dataset in datasets]
        )
    table = render_table(["Method", *datasets], rows)
    write_result(results_dir, "efficiency_runtimes.txt", table)

    limit = paper_sweep.config.time_limit_s

    # SMARTFEAT and Featuretools: no DNF anywhere, comfortably inside budget.
    for method in ("smartfeat", "featuretools"):
        for dataset in datasets:
            outcome = paper_sweep.get(dataset, method)
            assert outcome.status in ("ok", "partial"), (method, dataset, outcome.detail)
            assert "dnf" not in outcome.model_status.values(), (method, dataset)
            assert outcome.modelled_s < limit

    # AutoFeat: DNF on the two largest datasets, like the paper.
    for dataset in ("bank", "adult"):
        assert paper_sweep.get(dataset, "autofeat").status == "dnf", dataset

    # CAAFE: the DNN-validated runs exhaust the budget on large datasets.
    caafe_dnn_dnfs = [
        dataset
        for dataset in datasets
        if paper_sweep.get(dataset, "caafe").model_status.get("dnn") == "dnf"
    ]
    assert "bank" in caafe_dnn_dnfs and "adult" in caafe_dnn_dnfs, caafe_dnn_dnfs

    # CAAFE is slower than SMARTFEAT overall (validation retraining).
    slower = sum(
        1
        for dataset in datasets
        if paper_sweep.get(dataset, "caafe").modelled_s
        > paper_sweep.get(dataset, "smartfeat").modelled_s
    )
    assert slower >= 5, slower
