"""Section 4.2 "Efficiency" — modelled full-scale runtimes and DNFs,
plus the concurrent-execution critical-path benchmark.

From the shared sweep: per method × dataset, the modelled full-scale
time (working-sample wall time extrapolated to Table 3 row counts, plus
simulated FM latency; see EXPERIMENTS.md).  Shape assertions mirror the
paper's findings:

* SMARTFEAT and Featuretools finish well within budget everywhere;
* AutoFeat exhausts the budget on the large datasets (Bank, Adult);
* CAAFE is slower than SMARTFEAT in general, with its DNN-validated runs
  timing out on large datasets.

The concurrency benchmark compares the serial and thread-pool FM
executors on identical wave semantics: same accepted features, same
ledger totals, ≥3× lower modelled critical-path latency at concurrency
8.  The sweep benchmark applies the same comparison one level up: the
cell-parallel eval sweep must reproduce the serial sweep cell for cell
with a ≥2.5× lower modelled sweep wall-clock at ``sweep_concurrency=4``.
``python benchmarks/bench_efficiency.py`` runs both standalone (no
pytest session) and writes ``BENCH_efficiency.json`` at the repo root
for the performance trajectory.
"""

import json
from pathlib import Path

from repro.datasets import load_dataset
from repro.eval import SweepConfig, concurrency_speedup_report, render_table, run_sweep

CONCURRENCY = 8
SPEEDUP_DATASETS = ("heart", "diabetes", "tennis")
SWEEP_CONCURRENCY = 4
SWEEP_DATASETS = ("heart", "diabetes", "tennis")
#: AutoFeat is excluded from the sweep benchmark: its modelled duration is
#: pure measured-wall-time extrapolation (no fixed FM latency), so on a
#: slow machine it becomes the makespan's long pole and the speedup number
#: would measure the benchmark host, not the engine.  The FM-driven cells'
#: modelled durations are dominated by deterministic simulated latency,
#: keeping the assertion machine-independent.
SWEEP_METHODS = ("initial", "smartfeat", "caafe", "featuretools")


def run_concurrency_benchmark() -> dict:
    """Serial vs thread-pool critical path across a few datasets."""
    reports = [
        concurrency_speedup_report(
            load_dataset(name, n_rows=300), concurrency=CONCURRENCY
        )
        for name in SPEEDUP_DATASETS
    ]
    return {
        "concurrency": CONCURRENCY,
        "datasets": reports,
        "min_speedup": min(r["speedup"] for r in reports),
        "all_equivalent": all(
            r["identical_features"] and r["identical_ledgers"] for r in reports
        ),
    }


def render_concurrency_table(payload: dict) -> str:
    rows = [
        [
            r["dataset"],
            str(r["n_calls"]),
            str(r["n_features"]),
            f"{r['serial_critical_path_s']:,.1f}",
            f"{r['concurrent_critical_path_s']:,.1f}",
            f"{r['speedup']:.2f}x",
            "yes" if r["identical_features"] and r["identical_ledgers"] else "NO",
        ]
        for r in payload["datasets"]
    ]
    return render_table(
        [
            "dataset",
            "FM calls",
            "features",
            "serial (s)",
            f"c={payload['concurrency']} (s)",
            "speedup",
            "equivalent",
        ],
        rows,
    )


def _sweep_fingerprint(result) -> dict:
    """Per-cell outcome identity, excluding real-time measurements."""
    return {
        f"{dataset}/{method}": (
            outcome.status,
            {model: round(auc, 9) for model, auc in outcome.auc_by_model.items()},
            outcome.fm_calls,
            round(outcome.fm_cost_usd, 9),
        )
        for (dataset, method), outcome in result.outcomes.items()
    }


def run_sweep_speedup_benchmark() -> dict:
    """Serial vs cell-parallel eval sweep: identical cells, shorter makespan.

    The modelled numbers extrapolate each cell's full-scale duration and
    schedule them onto ``SWEEP_CONCURRENCY`` workers (the same greedy
    makespan model the FM executor uses), so the headline speedup does
    not depend on the benchmark machine's core count.
    """
    config = SweepConfig(
        datasets=SWEEP_DATASETS,
        methods=SWEEP_METHODS,
        models=("lr", "nb"),
        n_rows=250,
        n_splits=3,
        time_limit_s=None,
    )
    serial = run_sweep(config)
    parallel = run_sweep(config, sweep_concurrency=SWEEP_CONCURRENCY)
    modelled_serial = serial.modelled_serial_s
    modelled_parallel = serial.modelled_wall_s(SWEEP_CONCURRENCY)
    return {
        "sweep_concurrency": SWEEP_CONCURRENCY,
        "datasets": list(SWEEP_DATASETS),
        "n_cells": len(serial.outcomes),
        "status_counts": serial.status_counts(),
        "total_fm_calls": serial.total_fm_calls,
        "modelled_serial_s": round(modelled_serial, 1),
        "modelled_parallel_s": round(modelled_parallel, 1),
        "speedup": round(modelled_serial / modelled_parallel, 2),
        "wall_serial_s": round(serial.wall_s, 2),
        "wall_parallel_s": round(parallel.wall_s, 2),
        "identical_cells": _sweep_fingerprint(serial) == _sweep_fingerprint(parallel),
    }


def render_sweep_speedup_table(payload: dict) -> str:
    rows = [
        [
            "+".join(payload["datasets"]),
            str(payload["n_cells"]),
            f"{payload['modelled_serial_s']:,.1f}",
            f"{payload['modelled_parallel_s']:,.1f}",
            f"{payload['speedup']:.2f}x",
            "yes" if payload["identical_cells"] else "NO",
        ]
    ]
    return render_table(
        [
            "sweep",
            "cells",
            "serial (s)",
            f"c={payload['sweep_concurrency']} (s)",
            "speedup",
            "equivalent",
        ],
        rows,
    )


def test_concurrent_critical_path(results_dir):
    """Thread-pool execution: ≥3× shorter critical path, identical output."""
    from benchmarks.conftest import write_result

    payload = run_concurrency_benchmark()
    write_result(
        results_dir, "efficiency_concurrency.txt", render_concurrency_table(payload)
    )
    assert payload["all_equivalent"], payload
    assert payload["min_speedup"] >= 3.0, payload


def test_sweep_parallel_speedup(results_dir):
    """Cell-parallel sweep: ≥2.5× shorter modelled makespan, identical cells."""
    from benchmarks.conftest import write_result

    payload = run_sweep_speedup_benchmark()
    write_result(results_dir, "efficiency_sweep.txt", render_sweep_speedup_table(payload))
    assert payload["identical_cells"], payload
    assert payload["speedup"] >= 2.5, payload


def main() -> int:
    payload = run_concurrency_benchmark()
    print(render_concurrency_table(payload))
    sweep_payload = run_sweep_speedup_benchmark()
    payload["sweep"] = sweep_payload
    print()
    print(render_sweep_speedup_table(sweep_payload))
    out = Path(__file__).resolve().parent.parent / "BENCH_efficiency.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    assert payload["all_equivalent"], "serial/concurrent runs diverged"
    assert payload["min_speedup"] >= 3.0, f"speedup below 3x: {payload['min_speedup']}"
    assert sweep_payload["identical_cells"], "serial/parallel sweeps diverged"
    assert sweep_payload["speedup"] >= 2.5, f"sweep speedup below 2.5x: {sweep_payload['speedup']}"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


def _cell(outcome) -> str:
    if outcome.status == "dnf" and not outcome.auc_by_model:
        return "DNF"
    dnf_models = [m for m, s in outcome.model_status.items() if s == "dnf"]
    suffix = f" (DNF: {','.join(dnf_models)})" if dnf_models else ""
    return f"{outcome.modelled_s:,.0f}s{suffix}"


def test_efficiency_runtimes(benchmark, paper_sweep, results_dir):
    from benchmarks.conftest import write_result

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # table is derived, not re-run

    datasets = paper_sweep.config.datasets
    methods = [m for m in paper_sweep.config.methods if m != "initial"]
    rows = []
    for method in methods:
        rows.append(
            [method] + [_cell(paper_sweep.get(dataset, method)) for dataset in datasets]
        )
    table = render_table(["Method", *datasets], rows)
    write_result(results_dir, "efficiency_runtimes.txt", table)

    limit = paper_sweep.config.time_limit_s

    # SMARTFEAT and Featuretools: no DNF anywhere, comfortably inside budget.
    for method in ("smartfeat", "featuretools"):
        for dataset in datasets:
            outcome = paper_sweep.get(dataset, method)
            assert outcome.status in ("ok", "partial"), (method, dataset, outcome.detail)
            assert "dnf" not in outcome.model_status.values(), (method, dataset)
            assert outcome.modelled_s < limit

    # AutoFeat: DNF on the two largest datasets, like the paper.
    for dataset in ("bank", "adult"):
        assert paper_sweep.get(dataset, "autofeat").status == "dnf", dataset

    # CAAFE: the DNN-validated runs exhaust the budget on large datasets.
    caafe_dnn_dnfs = [
        dataset
        for dataset in datasets
        if paper_sweep.get(dataset, "caafe").model_status.get("dnn") == "dnf"
    ]
    assert "bank" in caafe_dnn_dnfs and "adult" in caafe_dnn_dnfs, caafe_dnn_dnfs

    # CAAFE is slower than SMARTFEAT overall (validation retraining).
    slower = sum(
        1
        for dataset in datasets
        if paper_sweep.get(dataset, "caafe").modelled_s
        > paper_sweep.get(dataset, "smartfeat").modelled_s
    )
    assert slower >= 5, slower
