"""Figure 1 — row-level vs feature-level FM interaction cost.

Regenerates the series behind the paper's motivating figure: the cost of
obtaining one new feature by row-level masked-token completion (one API
call per row) versus SMARTFEAT's feature-level interactions (a measured,
size-independent call profile).  Asserts linear-vs-flat scaling and the
cost crossover.
"""

from benchmarks.conftest import write_result
from repro.datasets import load_dataset
from repro.eval import interaction_cost_comparison, render_table

ROW_COUNTS = (100, 1_000, 10_000, 100_000)


def test_fig1_interaction_cost(benchmark, results_dir):
    bundle = load_dataset("west_nile", n_rows=400)
    points = benchmark.pedantic(
        lambda: interaction_cost_comparison(bundle, row_counts=ROW_COUNTS),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            str(p.n_rows),
            p.style,
            str(p.n_calls),
            f"{p.tokens:,}",
            f"{p.cost_usd:.2f}",
            f"{p.latency_s:,.0f}",
        ]
        for p in points
    ]
    table = render_table(
        ["rows", "style", "FM calls", "tokens", "cost ($)", "latency (s)"], rows
    )
    write_result(results_dir, "fig1_interaction_cost.txt", table)

    row_level = {p.n_rows: p for p in points if p.style == "row_level"}
    feature_level = {p.n_rows: p for p in points if p.style == "feature_level"}

    # Row-level: calls and cost grow linearly with rows.
    assert row_level[100_000].n_calls == 1000 * row_level[100].n_calls
    assert row_level[100_000].cost_usd / row_level[100].cost_usd > 900

    # Feature-level: perfectly flat in table size.
    flat = {p.n_calls for p in feature_level.values()}
    assert len(flat) == 1

    # Crossover: by 10k rows the row-level style is ≥ 10× more expensive.
    assert row_level[10_000].cost_usd > 10 * feature_level[10_000].cost_usd
    assert row_level[100_000].latency_s > 50 * feature_level[100_000].latency_s
