"""Section 1's KNN claim: model-aware normalisation pays off.

The paper motivates sending the downstream model name to the FM with
"certain models like k-nearest-neighbors (KNN) tend to perform better
when the data is normalized or has similar ranges".  This bench verifies
the mechanism end-to-end: SMARTFEAT prompted for a KNN downstream model
proposes min-max normalisation at high confidence, and the scaled
features lift KNN on a range-mismatched dataset.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame
from repro.eval import render_table
from repro.fm import SimulatedFM
from repro.ml import KNeighborsClassifier, cross_val_auc


def _range_mismatched_frame(n: int = 600, seed: int = 3) -> tuple[DataFrame, dict]:
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    frame = DataFrame(
        {
            "income": (y * 1.4 + rng.normal(0, 1.0, n)).tolist(),           # informative, small range
            "balance": (rng.normal(0, 1.0, n) * 50_000).tolist(),           # noise, huge range
            "loan": (rng.normal(0, 1.0, n) * 20_000).tolist(),              # noise, huge range
            "target": y.tolist(),
        }
    )
    descriptions = {
        "income": "Annual income in standardised units",
        "balance": "Account balance in dollars",
        "loan": "Outstanding loan amount in dollars",
    }
    return frame, descriptions


def _knn_auc(frame) -> float:
    X = np.column_stack([frame[c]._numeric() for c in frame.columns if c != "target"])
    y = frame["target"]._numeric().astype(np.int64)
    return float(np.mean(cross_val_auc(KNeighborsClassifier(n_neighbors=9), X, y, n_splits=3))) * 100


def test_knn_normalization(benchmark, results_dir):
    frame, descriptions = _range_mismatched_frame()

    def run():
        # Unary family only: the claim under test is that *normalisation*
        # (plus the drop heuristic replacing the raw wide-range columns)
        # rescues KNN — other families would re-use the raw columns and
        # keep them in the frame.
        tool = SmartFeat(
            fm=SimulatedFM(seed=0, model="gpt-4"),
            downstream_model="knn",
            drop_heuristic=True,
            operator_families=(OperatorFamily.UNARY,),
        )
        return tool.fit_transform(
            frame, target="target", descriptions=descriptions,
            title="Retail bank customers (finance)",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # The FM proposed min-max scaling because the prompt names KNN.
    normalised = [c for c in result.new_columns if c.startswith("normalization_")]
    assert normalised, result.new_columns
    minmax_sources = [
        f.source_code for f in result.new_features.values() if f.name in normalised
    ]
    assert any("lo, hi" in s for s in minmax_sources)  # min-max variant

    before = _knn_auc(frame)
    after = _knn_auc(result.frame)
    table = render_table(
        ["Variant", "KNN AUC"],
        [["raw ranges", f"{before:.2f}"], ["with SMARTFEAT (knn-aware)", f"{after:.2f}"]],
    )
    write_result(results_dir, "knn_normalization.txt", table)
    assert after > before + 5.0, (before, after)
