"""Resilience benchmark: degraded-mode correctness and isolation overhead.

Three sections:

* ``chaos`` — seeded fault schedules drive every injection mode (raise,
  hang, bad output, input mutation) through ``failure_policy="degrade"``
  with breakers and a watchdog, asserting the blast-radius contract:
  failing features NaN-fill, **healthy features stay bit-identical** to
  a fault-free run, breakers trip and recover on their exact schedule,
  and ``strict`` mode still fails loudly on the same schedule.
* ``hostile`` — a seeded hostile row-dict batch through a degrade-mode
  :class:`~repro.serve.FeatureServer`: every surviving row serves, every
  quarantined row carries a reason, and the strict server refuses the
  same batch with a typed error.
* ``overhead`` — ``apply_with_report`` (per-feature isolation, report
  construction, breaker consultation) vs raw ``plan.apply`` on the
  fault-free demo workload, gated at **≤5%** overhead at serving scale.

``python benchmarks/bench_resilience.py`` writes ``BENCH_resilience.json``
at the repo root; ``--smoke`` runs smaller row counts with the same
assertions (the CI gate).
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.eval.chaos import CHAOS_MODES, ChaosSchedule, FaultInjector, hostile_rows
from repro.eval.serving import build_demo_result
from repro.serve import (
    BatchValidationError,
    BreakerBoard,
    FeaturePlan,
    FeatureServer,
    SandboxWatchdog,
    compile_plan,
    series_identical,
)

ISOLATION_OVERHEAD_CEILING = 1.05  # ≤5% vs raw plan.apply
SERVE_ROWS = {"smoke": 100_000, "full": 1_000_000}
CHAOS_ROWS = {"smoke": 400, "full": 2_000}


def _timed(fn, repeats: int = 1):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return out, best


# ----------------------------------------------------------------------
# Section 1: chaos gate
# ----------------------------------------------------------------------
def chaos_section(n_rows: int) -> dict:
    result, frame = build_demo_result(n_rows, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())
    served = [s for s in plan.features if s.status != "omitted"]
    clean = plan.apply(frame)

    # Every injection mode, one victim at a time, watchdog engaged.
    mode_outcomes = {}
    for mode in CHAOS_MODES:
        victim = served[0]
        injector = FaultInjector(
            ChaosSchedule({victim.name: {0: mode}}), max_hang_s=5.0
        )
        out, report = plan.apply_with_report(
            frame,
            failure_policy="degrade",
            watchdog=SandboxWatchdog(timeout_s=0.25, join_grace_s=2.0),
            evaluator=injector,
        )
        entry = next(r for r in report.reports if r.feature == victim.name)
        assert entry.status == "failed", f"{mode}: fault not contained"
        for name in victim.output_columns:
            assert np.isnan(out[name].values).all(), f"{mode}: no NaN fill"
        for name in clean.columns:
            if name not in victim.output_columns:
                assert series_identical(clean[name], out[name]), (
                    f"{mode}: healthy column {name!r} not bit-identical"
                )
        mode_outcomes[mode] = entry.error
        print(f"chaos mode={mode:10s} contained as {entry.error}")

    # Breaker schedule: 3 failures trip, 2 refusals, probe recovers.
    victim = served[0]
    injector = FaultInjector(
        ChaosSchedule({victim.name: {0: "raise", 1: "raise", 2: "raise"}})
    )
    board = BreakerBoard(failure_threshold=3, cooldown_calls=2)
    timeline = []
    for _ in range(7):
        _out, report = plan.apply_with_report(
            frame, failure_policy="degrade", breakers=board, evaluator=injector
        )
        timeline.append(
            next(r.status for r in report.reports if r.feature == victim.name)
        )
    expected = ["failed", "failed", "failed", "skipped", "skipped", "ok", "ok"]
    assert timeline == expected, f"breaker timeline {timeline} != {expected}"
    print(f"chaos breaker timeline: {' -> '.join(timeline)}")

    # Strict mode fails loudly on the same schedule.
    injector = FaultInjector(ChaosSchedule({victim.name: {0: "raise"}}))
    try:
        plan.apply_with_report(
            frame, failure_policy="strict", evaluator=injector
        )
    except Exception as exc:
        strict_error = type(exc).__name__
    else:
        raise AssertionError("strict policy served through an injected fault")
    print(f"chaos strict policy raised {strict_error}")

    # Seeded storm stays reproducible and never corrupts healthy outputs.
    names = [s.name for s in served]
    storm = FaultInjector(
        ChaosSchedule.seeded(names, modes=("raise", "bad_output"), rate=0.25, n_calls=4, seed=13)
    )
    storm_board = BreakerBoard(failure_threshold=2, cooldown_calls=2)
    degraded_fractions = []
    for _ in range(4):
        out, report = plan.apply_with_report(
            frame, failure_policy="degrade", breakers=storm_board, evaluator=storm
        )
        degraded_fractions.append(round(report.degraded_fraction, 4))
        for entry in report.reports:
            if entry.status != "ok":
                continue
            spec = next(s for s in plan.features if s.name == entry.feature)
            for name in spec.output_columns:
                assert series_identical(clean[name], out[name]), name
    print(f"chaos storm degraded fractions per batch: {degraded_fractions}")

    return {
        "n_rows": n_rows,
        "modes": mode_outcomes,
        "breaker_timeline": timeline,
        "strict_error": strict_error,
        "storm_injected_faults": len(storm.injected),
        "storm_degraded_fractions": degraded_fractions,
    }


# ----------------------------------------------------------------------
# Section 2: hostile row-dict batch
# ----------------------------------------------------------------------
def hostile_section(n_rows: int) -> dict:
    result, frame = build_demo_result(max(n_rows // 5, 200), seed=1)
    plan = compile_plan(result, frame, "Target")
    batch = hostile_rows(plan.input_schema, n_rows=n_rows, hostility=0.3, seed=7)

    server = FeatureServer(plan=plan, failure_policy="degrade")
    out, report = server.transform_with_report(batch)
    quarantine = report.quarantine
    assert len(out) + quarantine.quarantined_rows == len(batch)
    assert all(reason for _idx, reason in quarantine.quarantined)

    strict = FeatureServer(plan=plan)
    try:
        strict.transform(batch)
    except BatchValidationError:
        strict_refused = True
    else:
        raise AssertionError("strict server accepted a hostile batch")

    health = server.health()
    cell = {
        "batch_rows": len(batch),
        "served_rows": len(out),
        "quarantined_rows": quarantine.quarantined_rows,
        "patched_cells": quarantine.patched_cells,
        "warnings": len(quarantine.warnings),
        "strict_refused": strict_refused,
        "health_status": health["status"],
    }
    print(
        f"hostile batch: {cell['served_rows']}/{cell['batch_rows']} served, "
        f"{cell['quarantined_rows']} quarantined, "
        f"{cell['patched_cells']} cells patched, strict refused={strict_refused}"
    )
    return cell


# ----------------------------------------------------------------------
# Section 3: isolation overhead at serving scale
# ----------------------------------------------------------------------
def overhead_section(serve_rows: int) -> dict:
    result, frame = build_demo_result(serve_rows, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())

    raw, t_raw = _timed(lambda: plan.apply(frame), repeats=3)

    board = BreakerBoard(failure_threshold=3, cooldown_calls=5)

    def degraded():
        out, report = plan.apply_with_report(
            frame, failure_policy="degrade", breakers=board
        )
        assert report.ok
        return out

    out, t_degrade = _timed(degraded, repeats=3)

    # fault-free degrade must be bit-identical to the raw strict apply
    assert raw.columns == out.columns
    for name in raw.columns:
        assert series_identical(raw[name], out[name]), (
            f"degrade-mode column {name!r} diverged from strict apply"
        )

    overhead = t_degrade / t_raw
    cell = {
        "n_rows": serve_rows,
        "n_features": len(plan.features),
        "t_raw_apply_s": round(t_raw, 4),
        "t_degrade_apply_s": round(t_degrade, 4),
        "isolation_overhead": round(overhead, 4),
        "ceiling": ISOLATION_OVERHEAD_CEILING,
    }
    print(
        f"overhead @ {serve_rows} rows: raw={t_raw:.3f}s "
        f"degrade={t_degrade:.3f}s overhead={overhead:.3f}x "
        f"(ceiling {ISOLATION_OVERHEAD_CEILING}x)"
    )
    assert overhead <= ISOLATION_OVERHEAD_CEILING, (
        f"per-feature isolation costs {overhead:.3f}x vs raw plan.apply, "
        f"ceiling is {ISOLATION_OVERHEAD_CEILING}x"
    )
    return cell


def run(mode: str) -> dict:
    return {
        "mode": mode,
        "chaos": chaos_section(CHAOS_ROWS[mode]),
        "hostile": hostile_section(CHAOS_ROWS[mode]),
        "overhead": overhead_section(SERVE_ROWS[mode]),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="smaller rows, same assertions (CI gate)"
    )
    args = parser.parse_args()
    mode = "smoke" if args.smoke else "full"
    report = run(mode)
    out = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
