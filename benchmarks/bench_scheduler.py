"""Stage-graph scheduler benchmark: overlap makespan and budget planning.

Two claims, each asserted:

* **Stage overlap** — running the same SMARTFEAT search under
  ``stage_plan="overlap"`` accepts identical features, produces an
  identical frame, and issues identical FM call counts as the serial
  §3.2 chain (the stage-graph equivalence contract), while the modelled
  single-run makespan at concurrency 8 drops ≥1.5× because the binary /
  high-order / extractor stages — which declare no read/write conflict
  with each other — schedule side by side.  The narrower per-stage views
  also shrink prompts by ~10-16%.
* **Budget-aware planning** — with ``plan_budget=True`` and a tight
  :class:`~repro.fm.base.Budget`, ``fit_transform`` completes instead of
  raising: the scheduler shrinks sampling stages' draw budgets, skips
  stages it cannot afford, and records every decision in
  ``execution["schedule"]``.

``python benchmarks/bench_scheduler.py`` runs standalone and writes
``BENCH_scheduler.json`` at the repo root; ``--smoke`` runs the
equivalence assertion on one dataset (the CI gate).
"""

import json
import sys
from pathlib import Path

from repro.core import SmartFeat
from repro.datasets import load_dataset
from repro.eval import render_table, stage_overlap_report
from repro.fm import Budget, SimulatedFM

CONCURRENCY = 8
N_ROWS = 300
#: Datasets whose searches have enough sampling-stage work for the
#: overlapped schedule to clear 1.5x (the unary stage is a shared
#: prefix on the critical path everywhere).
OVERLAP_DATASETS = ("heart", "tennis", "west_nile")
#: Call-budget ladder for the degradation benchmark.
BUDGET_LADDER = (40, 25, 8)


def run_overlap_benchmark(datasets=OVERLAP_DATASETS, n_rows=N_ROWS) -> dict:
    """Serial vs overlapped stage plans across a few datasets."""
    reports = [
        stage_overlap_report(
            load_dataset(name, n_rows=n_rows), concurrency=CONCURRENCY
        )
        for name in datasets
    ]
    return {
        "concurrency": CONCURRENCY,
        "datasets": reports,
        "min_speedup": min(r["speedup"] for r in reports),
        "min_token_savings": min(r["token_savings"] for r in reports),
        "all_equivalent": all(
            r["identical_features"]
            and r["identical_frames"]
            and r["identical_call_counts"]
            for r in reports
        ),
    }


def render_overlap_table(payload: dict) -> str:
    rows = [
        [
            r["dataset"],
            str(r["n_calls"]),
            str(r["n_features"]),
            f"{r['makespan_serial_s']:,.1f}",
            f"{r['makespan_overlap_s']:,.1f}",
            f"{r['speedup']:.2f}x",
            f"{r['token_savings']:.0%}",
            " -> ".join(r["critical_path"]),
            "yes"
            if r["identical_features"]
            and r["identical_frames"]
            and r["identical_call_counts"]
            else "NO",
        ]
        for r in payload["datasets"]
    ]
    return render_table(
        [
            "dataset",
            "FM calls",
            "features",
            "serial (s)",
            f"overlap c={payload['concurrency']} (s)",
            "speedup",
            "tokens saved",
            "critical path",
            "equivalent",
        ],
        rows,
    )


def _budget_run(max_calls: int, n_rows: int = N_ROWS) -> dict:
    """One budget-planned run; returns the schedule plus spend facts."""
    bundle = load_dataset("heart", n_rows=n_rows)
    budget = Budget(max_calls=max_calls)
    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        budget=budget,
        plan_budget=True,
        stage_plan="overlap",
        fm_feature_removal=True,
    )
    result = tool.fit_transform(
        bundle.frame,
        target=bundle.target,
        descriptions=bundle.descriptions,
        title=bundle.title,
        target_description=bundle.target_description,
    )
    schedule = result.fm_usage["execution"]["schedule"]
    return {
        "max_calls": max_calls,
        "spent_calls": budget.spent_calls,
        "n_features": len(result.new_features),
        "statuses": {n["name"]: n["status"] for n in schedule["nodes"]},
        "degraded": schedule["degraded"],
    }


def run_budget_benchmark(ladder=BUDGET_LADDER, n_rows: int = N_ROWS) -> dict:
    """Tight budgets must degrade the schedule, never abort the run."""
    runs = [_budget_run(max_calls, n_rows) for max_calls in ladder]
    return {
        "runs": runs,
        # Tighter budgets must shrink or skip at least as many stages.
        "monotone_degradation": all(
            len(a["degraded"]) <= len(b["degraded"]) for a, b in zip(runs, runs[1:])
        ),
        "all_completed": True,  # _budget_run raising would have propagated
        "any_degraded": all(r["degraded"] for r in runs),
    }


def render_budget_table(payload: dict) -> str:
    rows = [
        [
            str(r["max_calls"]),
            str(r["spent_calls"]),
            str(r["n_features"]),
            ", ".join(f"{k}={v}" for k, v in r["statuses"].items() if v != "ran")
            or "all ran",
        ]
        for r in payload["runs"]
    ]
    return render_table(["max calls", "spent", "features", "degraded stages"], rows)


def assert_overlap(payload: dict, min_speedup: float = 1.5) -> None:
    assert payload["all_equivalent"], (
        "serial and overlapped stage plans diverged: "
        f"{[r['dataset'] for r in payload['datasets']]}"
    )
    assert payload["min_speedup"] >= min_speedup, (
        f"overlap speedup below {min_speedup}x: {payload['min_speedup']}"
    )


def assert_budget(payload: dict) -> None:
    assert payload["any_degraded"], payload
    for run in payload["runs"]:
        assert run["spent_calls"] <= run["max_calls"] + 25, run  # batch overshoot cap


def run_smoke() -> int:
    """CI gate: serial == overlap on one seeded dataset, schedule sane."""
    payload = run_overlap_benchmark(datasets=("heart",), n_rows=200)
    report = payload["datasets"][0]
    assert payload["all_equivalent"], report
    assert report["speedup"] > 1.0, report
    budget_payload = run_budget_benchmark(ladder=(25,), n_rows=200)
    assert_budget(budget_payload)
    print("scheduler smoke ok: serial == overlap, "
          f"speedup {report['speedup']:.2f}x, "
          f"budget degradation {budget_payload['runs'][0]['degraded']}")
    return 0


def test_stage_overlap_speedup(results_dir):
    """Overlapped schedule: ≥1.5x shorter modelled makespan, identical output."""
    from benchmarks.conftest import write_result

    payload = run_overlap_benchmark()
    write_result(results_dir, "scheduler_overlap.txt", render_overlap_table(payload))
    assert_overlap(payload)


def test_budget_planned_degradation(results_dir):
    """Tight budgets shrink/skip stages in the schedule instead of raising."""
    from benchmarks.conftest import write_result

    payload = run_budget_benchmark()
    write_result(results_dir, "scheduler_budget.txt", render_budget_table(payload))
    assert_budget(payload)


def main() -> int:
    if "--smoke" in sys.argv:
        return run_smoke()
    payload = run_overlap_benchmark()
    print(render_overlap_table(payload))
    budget_payload = run_budget_benchmark()
    print()
    print(render_budget_table(budget_payload))
    out = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"
    out.write_text(
        json.dumps({"overlap": payload, "budget_planning": budget_payload}, indent=2)
        + "\n"
    )
    print(f"wrote {out}")
    assert_overlap(payload)
    assert_budget(budget_payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
