"""Serving benchmark: FeaturePlan replay vs the legacy sandbox baseline.

Three sections:

* ``identity`` — fit SMARTFEAT on all nine eval datasets with
  ``compile_plan=True``, JSON-round-trip each exported plan, replay it on
  the original frame, and assert the result is **bit-identical** (dtype
  and missingness exact) to ``fit_transform``'s frame.
* ``throughput`` — the every-operator demo workload
  (:func:`repro.eval.serving.build_demo_result`) at serving scale:
  ``plan.apply`` (pure-numpy expression replay) against
  :func:`repro.eval.serving.sandbox_replay` (re-exec every recorded
  source — what serving cost before plans), gated at **≥10×**; plus the
  raw kernel loop (expression evaluation with no plan bookkeeping) to
  show plan overhead stays within ~1.2×.
* ``concurrency`` — one :class:`~repro.serve.FeatureServer` hammered by
  8 threads; aggregate throughput must hold up (no shared-state
  serialization on the hot path).

``python benchmarks/bench_serve.py`` writes ``BENCH_serve.json`` at the
repo root; ``--smoke`` runs smaller row counts with the same assertions
(the CI gate).
"""

import argparse
import json
import threading
import time
from pathlib import Path

from repro.dataframe.expr import evaluate_feature
from repro.eval.serving import (
    ALL_DATASETS,
    build_demo_result,
    replay_identity_report,
    sandbox_replay,
)
from repro.serve import FeaturePlan, FeatureServer, compile_plan, frames_identical

SANDBOX_SPEEDUP_FLOOR = 10.0
FIT_ROWS = {"smoke": 240, "full": 400}
SERVE_ROWS = {"smoke": 100_000, "full": 1_000_000}
CONCURRENT_CALLERS = 8


def _timed(fn, repeats: int = 1):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return out, best


# ----------------------------------------------------------------------
# Section 1: replay identity across the eval datasets
# ----------------------------------------------------------------------
def identity_section(fit_rows: int) -> list[dict]:
    rows = replay_identity_report(ALL_DATASETS, n_rows=fit_rows, seed=0)
    for row in rows:
        status = "bit-identical" if row["identical"] else f"DIVERGED: {row['detail']}"
        print(
            f"identity {row['dataset']:10s} features={row['n_features']:3d} "
            f"compiled={row['compiled']:3d} fallback={row['fallback']} "
            f"omitted={row['omitted']} {status}"
        )
        assert row["identical"], (
            f"plan replay diverged from fitted frame on {row['dataset']}: "
            f"{row['detail']}"
        )
    return rows


# ----------------------------------------------------------------------
# Section 2: throughput at serving scale
# ----------------------------------------------------------------------
def throughput_section(serve_rows: int) -> dict:
    result, frame = build_demo_result(serve_rows, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())
    counts = plan.counts()
    assert counts["fallback"] == 0 and counts["omitted"] == 0, (
        f"demo workload must fully compile, got {counts}"
    )

    replayed, t_plan = _timed(lambda: plan.apply(frame), repeats=3)
    identical, detail = frames_identical(replayed, result.frame)
    assert identical, f"plan replay diverged at {serve_rows} rows: {detail}"

    _, t_sandbox = _timed(lambda: sandbox_replay(result, frame), repeats=3)

    # Raw kernel loop: the frozen expressions evaluated with no plan
    # bookkeeping (no schema validation, no spec dispatch) — the floor
    # plan.apply overhead is measured against.
    def raw():
        working = frame.column_view(frame.columns)
        for spec in plan.features:
            out = evaluate_feature(spec.expr, working)
            if isinstance(out, dict):
                for name in spec.output_columns:
                    working[name] = out[name]
            else:
                working[spec.output_columns[0]] = out
        working.drop(columns=list(plan.drop_columns), inplace=True)
        return working

    _, t_raw = _timed(raw, repeats=3)

    speedup = t_sandbox / t_plan
    overhead = t_plan / t_raw
    cell = {
        "n_rows": serve_rows,
        "n_features": len(plan.features),
        "t_plan_s": round(t_plan, 4),
        "t_sandbox_s": round(t_sandbox, 4),
        "t_raw_s": round(t_raw, 4),
        "speedup_vs_sandbox": round(speedup, 2),
        "overhead_vs_raw": round(overhead, 3),
        "rows_per_s_plan": round(serve_rows / t_plan),
    }
    print(
        f"throughput @ {serve_rows} rows: plan={t_plan:.3f}s "
        f"sandbox={t_sandbox:.3f}s raw={t_raw:.3f}s "
        f"speedup={speedup:.1f}x overhead_vs_raw={overhead:.2f}x"
    )
    assert speedup >= SANDBOX_SPEEDUP_FLOOR, (
        f"plan replay must be >= {SANDBOX_SPEEDUP_FLOOR}x the sandbox baseline, "
        f"got {speedup:.1f}x"
    )
    return cell


# ----------------------------------------------------------------------
# Section 3: concurrent callers
# ----------------------------------------------------------------------
def concurrency_section(serve_rows: int) -> dict:
    batch_rows = max(serve_rows // 20, 1000)
    result, frame = build_demo_result(batch_rows, seed=1)
    plan = compile_plan(result, frame, "Target")
    server = FeatureServer(plan=plan)

    calls_per_thread = 4
    server.transform(frame)  # warm caches before timing
    _, t_serial = _timed(lambda: server.transform(frame))

    errors: list[Exception] = []

    def caller():
        try:
            for _ in range(calls_per_thread):
                out = server.transform(frame)
                assert out.columns == result.frame.columns
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=caller) for _ in range(CONCURRENT_CALLERS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"concurrent transform raised: {errors[0]!r}"

    total_calls = CONCURRENT_CALLERS * calls_per_thread
    per_call = elapsed / total_calls
    cell = {
        "batch_rows": batch_rows,
        "callers": CONCURRENT_CALLERS,
        "calls_per_thread": calls_per_thread,
        "t_serial_call_s": round(t_serial, 4),
        "t_concurrent_per_call_s": round(per_call, 4),
        "aggregate_calls_per_s": round(total_calls / elapsed, 2),
    }
    print(
        f"concurrency: {CONCURRENT_CALLERS} callers x {calls_per_thread} calls "
        f"@ {batch_rows} rows: serial={t_serial * 1000:.1f}ms/call "
        f"concurrent={per_call * 1000:.1f}ms/call "
        f"({cell['aggregate_calls_per_s']} calls/s aggregate)"
    )
    return cell


def run(mode: str) -> dict:
    from conftest import peak_rss_mb

    report = {
        "mode": mode,
        "identity": identity_section(FIT_ROWS[mode]),
        "throughput": throughput_section(SERVE_ROWS[mode]),
        "concurrency": concurrency_section(SERVE_ROWS[mode]),
    }
    report["peak_rss_mb"] = round(peak_rss_mb(), 1)
    print(f"peak RSS: {report['peak_rss_mb']} MB")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="smaller rows, same assertions (CI gate)"
    )
    args = parser.parse_args()
    mode = "smoke" if args.smoke else "full"
    report = run(mode)
    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
