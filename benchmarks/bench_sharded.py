"""Out-of-core sharded execution benchmark: peak RSS next to wall-clock.

The claim under test: ``FeaturePlan.apply_stream`` serves a table larger
than a hard memory budget — peak RSS stays bounded by the configured
``memory_budget_mb`` while the in-memory ``plan.apply`` path blows
through it — at ≥ 0.8× the in-memory throughput, with bit-identical
output.

Because ``ru_maxrss`` is process-lifetime-monotone, the in-memory and
sharded phases each run in their **own subprocess** (``--phase``
self-exec); the parent fits the plan once, hands both phases the same
plan JSON and the same deterministic chunk seeds, and compares their
per-chunk output checksums exactly.  The sharded phase generates its
input chunks on the fly — the full table never exists in its address
space — and its serve time is the stream wall-clock minus the measured
chunk-generation time, so the throughput ratio compares plan work
against plan work.

A third subprocess phase runs the same stream through the **pipelined**
executor (``pipeline_workers`` overlapping decode → transform → fold);
its output is compared to the sequential sharded phase through a
boundary-invariant stream checksum (the pipeline re-chunks the budget
across in-flight shards, so yield boundaries differ while the
concatenated bytes must not).

``python benchmarks/bench_sharded.py`` runs the full 10⁷-row comparison
and writes ``BENCH_sharded.json`` at the repo root; ``--smoke`` runs the
identity gates (demo workload across chunkings, pipelined vs sequential
across worker counts plus one real dataset, all nine eval datasets
sharded vs in-memory) plus a small three-phase run, same assertions on
identity, and writes the same artifact (the CI gate).
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import peak_rss_mb
from repro.core.shard_pipeline import PipelineStats
from repro.dataframe.io import concat_shards, iter_frame_shards
from repro.eval.serving import (
    ALL_DATASETS,
    build_demo_result,
    fit_and_export,
    make_serving_frame,
    sharded_identity_report,
)
from repro.serve import FeaturePlan, compile_plan, frames_identical

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_ROWS = 10_000_000
FULL_BUDGET_MB = 2048.0
FULL_N_GROUPS = 5_000
FULL_FIT_ROWS = 200_000
SMOKE_ROWS = 60_000
SMOKE_BUDGET_MB = 48.0
SMOKE_N_GROUPS = 64
SMOKE_FIT_ROWS = 4_000
THROUGHPUT_FLOOR = 0.8
#: Pipelined wall-clock speedup floor over sequential sharded — only
#: asserted when the machine has cores to overlap on (see ``run``).
PIPELINE_SPEEDUP_FLOOR = 1.5
PIPELINE_WORKERS = 4
#: Chunk seeds offset so serve chunks never replicate the fit frame.
CHUNK_SEED_BASE = 1000


def _chunk_specs(n_rows: int, chunk_rows: int) -> list[tuple[int, int]]:
    """(seed, rows) per generated serve chunk — shared by both phases."""
    specs = []
    index = 0
    remaining = n_rows
    while remaining > 0:
        rows = min(chunk_rows, remaining)
        specs.append((CHUNK_SEED_BASE + index, rows))
        remaining -= rows
        index += 1
    return specs


def _frame_checksum(frame) -> list:
    """Exact per-column digest, cheap enough for 10⁷ rows.

    Float columns record ``nansum`` bits (pairwise summation over equal
    values of equal length is bit-deterministic, whole-array or
    slice-view alike) plus the NaN count; int/bool record the exact sum;
    object columns an md5 over the rendered values.  Two featured frames
    with equal checksums per chunk are byte-equal for numerics and
    rendered-equal for objects.
    """
    out = []
    for name in frame.columns:
        values = frame[name].values
        if values.dtype.kind == "f":
            out.append([name, float(np.nansum(values)).hex(), int(np.isnan(values).sum())])
        elif values.dtype.kind in "iub":
            out.append([name, int(values.sum())])
        else:
            digest = hashlib.md5(
                "\x1f".join(str(v) for v in values.tolist()).encode()
            ).hexdigest()
            out.append([name, digest])
    return out


class StreamChecksum:
    """Boundary-invariant running digest of a featured-frame stream.

    The pipelined path divides the memory budget across in-flight shards,
    so its yield boundaries differ from the sequential path's — per-chunk
    checksums cannot compare the two.  This digest depends only on the
    *concatenated* stream: per column, a running md5 over the raw value
    bytes (numeric columns, exact to the bit) or the rendered values
    (object columns).  Equal digests ⇒ the concatenated outputs are
    byte-identical, whatever the chunking.
    """

    def __init__(self) -> None:
        self._columns: dict[str, "hashlib._Hash"] = {}
        self.n_rows = 0

    def update(self, frame) -> None:
        for name in frame.columns:
            digest = self._columns.get(name)
            if digest is None:
                digest = self._columns[name] = hashlib.md5()
            values = frame[name].values
            if values.dtype.kind in "fiub":
                digest.update(np.ascontiguousarray(values).tobytes())
            else:
                for value in values.tolist():
                    digest.update(str(value).encode())
                    digest.update(b"\x1f")
        self.n_rows += len(frame)

    def finalize(self) -> dict:
        return {
            "n_rows": self.n_rows,
            "columns": {name: d.hexdigest() for name, d in sorted(self._columns.items())},
        }


def fit_plan(fit_rows: int, n_groups: int) -> FeaturePlan:
    """Fit the every-operator demo workload and compile its plan.

    The fit frame pins ``n_groups`` to the serve scale's cardinality so
    the frozen group tables cover (virtually) every group the serve
    chunks draw — the realistic fit-small / serve-big shape.
    """
    result, frame = build_demo_result(fit_rows, seed=0, n_groups=n_groups)
    plan = compile_plan(result, frame, "Target")
    counts = plan.counts()
    assert counts["fallback"] == 0 and counts["omitted"] == 0, counts
    return plan


# ----------------------------------------------------------------------
# Subprocess phases (each owns its ru_maxrss)
# ----------------------------------------------------------------------
def phase_inmem(plan: FeaturePlan, specs: list, n_groups: int) -> dict:
    """Materialize the whole table, apply the plan once, checksum per
    chunk-aligned slice of the output."""
    chunks = [
        make_serving_frame(rows, seed=seed, n_groups=n_groups)
        for seed, rows in specs
    ]
    full = concat_shards(chunks)
    chunk_rows = specs[0][1]
    del chunks
    start = time.perf_counter()
    out = plan.apply(full)
    apply_s = time.perf_counter() - start
    checksums = [
        _frame_checksum(shard.frame)
        for shard in iter_frame_shards(out, chunk_rows)
    ]
    n_rows = len(full)
    return {
        "phase": "inmem",
        "n_rows": n_rows,
        "apply_s": round(apply_s, 3),
        "rows_per_s": round(n_rows / apply_s),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "checksums": checksums,
    }


def phase_sharded(
    plan: FeaturePlan, specs: list, n_groups: int, budget_mb: float
) -> dict:
    """Generate chunks on the fly and stream them through the plan under
    the memory budget; the full table never exists in this process."""
    gen_s = 0.0

    def shards():
        nonlocal gen_s
        for seed, rows in specs:
            start = time.perf_counter()
            frame = make_serving_frame(rows, seed=seed, n_groups=n_groups)
            gen_s += time.perf_counter() - start
            yield frame

    checksums = []
    stream = StreamChecksum()
    n_rows = 0
    start = time.perf_counter()
    for out in plan.apply_stream(shards(), memory_budget_mb=budget_mb):
        checksums.append(_frame_checksum(out))
        stream.update(out)
        n_rows += len(out)
    wall_s = time.perf_counter() - start
    serve_s = max(wall_s - gen_s, 1e-9)
    return {
        "phase": "sharded",
        "n_rows": n_rows,
        "wall_s": round(wall_s, 3),
        "generate_s": round(gen_s, 3),
        "serve_s": round(serve_s, 3),
        "rows_per_s": round(n_rows / serve_s),
        "memory_budget_mb": budget_mb,
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "checksums": checksums,
        "stream_checksum": stream.finalize(),
    }


def phase_pipelined(
    plan: FeaturePlan, specs: list, n_groups: int, budget_mb: float,
    workers: int, prefetch: int | None,
) -> dict:
    """Sharded serving with the overlapped executor: chunk generation,
    plan replay, and checksum folding overlap across worker threads while
    the re-sequencing buffer keeps the output stream in order.  The wall
    clock is the honest metric here — generation is *meant* to hide
    behind transform, so nothing is subtracted."""

    def shards():
        for seed, rows in specs:
            yield make_serving_frame(rows, seed=seed, n_groups=n_groups)

    stats = PipelineStats()
    stream = StreamChecksum()
    n_rows = 0
    start = time.perf_counter()
    for out in plan.apply_stream(
        shards(),
        memory_budget_mb=budget_mb,
        pipeline_workers=workers,
        pipeline_prefetch=prefetch,
        pipeline_stats=stats,
    ):
        stream.update(out)
        n_rows += len(out)
    wall_s = time.perf_counter() - start
    return {
        "phase": "pipelined",
        "n_rows": n_rows,
        "wall_s": round(wall_s, 3),
        "rows_per_s": round(n_rows / max(wall_s, 1e-9)),
        "memory_budget_mb": budget_mb,
        "pipeline_workers": workers,
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "pipeline_stats": stats.to_dict(),
        "stream_checksum": stream.finalize(),
    }


def _run_phase(
    phase: str, plan_path: str, n_rows: int, chunk_rows: int,
    n_groups: int, budget_mb: float, workers: int | None = None,
) -> dict:
    """Re-exec this script for one phase; parse its PHASE_RESULT line."""
    argv = [
        sys.executable, __file__,
        "--phase", phase,
        "--plan-path", plan_path,
        "--rows", str(n_rows),
        "--chunk-rows", str(chunk_rows),
        "--n-groups", str(n_groups),
        "--budget-mb", str(budget_mb),
    ]
    if workers is not None:
        argv += ["--pipeline-workers", str(workers)]
    proc = subprocess.run(
        argv,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{phase} phase failed:\n{proc.stdout}\n{proc.stderr}"
        )
    for line in reversed(proc.stdout.splitlines()):
        if line.startswith("PHASE_RESULT "):
            return json.loads(line[len("PHASE_RESULT "):])
    raise RuntimeError(f"{phase} phase printed no PHASE_RESULT:\n{proc.stdout}")


def two_phase_comparison(
    n_rows: int, budget_mb: float, n_groups: int, fit_rows: int
) -> dict:
    """Fit once, run both phases as subprocesses, compare exactly."""
    plan = fit_plan(fit_rows, n_groups)
    sample = make_serving_frame(1000, seed=CHUNK_SEED_BASE, n_groups=n_groups)
    chunk_rows = plan.budget_rows(sample, budget_mb)
    specs = _chunk_specs(n_rows, chunk_rows)
    print(
        f"two-phase @ {n_rows:,} rows: budget {budget_mb:.0f} MB -> "
        f"{chunk_rows:,} rows/chunk, {len(specs)} chunks"
    )
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        plan_path = handle.name
        handle.write(plan.to_json())
    try:
        inmem = _run_phase("inmem", plan_path, n_rows, chunk_rows, n_groups, budget_mb)
        sharded = _run_phase("sharded", plan_path, n_rows, chunk_rows, n_groups, budget_mb)
        pipelined = _run_phase(
            "pipelined", plan_path, n_rows, chunk_rows, n_groups, budget_mb,
            workers=PIPELINE_WORKERS,
        )
    finally:
        Path(plan_path).unlink(missing_ok=True)
    assert inmem["checksums"] == sharded["checksums"], (
        "sharded output diverged from in-memory apply (per-chunk checksums differ)"
    )
    # The pipelined path re-chunks the budget across in-flight shards, so
    # its yield boundaries differ — compare the boundary-invariant stream
    # digest instead: equal ⇒ the concatenated outputs are byte-identical.
    assert sharded["stream_checksum"] == pipelined["stream_checksum"], (
        "pipelined output diverged from sequential sharded (stream checksums differ)"
    )
    ratio = inmem["apply_s"] / sharded["serve_s"]
    speedup = sharded["wall_s"] / max(pipelined["wall_s"], 1e-9)
    for result in (inmem, sharded, pipelined):
        result.pop("checksums", None)
        result.pop("stream_checksum", None)
    print(
        f"  inmem:     apply {inmem['apply_s']:.2f}s "
        f"({inmem['rows_per_s']:,} rows/s), peak RSS {inmem['peak_rss_mb']} MB"
    )
    print(
        f"  sharded:   serve {sharded['serve_s']:.2f}s "
        f"({sharded['rows_per_s']:,} rows/s), peak RSS {sharded['peak_rss_mb']} MB"
    )
    print(
        f"  pipelined: wall {pipelined['wall_s']:.2f}s "
        f"({pipelined['rows_per_s']:,} rows/s, {PIPELINE_WORKERS} workers), "
        f"peak RSS {pipelined['peak_rss_mb']} MB"
    )
    print(f"  throughput ratio (sharded/inmem): {ratio:.2f}x — outputs identical")
    print(
        f"  pipeline speedup (sharded wall / pipelined wall): {speedup:.2f}x "
        f"on {os.cpu_count()} core(s)"
    )
    return {
        "n_rows": n_rows,
        "memory_budget_mb": budget_mb,
        "chunk_rows": chunk_rows,
        "n_chunks": len(specs),
        "identical": True,
        "throughput_ratio": round(ratio, 3),
        "pipeline_speedup": round(speedup, 3),
        "cpu_count": os.cpu_count(),
        "inmem": inmem,
        "sharded": sharded,
        "pipelined": pipelined,
    }


# ----------------------------------------------------------------------
# Identity gates (in-process)
# ----------------------------------------------------------------------
def demo_identity_section(n_rows: int = 2000) -> dict:
    """Every codegen form: apply_stream == apply across chunkings, and
    under a tiny memory budget that forces re-chunking."""
    result, frame = build_demo_result(n_rows, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())
    base = plan.apply(frame)
    for chunk in (113, 1000, n_rows * 2):
        merged = concat_shards(list(plan.apply_stream(iter_frame_shards(frame, chunk))))
        identical, detail = frames_identical(merged, base)
        assert identical, f"demo sharded replay diverged at chunk={chunk}: {detail}"
    pieces = list(plan.apply_stream(iter_frame_shards(frame, n_rows), memory_budget_mb=1))
    assert len(pieces) > 1, "1 MB budget should force re-chunking"
    merged = concat_shards(pieces)
    identical, detail = frames_identical(merged, base)
    assert identical, f"budget re-chunked replay diverged: {detail}"
    print(
        f"demo identity @ {n_rows} rows: chunks 113/1000/whole + "
        f"1MB-budget re-chunk ({len(pieces)} pieces) all bit-identical"
    )
    return {"n_rows": n_rows, "budget_pieces": len(pieces), "identical": True}


def pipelined_identity_section(
    n_rows: int = 2000, dataset: str = ALL_DATASETS[0]
) -> dict:
    """Pipelined execution is byte-identical to sequential sharded.

    Two gates: the every-operator demo workload (across worker counts,
    with and without a squeezing memory budget) and one real eval
    dataset, each comparing ``frames_identical`` on the concatenated
    streams — stronger than checksums, this is bit-for-bit.
    """
    result, frame = build_demo_result(n_rows, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())
    sequential = concat_shards(list(plan.apply_stream(iter_frame_shards(frame, 113))))
    for workers in (1, 2, 4):
        for budget in (None, 1.0):
            stats = PipelineStats()
            piped = concat_shards(
                list(
                    plan.apply_stream(
                        iter_frame_shards(frame, 113),
                        memory_budget_mb=budget,
                        pipeline_workers=workers,
                        pipeline_stats=stats,
                    )
                )
            )
            identical, detail = frames_identical(piped, sequential)
            assert identical, (
                f"pipelined (workers={workers}, budget={budget}) diverged "
                f"from sequential: {detail}"
            )
            assert stats.to_dict()["shards_out"] > 0
    bundle, fitted = fit_and_export(dataset, n_rows=400, seed=0)
    ds_plan = FeaturePlan.from_json(fitted.plan.to_json())
    ds_frame = bundle["frame"]
    ds_sequential = concat_shards(
        list(ds_plan.apply_stream(iter_frame_shards(ds_frame, 37)))
    )
    ds_piped = concat_shards(
        list(
            ds_plan.apply_stream(
                iter_frame_shards(ds_frame, 37), pipeline_workers=3
            )
        )
    )
    identical, detail = frames_identical(ds_piped, ds_sequential)
    assert identical, f"pipelined diverged on {dataset}: {detail}"
    print(
        f"pipelined identity: demo @ {n_rows} rows x workers 1/2/4 x "
        f"budget none/1MB + dataset {dataset} — all bit-identical to sequential"
    )
    return {"n_rows": n_rows, "dataset": dataset, "identical": True}


def dataset_identity_section(fit_rows: int, chunk_rows: int = 37) -> list[dict]:
    """All nine eval datasets: concat(apply_stream) == apply, bit-exact."""
    rows = sharded_identity_report(ALL_DATASETS, n_rows=fit_rows, chunk_rows=chunk_rows)
    for row in rows:
        status = "bit-identical" if row["identical"] else f"DIVERGED: {row['detail']}"
        print(
            f"sharded identity {row['dataset']:10s} shards={row['n_shards']:2d} "
            f"features={row['n_features']:3d} {status}"
        )
        assert row["identical"], (
            f"sharded replay diverged on {row['dataset']}: {row['detail']}"
        )
    return rows


def run(mode: str) -> dict:
    if mode == "smoke":
        n_rows, budget, groups, fit = (
            SMOKE_ROWS, SMOKE_BUDGET_MB, SMOKE_N_GROUPS, SMOKE_FIT_ROWS
        )
    else:
        n_rows, budget, groups, fit = (
            FULL_ROWS, FULL_BUDGET_MB, FULL_N_GROUPS, FULL_FIT_ROWS
        )
    report = {
        "mode": mode,
        "cpu_count": os.cpu_count(),
        "demo_identity": demo_identity_section(),
        "pipelined_identity": pipelined_identity_section(),
        "dataset_identity": dataset_identity_section(fit_rows=240),
        "comparison": two_phase_comparison(n_rows, budget, groups, fit),
    }
    comparison = report["comparison"]
    if mode == "full":
        # The tentpole claims, asserted at scale: the sharded path stays
        # under the configured budget the in-memory path blows through,
        # at >= 0.8x the in-memory throughput.
        assert comparison["sharded"]["peak_rss_mb"] <= budget, (
            f"sharded peak RSS {comparison['sharded']['peak_rss_mb']} MB "
            f"exceeds the {budget} MB budget"
        )
        assert comparison["pipelined"]["peak_rss_mb"] <= budget, (
            f"pipelined peak RSS {comparison['pipelined']['peak_rss_mb']} MB "
            f"exceeds the {budget} MB budget"
        )
        assert comparison["inmem"]["peak_rss_mb"] > budget, (
            f"in-memory peak RSS {comparison['inmem']['peak_rss_mb']} MB "
            f"fits the budget — the workload is too small to demonstrate "
            f"out-of-core execution"
        )
        assert comparison["throughput_ratio"] >= THROUGHPUT_FLOOR, (
            f"sharded throughput {comparison['throughput_ratio']:.2f}x is "
            f"below the {THROUGHPUT_FLOOR}x floor"
        )
        # The overlap speedup needs cores to overlap on: on a single-core
        # machine the GIL-shared workers can only serialize, so the floor
        # is asserted where the hardware can express it and the honest
        # measured number is recorded either way.
        if (os.cpu_count() or 1) >= 2:
            assert comparison["pipeline_speedup"] >= PIPELINE_SPEEDUP_FLOOR, (
                f"pipelined speedup {comparison['pipeline_speedup']:.2f}x is "
                f"below the {PIPELINE_SPEEDUP_FLOOR}x floor"
            )
        else:
            print(
                f"note: single-core machine — pipeline speedup "
                f"{comparison['pipeline_speedup']:.2f}x recorded, "
                f"{PIPELINE_SPEEDUP_FLOOR}x floor not asserted"
            )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small rows, identity assertions + a small two-phase run (CI gate)",
    )
    parser.add_argument(
        "--phase", choices=("inmem", "sharded", "pipelined"), help=argparse.SUPPRESS
    )
    parser.add_argument("--plan-path", help=argparse.SUPPRESS)
    parser.add_argument("--rows", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--chunk-rows", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--n-groups", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--budget-mb", type=float, help=argparse.SUPPRESS)
    parser.add_argument("--pipeline-workers", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--pipeline-prefetch", type=int, help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.phase:
        plan = FeaturePlan.load(args.plan_path)
        specs = _chunk_specs(args.rows, args.chunk_rows)
        if args.phase == "inmem":
            result = phase_inmem(plan, specs, args.n_groups)
        elif args.phase == "pipelined":
            result = phase_pipelined(
                plan, specs, args.n_groups, args.budget_mb,
                args.pipeline_workers or PIPELINE_WORKERS,
                args.pipeline_prefetch,
            )
        else:
            result = phase_sharded(plan, specs, args.n_groups, args.budget_mb)
        print("PHASE_RESULT " + json.dumps(result))
        return 0
    mode = "smoke" if args.smoke else "full"
    report = run(mode)
    out = REPO_ROOT / "BENCH_sharded.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# Pytest entry points (benchmarks/ is also collected as a suite)
# ----------------------------------------------------------------------
def test_sharded_identity_smoke():
    """Sharded replay is bit-identical to in-memory on the demo workload."""
    demo_identity_section(n_rows=600)


def test_pipelined_identity_smoke():
    """Pipelined execution is bit-identical to sequential sharded."""
    pipelined_identity_section(n_rows=600)
