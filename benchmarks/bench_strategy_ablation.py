"""§3.2 strategy ablation: proposal vs sampling for the binary family.

The paper: "the proposal strategy is more effective when dealing with
relatively smaller search spaces … the sampling method works better when
the generation space is rich."  Measured here as FM calls vs distinct
features found on a small space (housing, 7 usable numerics) and a rich
one (tennis, 11 numerics with many meaningful pairs).
"""

from benchmarks.conftest import write_result
from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.datasets import load_dataset
from repro.eval import render_table
from repro.fm import SimulatedFM


def _run(bundle, strategy: str, seed: int = 0):
    fm = SimulatedFM(seed=seed, model="gpt-4")
    tool = SmartFeat(
        fm=fm,
        function_fm=SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo"),
        downstream_model="rf",
        operator_families=(OperatorFamily.BINARY,),
        binary_strategy=strategy,
        sampling_budget=10,
    )
    result = tool.fit_transform(
        bundle.frame, target=bundle.target, descriptions=bundle.descriptions
    )
    return len(result.new_features), fm.ledger.n_calls


def test_strategy_ablation(benchmark, results_dir):
    housing = load_dataset("housing", n_rows=500)
    tennis = load_dataset("tennis", n_rows=500)

    def run_all():
        return {
            (name, strategy): _run(bundle, strategy)
            for name, bundle in (("housing", housing), ("tennis", tennis))
            for strategy in ("proposal", "sampling")
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [dataset, strategy, str(n_features), str(calls)]
        for (dataset, strategy), (n_features, calls) in outcomes.items()
    ]
    write_result(
        results_dir,
        "ablation_strategy.txt",
        render_table(["Dataset", "Strategy", "# binary features", "selector FM calls"], rows),
    )

    # Proposal is the cheap option everywhere (one selector call).
    for dataset in ("housing", "tennis"):
        assert outcomes[(dataset, "proposal")][1] < outcomes[(dataset, "sampling")][1]

    # In the rich tennis space, sampling explores at least as widely as
    # the deterministic top-k.
    assert outcomes[("tennis", "sampling")][0] >= outcomes[("tennis", "proposal")][0]
