"""Table 3 — dataset statistics.

Regenerates the paper's dataset summary (categorical/numeric attribute
counts, row counts, field) from the synthetic generators and verifies
each matches the published spec.  The timed kernel is one full-size
dataset generation.
"""

from benchmarks.conftest import write_result
from repro.datasets import DATASET_NAMES, list_datasets, load_dataset
from repro.eval import render_table


def _classify(bundle):
    categorical, numeric = 0, 1  # numeric includes the prediction class
    for name in bundle.feature_columns():
        series = bundle.frame[name]
        if series.dtype == object or set(series.dropna().tolist()) <= {0, 1, 0.0, 1.0}:
            categorical += 1
        else:
            numeric += 1
    return categorical, numeric


def test_table3_dataset_statistics(benchmark, results_dir):
    benchmark.pedantic(lambda: load_dataset("tennis"), rounds=1, iterations=1)

    rows = []
    for spec in list_datasets():
        bundle = load_dataset(spec.name, n_rows=400)
        n_cat, n_num = _classify(bundle)
        rows.append(
            [
                spec.name,
                f"{n_cat} (paper {spec.n_categorical})",
                f"{n_num} (paper {spec.n_numeric})",
                str(spec.n_rows),
                spec.field,
            ]
        )
        assert n_cat == spec.n_categorical, spec.name
        assert n_num == spec.n_numeric, spec.name
    table = render_table(
        ["Dataset", "# cat attr", "# num attr", "# rows", "Field"], rows
    )
    write_result(results_dir, "table3_datasets.txt", table)
    assert len(rows) == len(DATASET_NAMES) == 8
