"""Table 4 — average AUC of the five downstream models, per method × dataset.

Regenerates the paper's headline comparison from the shared sweep and
asserts its qualitative shape:

* FM-assisted methods (SMARTFEAT, CAAFE) lead the baselines overall;
* Bank and Lawschool stay ≈ flat for everyone (well-constructed
  originals);
* CAAFE fails on Diabetes (unguarded divide-by-zero);
* context-free expansion (Featuretools/AutoFeat) frequently hurts.

The timed kernel is one representative (method, dataset, model) unit.
"""

from benchmarks.conftest import write_result
from repro.eval import SweepConfig, render_auc_table, run_sweep
from repro.eval.paper_reference import delta_sign_agreement, render_paper_comparison


def _delta(outcome, initial):
    if outcome.average_auc is None or initial.average_auc in (None, 0):
        return None
    return (outcome.average_auc - initial.average_auc) / initial.average_auc * 100.0


def test_table4_average_auc(benchmark, paper_sweep, results_dir):
    unit = SweepConfig(
        datasets=("tennis",), methods=("initial", "smartfeat"), models=("rf",),
        n_rows=600, n_splits=3, time_limit_s=None,
    )
    benchmark.pedantic(lambda: run_sweep(unit), rounds=1, iterations=1)

    table = render_auc_table(paper_sweep, aggregate="average")
    write_result(results_dir, "table4_average_auc.txt", table)
    comparison = render_paper_comparison(paper_sweep, aggregate="average")
    write_result(results_dir, "table4_paper_vs_measured.txt", comparison)

    # Shape agreement with the published deltas: a majority of the
    # comparable cells must move the same way the paper reports.
    agreeing, comparable = delta_sign_agreement(paper_sweep, aggregate="average")
    assert comparable >= 20
    assert agreeing / comparable >= 0.5, (agreeing, comparable)

    datasets = paper_sweep.config.datasets
    initial = {d: paper_sweep.get(d, "initial") for d in datasets}

    # SMARTFEAT improves the average AUC on most datasets.
    smartfeat_deltas = {
        d: _delta(paper_sweep.get(d, "smartfeat"), initial[d]) for d in datasets
    }
    improved = [d for d, delta in smartfeat_deltas.items() if delta is not None and delta > 0.5]
    assert len(improved) >= 4, smartfeat_deltas

    # Bank and Lawschool are flat for SMARTFEAT (well-constructed originals).
    for flat_dataset in ("bank", "lawschool"):
        delta = smartfeat_deltas[flat_dataset]
        assert delta is not None and abs(delta) < 3.0, (flat_dataset, delta)

    # CAAFE fails on Diabetes: divide-by-zero poisons strict model fitting.
    diabetes_caafe = paper_sweep.get("diabetes", "caafe")
    assert "failed" in (
        diabetes_caafe.status,
        *diabetes_caafe.model_status.values(),
    ), diabetes_caafe

    # Context-free baselines hurt somewhere (negative delta on ≥2 datasets).
    hurt = 0
    for method in ("featuretools", "autofeat"):
        for d in datasets:
            delta = _delta(paper_sweep.get(d, method), initial[d])
            if delta is not None and delta < -0.5:
                hurt += 1
    assert hurt >= 2
