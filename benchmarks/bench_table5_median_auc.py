"""Table 5 — median AUC across the five downstream models.

Same sweep as Table 4, aggregated by the median (robust to one model
dominating or collapsing).  The timed kernel is the aggregation +
rendering pass.
"""

from benchmarks.conftest import write_result
from repro.eval import render_auc_table


def test_table5_median_auc(benchmark, paper_sweep, results_dir):
    table = benchmark.pedantic(
        lambda: render_auc_table(paper_sweep, aggregate="median"), rounds=1, iterations=1
    )
    write_result(results_dir, "table5_median_auc.txt", table)

    datasets = paper_sweep.config.datasets
    for dataset in datasets:
        outcome = paper_sweep.get(dataset, "initial")
        assert outcome.median_auc is not None
        # Median must lie within the per-model range.
        values = list(outcome.auc_by_model.values())
        assert min(values) <= outcome.median_auc <= max(values)

    # The two aggregates broadly agree on where SMARTFEAT wins.
    both_improve = 0
    for dataset in datasets:
        initial = paper_sweep.get(dataset, "initial")
        smartfeat = paper_sweep.get(dataset, "smartfeat")
        if smartfeat.average_auc is None:
            continue
        if (
            smartfeat.average_auc > initial.average_auc
            and smartfeat.median_auc > initial.median_auc
        ):
            both_improve += 1
    assert both_improve >= 3
