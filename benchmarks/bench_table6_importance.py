"""Table 6 — % of new features in the top-10 under IG / RFE / FI (Tennis).

Shape assertions mirror the paper:

* CAAFE generates few features (validation-filtered);
* SMARTFEAT generates fewer than the context-free baselines (operator
  selector prunes the space) and most of its features rank top-10;
* AutoFeat's expansion is ~two orders of magnitude larger than its
  selection.
"""

from benchmarks.conftest import write_result
from repro.datasets import load_dataset
from repro.eval import render_table
from repro.eval.importance import importance_table


def test_table6_feature_importance(benchmark, results_dir):
    bundle = load_dataset("tennis", n_rows=700)
    rows = benchmark.pedantic(
        lambda: importance_table(bundle, k=10, seed=0), rounds=1, iterations=1
    )
    by_method = {row.method: row for row in rows}

    text_rows = []
    for row in rows:
        generated = (
            f"{row.n_generated} (sel-{row.n_selected})"
            if row.n_selected != row.n_generated
            else str(row.n_generated)
        )
        text_rows.append(
            [
                row.method,
                generated,
                f"{row.ig_at_k:.0%}",
                f"{row.rfe_at_k:.0%}",
                f"{row.fi_at_k:.0%}",
            ]
        )
    table = render_table(
        ["Method", "# generated features", "IG@10", "RFE@10", "FI@10"], text_rows
    )
    write_result(results_dir, "table6_importance_tennis.txt", table)

    smartfeat = by_method["smartfeat"]
    caafe = by_method["caafe"]
    featuretools = by_method["featuretools"]
    autofeat = by_method["autofeat"]

    # CAAFE keeps few features; SMARTFEAT's selector keeps the space small.
    assert caafe.n_selected <= 10
    assert smartfeat.n_selected < featuretools.n_generated
    assert smartfeat.n_selected < autofeat.n_generated / 10

    # AutoFeat: huge expansion, tiny selection.
    assert autofeat.n_generated > 1000
    assert autofeat.n_selected <= 40

    # SMARTFEAT features are useful: a majority of the top-10 under at
    # least two of the three metrics.
    strong_metrics = sum(
        1 for value in (smartfeat.ig_at_k, smartfeat.rfe_at_k, smartfeat.fi_at_k) if value >= 0.5
    )
    assert strong_metrics >= 2, (smartfeat.ig_at_k, smartfeat.rfe_at_k, smartfeat.fi_at_k)
