"""Production transport benchmark: hedging, AIMD, and resume economics.

Three claims of the transport layer, each measured against the
simulated HTTP transport with **real sleeps** and asserted:

* **Hedged tail latency** — a latency-spike schedule (a slice of calls
  pay an extra ~10× latency, the classic cold-shard tail) run with and
  without hedging on the async backend.  Asserted: hedging cuts the
  spiked schedule's p99 per-call latency AND its measured batch
  makespan, while the ledger still records exactly one result per
  logical request.
* **AIMD under rate-limit pressure** — a capacity-limited server (every
  send past 4 in flight is shed with an instant 429) driven at a fixed
  concurrency of 16 vs the same ceiling under AIMD admission.
  Asserted: the adaptive run provokes far fewer 429s per useful call
  and its retry traffic (total sends per success) drops.
* **Resume re-spend = $0** — a checkpointed SMARTFEAT run killed
  mid-graph and resumed.  Asserted: the resumed run's output frame is
  bit-identical to an uninterrupted run's and the final ledgers show
  zero extra FM calls and $0.00 of re-spent cost.

``python benchmarks/bench_transport.py`` writes ``BENCH_transport.json``
at the repo root; ``--smoke`` runs reduced sizes with the same
assertions (the CI gate).
"""

import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import SmartFeat
from repro.dataframe import DataFrame
from repro.fm import (
    AIMDController,
    AsyncFMExecutor,
    FMRequest,
    HedgePolicy,
    RetryPolicy,
    SimulatedFM,
    SimulatedHTTPTransport,
    ThreadPoolFMExecutor,
    TransportFMClient,
)

# ----------------------------------------------------------------------
# Hedging: tail-latency spikes
# ----------------------------------------------------------------------
SPIKE = dict(
    base_latency_s=0.02,
    jitter_s=0.005,
    spike_rate=0.10,
    spike_latency_s=0.30,
)


def _percentile(values, q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


def _run_spiked_batch(hedge: HedgePolicy | None, n_requests: int, seed: int = 7):
    client = TransportFMClient(SimulatedHTTPTransport(seed=seed, **SPIKE))
    requests = [FMRequest(f"spiky request {i}") for i in range(n_requests)]
    with AsyncFMExecutor(8, hedge=hedge) as executor:
        started = time.perf_counter()
        results = executor.run(client, requests)
        wall = time.perf_counter() - started
        stats = executor.stats.snapshot()
    assert all(r.ok for r in results), "spiked batch had failures"
    latencies = [r.response.latency_s for r in results]
    return {
        "wall_s": round(wall, 3),
        "p50_latency_s": round(_percentile(latencies, 50), 4),
        "p99_latency_s": round(_percentile(latencies, 99), 4),
        "hedges_issued": stats["hedges_issued"],
        "hedges_won": stats["hedges_won"],
        "ledger": client.ledger.snapshot(),
    }


def run_hedging_benchmark(n_requests: int = 96) -> dict:
    unhedged = _run_spiked_batch(None, n_requests)
    hedged = _run_spiked_batch(
        HedgePolicy(quantile=0.9, min_observations=8, initial_delay_s=0.06),
        n_requests,
    )
    return {
        "n_requests": n_requests,
        "schedule": {k: v for k, v in SPIKE.items()},
        "unhedged": unhedged,
        "hedged": hedged,
        "p99_improvement": round(
            unhedged["p99_latency_s"] / max(hedged["p99_latency_s"], 1e-9), 2
        ),
        "makespan_improvement": round(
            unhedged["wall_s"] / max(hedged["wall_s"], 1e-9), 2
        ),
    }


def assert_hedging(payload: dict) -> None:
    hedged, unhedged = payload["hedged"], payload["unhedged"]
    assert hedged["hedges_issued"] > 0, "spike schedule never armed a hedge"
    assert hedged["p99_latency_s"] < unhedged["p99_latency_s"], payload
    assert hedged["wall_s"] < unhedged["wall_s"], payload
    # Exactly one result per logical request reaches the main totals.
    assert hedged["ledger"]["n_calls"] == payload["n_requests"]
    assert unhedged["ledger"]["n_calls"] == payload["n_requests"]
    assert hedged["ledger"]["hedges_issued"] == hedged["hedges_issued"]


# ----------------------------------------------------------------------
# AIMD: capacity-limited server
# ----------------------------------------------------------------------
def _run_capacity_batch(adaptive, n_requests: int, seed: int = 11):
    transport = SimulatedHTTPTransport(
        base_latency_s=0.02, jitter_s=0.005, capacity=4, retry_after_s=0.01, seed=seed
    )
    client = TransportFMClient(transport)
    # Effectively unbounded attempts: the *fixed* run needs them to grind
    # through its self-inflicted 429 storm (the waste shows up in
    # sends_per_success, not in failures); the adaptive run barely retries.
    retry = RetryPolicy(max_attempts=200, backoff_s=0.01, max_backoff_s=0.2)
    requests = [FMRequest(f"capacity probe {i}") for i in range(n_requests)]
    with ThreadPoolFMExecutor(16, retry=retry, adaptive=adaptive) as executor:
        started = time.perf_counter()
        results = executor.run(client, requests)
        wall = time.perf_counter() - started
        limit_after = None if executor.adaptive is None else executor.adaptive.limit
    n_ok = sum(1 for r in results if r.ok)
    assert n_ok == n_requests, f"{n_requests - n_ok} requests failed after retries"
    return {
        "wall_s": round(wall, 3),
        "n_sent": transport.stats.n_sent,
        "n_rate_limited": transport.stats.n_rate_limited,
        "sends_per_success": round(transport.stats.n_sent / n_requests, 2),
        "throughput_rps": round(n_requests / wall, 1),
        "final_limit": limit_after,
    }


def run_aimd_benchmark(n_requests: int = 96) -> dict:
    fixed = _run_capacity_batch(None, n_requests)
    adaptive = _run_capacity_batch(True, n_requests)
    return {
        "n_requests": n_requests,
        "server_capacity": 4,
        "client_concurrency": 16,
        "fixed": fixed,
        "adaptive": adaptive,
        "rate_limit_reduction": round(
            fixed["n_rate_limited"] / max(adaptive["n_rate_limited"], 1), 2
        ),
    }


def assert_aimd(payload: dict) -> None:
    fixed, adaptive = payload["fixed"], payload["adaptive"]
    # A fixed concurrency of 16 against capacity 4 must storm.
    assert fixed["n_rate_limited"] > 0, payload
    # AIMD sheds far less load onto the floor...
    assert adaptive["n_rate_limited"] < fixed["n_rate_limited"], payload
    assert adaptive["sends_per_success"] < fixed["sends_per_success"], payload
    # ...and settles near the server's real capacity.
    assert adaptive["final_limit"] is not None
    assert adaptive["final_limit"] <= 10, payload


# ----------------------------------------------------------------------
# Resume: kill mid-graph, re-spend nothing
# ----------------------------------------------------------------------
def _bench_frame(n_repeats: int) -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * n_repeats,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * n_repeats,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * n_repeats,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * n_repeats,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}


class KillSignal(BaseException):
    """Simulated process kill (not an Exception: nothing may catch it)."""


def _make_tool(checkpoint=None, resume=False) -> SmartFeat:
    return SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="decision_tree",
        checkpoint=checkpoint,
        resume=resume,
    )


def _fit(tool: SmartFeat, frame: DataFrame):
    return tool.fit_transform(frame, target="Target", descriptions=dict(DESCRIPTIONS))


def _install_kill_switch(tool: SmartFeat, kill_after: int) -> None:
    count = {"n": 0}
    lock = threading.Lock()
    for client in (tool.fm, tool.function_fm):
        original = client._complete_with_state

        def killer(prompt, temperature, state, _original=original):
            with lock:
                count["n"] += 1
                n = count["n"]
            if n > kill_after:
                raise KillSignal("simulated kill")
            return _original(prompt, temperature, state)

        client._complete_with_state = killer


def _frames_identical(a, b) -> bool:
    if a.columns != b.columns:
        return False
    for column in a.columns:
        left, right = a[column].to_numpy(), b[column].to_numpy()
        if left.dtype.kind == "O":
            if not all(x == y for x, y in zip(left.tolist(), right.tolist())):
                return False
        elif left.tobytes() != right.tobytes():
            return False
    return True


def run_resume_benchmark(n_repeats: int = 6, tmp_dir: Path | None = None) -> dict:
    import tempfile

    frame = _bench_frame(n_repeats)
    base_tool = _make_tool()
    base_result = _fit(base_tool, frame)
    base_calls = base_tool.fm.ledger.n_calls + base_tool.function_fm.ledger.n_calls
    base_cost = base_tool.fm.ledger.cost_usd + base_tool.function_fm.ledger.cost_usd

    directory = tmp_dir or Path(tempfile.mkdtemp(prefix="bench_transport_"))
    path = directory / "checkpoint.json"
    killed = _make_tool(checkpoint=str(path))
    kill_after = max(1, base_calls // 2)
    _install_kill_switch(killed, kill_after)
    try:
        _fit(killed, frame)
        raise AssertionError("kill switch did not fire")
    except KillSignal:
        pass

    resumed = _make_tool(checkpoint=str(path), resume=True)
    result = _fit(resumed, frame)
    total_calls = resumed.fm.ledger.n_calls + resumed.function_fm.ledger.n_calls
    total_cost = resumed.fm.ledger.cost_usd + resumed.function_fm.ledger.cost_usd
    schedule = result.fm_usage["execution"]["schedule"]
    restored = [n["name"] for n in schedule["nodes"] if n["status"] == "restored"]
    return {
        "baseline_calls": base_calls,
        "baseline_cost_usd": round(base_cost, 6),
        "killed_after_calls": kill_after,
        "restored_stages": restored,
        "resumed_total_calls": total_calls,
        "resumed_total_cost_usd": round(total_cost, 6),
        "respent_calls": total_calls - base_calls,
        "respent_cost_usd": round(total_cost - base_cost, 6),
        "bit_identical": _frames_identical(result.frame, base_result.frame),
    }


def assert_resume(payload: dict) -> None:
    assert payload["bit_identical"], payload
    assert payload["respent_calls"] == 0, payload
    # "$0 re-spend": ledger-snapshot rounding leaves sub-cent dust at most.
    assert abs(payload["respent_cost_usd"]) < 1e-4, payload
    assert payload["restored_stages"], "kill landed before any stage completed"


# ----------------------------------------------------------------------
def run_smoke() -> int:
    """CI gate: reduced sizes, same assertions."""
    hedging = run_hedging_benchmark(n_requests=48)
    assert_hedging(hedging)
    aimd = run_aimd_benchmark(n_requests=48)
    assert_aimd(aimd)
    resume = run_resume_benchmark(n_repeats=6)
    assert_resume(resume)
    print(
        "transport smoke ok: "
        f"hedging p99 {hedging['unhedged']['p99_latency_s']:.3f}s -> "
        f"{hedging['hedged']['p99_latency_s']:.3f}s "
        f"({hedging['p99_improvement']:.1f}x), "
        f"AIMD 429s {aimd['fixed']['n_rate_limited']} -> "
        f"{aimd['adaptive']['n_rate_limited']}, "
        f"resume re-spend {resume['respent_calls']} calls / "
        f"${resume['respent_cost_usd']:.2f}"
    )
    return 0


def test_hedging_cuts_tail_latency(results_dir):
    from benchmarks.conftest import write_result

    payload = run_hedging_benchmark()
    write_result(
        results_dir, "transport_hedging.txt", json.dumps(payload, indent=2)
    )
    assert_hedging(payload)


def test_aimd_reduces_rate_limit_storms(results_dir):
    from benchmarks.conftest import write_result

    payload = run_aimd_benchmark()
    write_result(results_dir, "transport_aimd.txt", json.dumps(payload, indent=2))
    assert_aimd(payload)


def test_resume_respends_nothing(results_dir, tmp_path):
    from benchmarks.conftest import write_result

    payload = run_resume_benchmark(tmp_dir=tmp_path)
    write_result(results_dir, "transport_resume.txt", json.dumps(payload, indent=2))
    assert_resume(payload)


def main() -> int:
    if "--smoke" in sys.argv:
        return run_smoke()
    hedging = run_hedging_benchmark()
    aimd = run_aimd_benchmark()
    resume = run_resume_benchmark()
    payload = {"hedging": hedging, "aimd": aimd, "resume": resume}
    print(json.dumps(payload, indent=2))
    out = Path(__file__).resolve().parent.parent / "BENCH_transport.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    assert_hedging(hedging)
    assert_aimd(aimd)
    assert_resume(resume)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
