"""Shared benchmark fixtures.

The heavyweight Table 4/5 sweep runs once per session (``paper_sweep``)
and is shared by the table-4, table-5, and efficiency benches.  Every
bench writes its regenerated table to ``results/`` so the artifacts
survive the run.

Profile note: benches run each dataset at ``n_rows=1200`` with 3-fold CV
and a modelled full-scale time budget of 600 s (the simulator-scale
equivalent of the paper's one-hour limit — see EXPERIMENTS.md).
"""

from pathlib import Path

import pytest

from repro.eval import SweepConfig, run_sweep

BENCH_SWEEP_CONFIG = SweepConfig(n_rows=1200, n_splits=3, time_limit_s=600.0, seed=0)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def paper_sweep():
    """The full method × dataset × model sweep (runs once per session)."""
    return run_sweep(BENCH_SWEEP_CONFIG)


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table and echo it to the terminal."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n--- {name} ---\n{text}\n")
