"""Shared benchmark fixtures.

The heavyweight Table 4/5 sweep runs once per session (``paper_sweep``)
and is shared by the table-4, table-5, and efficiency benches.  Every
bench writes its regenerated table to ``results/`` so the artifacts
survive the run.

Profile note: benches run each dataset at ``n_rows=1200`` with 3-fold CV
and a modelled full-scale time budget of 600 s (the simulator-scale
equivalent of the paper's one-hour limit — see EXPERIMENTS.md).
"""

import resource
import sys
from pathlib import Path

import pytest

from repro.eval import SweepConfig, run_sweep

BENCH_SWEEP_CONFIG = SweepConfig(n_rows=1200, n_splits=3, time_limit_s=600.0, seed=0)


def peak_rss_mb() -> float:
    """Process-lifetime peak resident set size, in MB (10⁶ bytes — the
    same unit ``memory_budget_mb`` uses).

    ``ru_maxrss`` is monotone over the process lifetime: it never goes
    down, so two phases whose peaks should be *compared* (in-memory vs
    sharded) must each run in their own subprocess.  Linux reports the
    counter in KiB, macOS in bytes.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1 if sys.platform == "darwin" else 1024
    return peak * scale / 1e6


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def paper_sweep():
    """The full method × dataset × model sweep (runs once per session)."""
    return run_sweep(BENCH_SWEEP_CONFIG)


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table and echo it to the terminal."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n--- {name} ---\n{text}\n")
