"""Bring your own dataset — and your own foundation model client.

This example shows the two main extension points:

1. **Custom data**: SMARTFEAT takes any :class:`repro.dataframe.DataFrame`
   plus a data card (column descriptions).  Here we build a small
   churn-prediction table from scratch.
2. **Custom FM client**: anything implementing
   :class:`repro.fm.FMClient` plugs in.  We wrap the simulator in a
   :class:`repro.fm.RecordingFM` to capture the full prompt/response
   transcript — which is also how you would record fixtures for replay
   tests against a real API client.

Run::

    python examples/custom_dataset_and_fm.py
"""

import numpy as np

from repro.core import SmartFeat
from repro.dataframe import DataFrame
from repro.fm import RecordingFM, SimulatedFM


def build_churn_table(n: int = 600, seed: int = 7) -> DataFrame:
    rng = np.random.default_rng(seed)
    tenure = np.clip(rng.gamma(2.0, 14, n), 1, 72).round(0)
    monthly_fee = np.clip(rng.normal(65, 25, n), 15, 130).round(2)
    support_tickets = rng.poisson(1.2, n)
    city = rng.choice(["SF", "LA", "SEA", "CHI"], size=n)
    plan = rng.choice(["basic", "plus", "premium"], size=n, p=[0.5, 0.3, 0.2])
    fee_pressure = monthly_fee / (tenure + 1)
    logit = (
        1.2 * (fee_pressure - fee_pressure.mean()) / fee_pressure.std()
        + 0.8 * (support_tickets - 1.2)
        - 0.5 * (plan == "premium")
    )
    churned = (rng.uniform(size=n) < 1 / (1 + np.exp(-logit))).astype(int)
    return DataFrame(
        {
            "TenureMonths": tenure,
            "MonthlyFee": monthly_fee,
            "SupportTickets": support_tickets,
            "City": city,
            "Plan": plan,
            "Churned": churned,
        }
    )


DESCRIPTIONS = {
    "TenureMonths": "Months since the customer signed up",
    "MonthlyFee": "Monthly subscription fee in dollars",
    "SupportTickets": "Number of support tickets filed in the last quarter",
    "City": "City of the customer",
    "Plan": "Subscription plan tier",
}


def main() -> None:
    frame = build_churn_table()
    recorder = RecordingFM(SimulatedFM(seed=0, model="gpt-4"))
    tool = SmartFeat(fm=recorder, downstream_model="logistic_regression")
    result = tool.fit_transform(
        frame,
        target="Churned",
        descriptions=DESCRIPTIONS,
        title="Subscription churn records (SaaS billing)",
        target_description="1 = customer cancelled within 30 days",
    )

    print(f"Generated {len(result.new_features)} features:")
    for name, feature in result.new_features.items():
        print(f"  [{feature.family.value:10s}] {name}  <- {feature.input_columns}")

    print(f"\nRecorded {len(recorder.recording)} FM interactions. First prompt:")
    first_prompt, first_answer = recorder.recording[0]
    print("-" * 60)
    print(first_prompt[:400])
    print("-" * 60)
    print("FM answered:")
    print(first_answer[:300])
    print(
        "\nSwap `SimulatedFM` for any `FMClient` implementation (e.g. a real "
        "API wrapper)\nand the rest of the pipeline is unchanged."
    )


if __name__ == "__main__":
    main()
