"""The paper's motivating example (Table 1 / Example 1.1 / Figure 2).

An insurance company predicts whether a policyholder is "safe".
SMARTFEAT constructs the paper's four showcase features:

* **F1 — Bucketized Age**: unary bucketisation with the industry's
  age-21 threshold;
* **F2-style car-age arithmetic**: a binary combination of the driver's
  age and the car's age;
* **F3 — Claim probability per car model**:
  ``df.groupby('Make Model')['Claim...'].transform('mean')``;
* **F4 — City population density**: an extractor pulling open-world
  knowledge no column contains.

Run::

    python examples/insurance.py
"""

from repro.core import SmartFeat
from repro.dataframe import DataFrame
from repro.fm import SimulatedFM


def build_insurance_table() -> DataFrame:
    """Table 1 of the paper, tiled so models have enough rows."""
    return DataFrame(
        {
            "Sex": ["M", "F", "M", "F", "M", "F"] * 20,
            "Age": [21, 35, 42, 22, 45, 56, 30, 28, 61, 33, 24, 39] * 10,
            "Age of car": [6, 2, 8, 14, 3, 5, 1, 9, 4, 7, 12, 2] * 10,
            "Make Model": [
                "Honda, Civic",
                "Toyota, Corolla",
                "Ford, Mustang",
                "Chevrolet, Cruze",
                "BMW, X5",
                "Volkswagen, Golf",
            ]
            * 20,
            "Claim in last 6 months": [1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0] * 10,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA"] * 20,
            "Safe": [0, 1, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1] * 10,
        }
    )


DESCRIPTIONS = {
    "Sex": "Sex of the policyholder",
    "Age": "Age of the policyholder in years",
    "Age of car": "Age of the insured car in years",
    "Make Model": "Make and model of the insured car",
    "Claim in last 6 months": "Whether the policyholder filed a claim in the last 6 months",
    "City": "City of residence",
}


def main() -> None:
    frame = build_insurance_table()
    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="decision_tree",
    )
    result = tool.fit_transform(
        frame,
        target="Safe",
        descriptions=DESCRIPTIONS,
        title="Car insurance policyholders (insurance claims)",
        target_description="1 = safe, unlikely to file a claim in the next 6 months",
    )

    print("=== Generated features ===")
    for feature in result.new_features.values():
        print(f"\n[{feature.family.value}] {feature.name}")
        print(f"  inputs:      {feature.input_columns}")
        print(f"  description: {feature.description}")
        if feature.source_code and feature.source_code != "<row-level FM completion>":
            indented = "\n    ".join(feature.source_code.rstrip().splitlines())
            print(f"  transformation:\n    {indented}")

    print("\n=== Paper walk-through checkpoints ===")
    checks = {
        "F1 Bucketized Age": "bucketization_Age" in result.frame.columns,
        "F3 Claim rate per car model": any(
            c.startswith("GroupBy_Make Model_mean_Claim") for c in result.frame.columns
        ),
        "F4 City population density": "City_population_density" in result.frame.columns,
    }
    for label, ok in checks.items():
        print(f"  {'PASS' if ok else 'MISS'}  {label}")

    if "City_population_density" in result.frame.columns:
        print("\nDensity values pulled from FM world knowledge:")
        seen = {}
        for _, row in result.frame.iterrows():
            seen.setdefault(row["City"] if "City" in result.frame.columns else "?",
                            row["City_population_density"])
        for city, density in seen.items():
            print(f"  {city}: {density:,.0f} people / sq mile")


if __name__ == "__main__":
    main()
