"""Row-level vs feature-level FM interaction cost (the Figure 1 argument).

The prevailing way to use a foundation model for data tasks is row-level:
serialise each row, ask the FM to fill a masked value.  That costs one
API call per row.  SMARTFEAT interacts per *feature*, so its cost is flat
in table size.  This example prices both styles for a growing table.

Run::

    python examples/interaction_cost.py
"""

from repro.datasets import load_dataset
from repro.eval.efficiency import interaction_cost_comparison


def main() -> None:
    bundle = load_dataset("west_nile", n_rows=400)
    points = interaction_cost_comparison(
        bundle, row_counts=(100, 1_000, 10_000, 100_000)
    )
    print(f"Completing ONE knowledge feature over '{bundle.name}' rows\n")
    header = f"{'rows':>8}  {'style':<14} {'FM calls':>9} {'tokens':>12} {'cost ($)':>10} {'latency':>12}"
    print(header)
    print("-" * len(header))
    for point in points:
        latency = f"{point.latency_s / 3600:.1f} h" if point.latency_s > 3600 else f"{point.latency_s:.0f} s"
        print(
            f"{point.n_rows:>8}  {point.style:<14} {point.n_calls:>9} "
            f"{point.tokens:>12,} {point.cost_usd:>10.2f} {latency:>12}"
        )
    print(
        "\nRow-level cost grows linearly with the table; feature-level cost "
        "is constant.\nThat asymmetry is the paper's core efficiency claim."
    )


if __name__ == "__main__":
    main()
