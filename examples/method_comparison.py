"""Head-to-head: SMARTFEAT vs the three baselines on one dataset.

A compact version of the paper's Table 4 experiment on a single dataset:
run each automated-feature-engineering method, evaluate the downstream
models, and print the comparison with feature counts — including CAAFE's
divide-by-zero failure mode when run on ``diabetes``.

Run::

    python examples/method_comparison.py [dataset-name]
"""

import sys

from repro.eval import SweepConfig, render_auc_table, run_sweep


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "housing"
    config = SweepConfig(
        datasets=(name,),
        models=("lr", "nb", "rf"),
        n_rows=900,
        n_splits=3,
        time_limit_s=None,
    )
    result = run_sweep(config, progress=lambda line: print(f"  {line}"))
    print()
    print(render_auc_table(result, aggregate="average"))
    print("\nPer-method detail:")
    for method in config.methods:
        outcome = result.get(name, method)
        if method == "initial":
            continue
        print(
            f"  {method:12s} status={outcome.status:7s} "
            f"generated={outcome.n_generated:4d} kept={outcome.n_selected:4d} "
            f"wall={outcome.wall_s:5.1f}s fm_calls={outcome.fm_calls}"
            + (f"  [{outcome.detail}]" if outcome.detail else "")
        )


if __name__ == "__main__":
    main()
