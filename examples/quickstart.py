"""Quickstart: run SMARTFEAT on a built-in dataset in ~20 lines.

Usage::

    python examples/quickstart.py [dataset-name]

Loads one of the eight evaluation datasets (default: tennis), runs the
full SMARTFEAT search (all four operator families), prints the
generated features, their provenance, and the AUC before/after — then
exports the fitted run as a compiled :class:`FeaturePlan`, reloads it
from JSON, and replays it on fresh rows with no FM in the loop.
"""

import sys

from repro.core import SmartFeat
from repro.datasets import load_dataset
from repro.eval.harness import evaluate_models
from repro.fm import SimulatedFM


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tennis"
    bundle = load_dataset(name, n_rows=800)
    print(f"Dataset: {bundle.title}  ({bundle.frame.shape[0]} rows)")
    print(f"Target:  {bundle.target} — {bundle.target_description}\n")

    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),            # operator selector
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),  # function generator
        downstream_model="random_forest",
    )
    result = tool.fit_transform(
        bundle.frame,
        target=bundle.target,
        descriptions=bundle.descriptions,
        title=bundle.title,
        target_description=bundle.target_description,
    )

    print(f"Generated {len(result.new_features)} features:")
    for feature in result.new_features.values():
        print(f"  [{feature.family.value:10s}] {feature.name}")
    if result.dropped:
        print(f"\nDropped originals (superseded by unary transforms): {result.dropped}")

    models = ("lr", "nb", "rf")
    before = evaluate_models(bundle.frame, bundle.target, models=models, n_splits=3)
    after = evaluate_models(result.frame, bundle.target, models=models, n_splits=3)
    print("\nCross-validated AUC (initial -> with SMARTFEAT features):")
    for model in models:
        delta = (after[model] - before[model]) / before[model] * 100
        print(f"  {model:4s}: {before[model]:5.2f} -> {after[model]:5.2f}  ({delta:+.1f}%)")

    usage = result.fm_usage["operator_selector"]
    print(
        f"\nFM footprint: {usage['n_calls']} selector calls, "
        f"${usage['cost_usd']:.4f} modelled cost — independent of table size."
    )

    # --- Fit / serve split: export the run as a compiled plan and replay
    # it on fresh rows with zero FM calls and no sandbox exec. ---
    from repro.serve import FeaturePlan, FeatureServer

    plan = tool.export_plan(result, bundle.frame, bundle.target)
    counts = plan.counts()
    print(
        f"\nCompiled plan: {counts['compiled']}/{len(plan.features)} features "
        f"pure-numpy, fingerprint {plan.fingerprint[:12]}…"
    )

    plan = FeaturePlan.from_json(plan.to_json())  # JSON round-trip
    fresh = load_dataset(name, seed=7, n_rows=200).frame  # unseen rows
    served = FeatureServer(plan=plan).transform(fresh)
    print(
        f"Served {len(fresh)} fresh rows -> {len(served.columns)} columns "
        "(same features, no FM in the loop)."
    )


if __name__ == "__main__":
    main()
