"""Disease-surveillance scenario: the paper's "diverse features" dataset.

West Nile virus trap surveillance is where the paper reports SMARTFEAT's
breadth paying off: high-order group rates (species, trap sites),
seasonal bucketisation, and open-world knowledge (city population
density) all contribute, and the FM suggests *external data sources*
(weather history) for what no transformation can compute.

Run::

    python examples/west_nile_outbreak.py
"""

from repro.core import SmartFeat
from repro.core.report import result_summary
from repro.core.types import OperatorFamily
from repro.datasets import load_dataset
from repro.eval.harness import evaluate_models
from repro.fm import SimulatedFM


def main() -> None:
    bundle = load_dataset("west_nile", n_rows=1000)
    print(f"{bundle.title}\n{len(bundle.frame)} trap observations, "
          f"target prevalence {bundle.frame[bundle.target].mean():.0%}\n")

    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="random_forest",
    )
    result = tool.fit_transform(
        bundle.frame,
        target=bundle.target,
        descriptions=bundle.descriptions,
        title=bundle.title,
        target_description=bundle.target_description,
    )
    print(result_summary(result))

    # The three mechanisms the paper highlights on this dataset:
    group_rates = [
        f.name
        for f in result.new_features.values()
        if f.family == OperatorFamily.HIGH_ORDER
    ]
    knowledge = [
        f.name
        for f in result.new_features.values()
        if "knowledge_map" in f.description
    ]
    print("\nHighlights:")
    print(f"  group-rate features (high-order): {group_rates}")
    print(f"  world-knowledge features:         {knowledge}")
    print(f"  external-source suggestions:      {[s.name for s in result.suggestions]}")

    models = ("nb", "rf")
    before = evaluate_models(bundle.frame, bundle.target, models=models, n_splits=3)
    after = evaluate_models(result.frame, bundle.target, models=models, n_splits=3)
    print("\nAUC before -> after:")
    for model in models:
        print(f"  {model}: {before[model]:.2f} -> {after[model]:.2f}")


if __name__ == "__main__":
    main()
