"""SMARTFEAT reproduction: feature-level foundation-model interactions.

Reproduction of *"SMARTFEAT: Efficient Feature Construction through
Feature-Level Foundation Model Interactions"* (Lin, Ding, Jagadish, Zhou —
CIDR 2024).

Layers (bottom-up):

``repro.dataframe``
    Columnar Series/DataFrame substrate (pandas-compatible subset) that the
    generated transformation functions execute against.
``repro.ml``
    Mini scikit-learn: the paper's five downstream classifiers, AUC, cross
    validation, and the Table 6 feature-selection metrics.
``repro.fm``
    Foundation-model substrate: the ``FMClient`` protocol, a deterministic
    knowledge-based :class:`~repro.fm.SimulatedFM`, and an API cost model.
``repro.core``
    SMARTFEAT itself — operator selector, function generator, validator,
    and the :class:`~repro.core.SmartFeat` pipeline.
``repro.baselines``
    Featuretools-style DFS, AutoFeat-style expansion/selection, and a
    CAAFE-style FM code-generation loop.
``repro.datasets``
    Seeded synthetic versions of the paper's eight Kaggle datasets.
``repro.eval``
    The evaluation harness regenerating every table and figure.

Quickstart
----------
>>> from repro.datasets import load_dataset
>>> from repro.fm import SimulatedFM
>>> from repro.core import SmartFeat
>>> bundle = load_dataset("tennis", n_rows=400)
>>> tool = SmartFeat(fm=SimulatedFM(seed=0), downstream_model="random_forest")
>>> result = tool.fit_transform(bundle.frame, target=bundle.target,
...                             descriptions=bundle.data_card())
>>> sorted(result.new_features)  # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
