"""The paper's three comparison baselines, reimplemented to mechanism.

* :class:`FeaturetoolsDFS` — Deep Feature Synthesis as configured in the
  paper: ``add_numeric`` + ``multiply_numeric`` + aggregation primitives,
  exhaustively applied, followed by the standard correlation/null/
  single-value selection.
* :class:`AutoFeatLike` — AutoFeat's expand-then-select loop: a large
  non-linear expansion (powers, logs, reciprocals, pairwise products and
  ratios) followed by iterative L1-regularised selection.  Deliberately
  expensive on wide/large data, like the original (which timed out on
  Bank and Adult in the paper).
* :class:`CAAFELike` — CAAFE's FM loop: ten unguided code-generation
  iterations, each validated by training the downstream model on a
  holdout and keeping the feature only if AUC improves.  No operator
  guidance, feature values sampled into the prompt, and no NaN guards in
  generated code (the paper's Diabetes divide-by-zero failure).
"""

from repro.baselines.base import AFEResult, BaselineTimeoutError, Deadline
from repro.baselines.featuretools_like import FeaturetoolsDFS
from repro.baselines.autofeat_like import AutoFeatLike
from repro.baselines.caafe_like import CAAFELike

__all__ = [
    "AFEResult",
    "AutoFeatLike",
    "BaselineTimeoutError",
    "CAAFELike",
    "Deadline",
    "FeaturetoolsDFS",
]
