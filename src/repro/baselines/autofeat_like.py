"""AutoFeat-style expansion and iterative selection.

AutoFeat "constructs a large set of non-linear features and subsequently
performs a search algorithm to select an effective subset".  The
reimplementation follows that mechanism:

1. **Expansion** — unary non-linear transforms of every numeric column
   (log, sqrt, square, cube, reciprocal), then pairwise products and
   ratios across the expanded pool.  On the Tennis schema this yields
   ~2,000 candidates, matching Table 6's ``1978 (sel-5)`` scale.
2. **Selection** — correlation pre-filter, then an iterative
   L1-regularised logistic path that retains features with persistent
   non-zero weight across regularisation strengths.

The expansion is quadratic in columns and linear in rows; with the
paper's larger datasets (Bank, Adult) it exhausts its time budget —
reproducing the reported DNFs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AFEResult, Deadline
from repro.dataframe import DataFrame, Series
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import StandardScaler

__all__ = ["AutoFeatLike"]

_EPS = 1e-9


class AutoFeatLike:
    """Expand-then-select automated feature engineering.

    Parameters
    ----------
    max_selected:
        Upper bound on the features kept by the final selection.
    prefilter_top:
        Candidates entering L1 selection (by |correlation| with target).
    l1_strengths:
        Inverse-regularisation path; a feature must survive (non-zero
        weight) in at least half the fits to be retained.
    """

    def __init__(
        self,
        max_selected: int = 40,
        prefilter_top: int = 200,
        l1_strengths: tuple[float, ...] = (0.02, 0.05, 0.1),
        weight_threshold: float = 0.05,
        stability_sweeps: int = 16,
        seed: int = 0,
    ) -> None:
        self.max_selected = max_selected
        self.prefilter_top = prefilter_top
        self.l1_strengths = l1_strengths
        self.weight_threshold = weight_threshold
        self.stability_sweeps = stability_sweeps
        self.seed = seed

    _UNARY = (
        ("log", lambda x: np.log1p(np.abs(x))),
        ("sqrt", lambda x: np.sqrt(np.abs(x))),
        ("sq", lambda x: x**2),
        ("cube", lambda x: x**3),
        ("recip", lambda x: 1.0 / (x + np.where(x >= 0, _EPS, -_EPS))),
    )

    def fit_transform(
        self, frame: DataFrame, target: str, deadline: Deadline | None = None
    ) -> AFEResult:
        deadline = deadline or Deadline()
        numeric = [c for c in frame.numeric_columns() if c != target]
        y = frame[target]._numeric().astype(np.int64)

        # Stage 1: unary expansion pool (keeps originals too).  The paper's
        # preprocessing factorises categoricals to integer codes, which
        # AutoFeat — numeric-only — then treats as ordinary numerics, so
        # the codes join the expansion pool.
        from repro.dataframe.reshape import factorize

        pool: dict[str, np.ndarray] = {c: frame[c]._numeric() for c in numeric}
        for column in frame.categorical_columns():
            codes, _ = factorize(frame[column])
            pool[column] = codes.astype(np.float64)
            numeric = [*numeric, column]
        for column in numeric:
            base = pool[column]
            for suffix, func in self._UNARY:
                deadline.check("unary expansion")
                with np.errstate(all="ignore"):
                    pool[f"{suffix}({column})"] = func(base)
        # Stage 2: pairwise products and ratios over the expanded pool.
        names = list(pool)
        candidates: dict[str, np.ndarray] = {}
        for i, a in enumerate(names):
            deadline.check("pairwise expansion")
            va = pool[a]
            for b in names[i + 1 :]:
                vb = pool[b]
                with np.errstate(all="ignore"):
                    candidates[f"{a}*{b}"] = va * vb
                    candidates[f"{a}/{b}"] = va / np.where(np.abs(vb) < _EPS, np.nan, vb)
        for name, values in pool.items():
            if name not in numeric:
                candidates[name] = values
        n_generated = len(candidates)

        selected = self._select(candidates, y, deadline)
        working = frame.copy()
        for name in selected:
            values = np.nan_to_num(candidates[name], nan=0.0, posinf=0.0, neginf=0.0)
            working[name] = Series(values.tolist(), name)
        return AFEResult(
            frame=working,
            new_columns=selected,
            n_generated=n_generated,
            notes={"method": "autofeat"},
        )

    # ------------------------------------------------------------------
    def _select(
        self, candidates: dict[str, np.ndarray], y: np.ndarray, deadline: Deadline
    ) -> list[str]:
        """Correlation pre-filter, then an L1 stability path."""
        scored: list[tuple[float, str]] = []
        for name, values in candidates.items():
            deadline.check("correlation pre-filter")
            clean = np.nan_to_num(values, nan=0.0, posinf=0.0, neginf=0.0)
            if clean.std() == 0:
                continue
            corr = float(np.corrcoef(clean, y)[0, 1])
            if np.isnan(corr):
                continue
            scored.append((abs(corr), name))
        scored.sort(reverse=True)
        shortlist = [name for _, name in scored[: self.prefilter_top]]
        if not shortlist:
            return []
        matrix = np.column_stack(
            [
                np.nan_to_num(candidates[name], nan=0.0, posinf=0.0, neginf=0.0)
                for name in shortlist
            ]
        )
        matrix = StandardScaler().fit_transform(matrix)
        votes = np.zeros(len(shortlist))
        total_fits = 0
        rng = np.random.default_rng(self.seed)
        # Stability selection: AutoFeat's noise-filtering repeats the
        # regularised fit on resamples and keeps persistently weighted
        # features.  This is also where its runtime goes on large data.
        for sweep in range(max(self.stability_sweeps, 1)):
            rows = (
                rng.integers(0, len(y), size=len(y))
                if sweep > 0
                else np.arange(len(y))
            )
            if len(np.unique(y[rows])) < 2:
                continue
            for strength in self.l1_strengths:
                deadline.check("L1 stability path")
                # L2-as-proxy path with hard thresholding stands in for
                # coordinate-descent L1 (scipy has no l1 logistic); the
                # stability-selection behaviour is what matters here.
                model = LogisticRegression(C=strength, max_iter=120)
                model.fit(matrix[rows], y[rows])
                votes += (np.abs(model.coef_) > self.weight_threshold).astype(float)
                total_fits += 1
        keep_mask = votes >= (total_fits / 2.0)
        kept = [name for name, keep in zip(shortlist, keep_mask) if keep]
        if len(kept) > self.max_selected:
            strength_order = {name: rank for rank, (_, name) in enumerate(scored)}
            kept.sort(key=lambda n: strength_order[n])
            kept = kept[: self.max_selected]
        return kept
