"""Shared baseline plumbing: results, deadlines, timeouts."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dataframe import DataFrame

__all__ = ["AFEResult", "BaselineTimeoutError", "Deadline"]


class BaselineTimeoutError(Exception):
    """An AFE method exceeded its time budget (the paper's DNF outcome)."""


@dataclass
class Deadline:
    """Cooperative time budget checked inside long-running loops."""

    seconds: float | None = None
    started_at: float = field(default_factory=time.monotonic)

    def check(self, label: str = "") -> None:
        """Raise :class:`BaselineTimeoutError` once the budget is spent."""
        if self.seconds is None:
            return
        elapsed = time.monotonic() - self.started_at
        if elapsed > self.seconds:
            raise BaselineTimeoutError(
                f"time budget of {self.seconds:.0f}s exceeded{f' during {label}' if label else ''}"
            )

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started_at


@dataclass
class AFEResult:
    """Outcome of one automated-feature-engineering run.

    ``n_generated`` counts every feature the method materialised;
    ``new_columns`` lists the ones surviving its selection step (the
    Table 6 "# generated features (sel-k)" distinction).
    """

    frame: DataFrame
    new_columns: list[str]
    n_generated: int
    notes: dict[str, str] = field(default_factory=dict)

    @property
    def n_selected(self) -> int:
        return len(self.new_columns)
