"""CAAFE-style FM feature engineering with validation-gated acceptance.

CAAFE (Hollmann et al.) prompts an FM for free-form feature code over a
dataframe — no operator guidance — and keeps a generated feature only if
it improves performance on a validation split.  Differences from
SMARTFEAT that the paper calls out, all reproduced here:

* unguided generation drifts toward combinations of numeric attributes;
* sample feature *values* are included in the prompt;
* the validation step trains the downstream model once per iteration —
  effective but expensive, the source of the paper's DNN timeouts on
  large datasets;
* generated code carries no NaN/zero guards.  Non-finite values are
  masked during CAAFE's own validation (so a harmful ratio can still be
  accepted) but remain in the returned frame — the mechanism behind the
  paper's note that CAAFE "failed on the Diabetes dataset … divide-by-
  zero transformations … caused the ML models to fail".
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AFEResult, Deadline
from repro.core.agenda import DataAgenda
from repro.core.parsing import extract_code
from repro.core.prompts import caafe_prompt
from repro.core.sandbox import TransformError, run_script
from repro.dataframe import DataFrame
from repro.fm.base import FMClient
from repro.fm.errors import FMBudgetExceededError, FMError, FMParseError
from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import roc_auc_score
from repro.ml.model_selection import train_test_split
from repro.ml.registry import make_model

__all__ = ["CAAFELike"]


class CAAFELike:
    """Ten-iteration FM code-generation loop with validation gating.

    Parameters
    ----------
    fm:
        Foundation-model client (the paper runs CAAFE with GPT-4).
    validation_model:
        Downstream model name used for the accept/reject check — CAAFE
        validates against the model it is engineering for.
    iterations:
        Feature-generation rounds (paper setting: 10).
    """

    def __init__(
        self,
        fm: FMClient,
        validation_model: str | BaseEstimator = "lr",
        iterations: int = 10,
        sample_rows: int = 5,
        seed: int = 0,
    ) -> None:
        self.fm = fm
        self.validation_model = validation_model
        self.iterations = iterations
        self.sample_rows = sample_rows
        self.seed = seed

    # ------------------------------------------------------------------
    def fit_transform(
        self,
        frame: DataFrame,
        target: str,
        descriptions: dict[str, str] | None = None,
        title: str = "",
        target_description: str = "",
        deadline: Deadline | None = None,
    ) -> AFEResult:
        deadline = deadline or Deadline()
        agenda = DataAgenda.from_dataframe(
            frame,
            target=target,
            descriptions=descriptions,
            title=title,
            target_description=target_description,
        )
        working = frame.copy()
        accepted: list[str] = []
        n_generated = 0
        baseline_auc = self._validation_auc(working, target, deadline)
        for iteration in range(self.iterations):
            deadline.check("CAAFE iteration")
            sample = working.drop(columns=[target]).head(self.sample_rows).to_string()
            prompt = caafe_prompt(agenda, sample, iteration)
            try:
                response = self.fm.complete(prompt, temperature=0.7)
                code = extract_code(response.text)
                candidate_frame = run_script(code, working)
            except FMBudgetExceededError:
                raise  # budget exhaustion ends the whole run, not one round
            except (FMError, FMParseError, TransformError):
                continue
            new_columns = [c for c in candidate_frame.columns if c not in working.columns]
            if not new_columns:
                continue
            n_generated += len(new_columns)
            try:
                candidate_auc = self._validation_auc(candidate_frame, target, deadline)
            except ValueError:
                continue  # validation model could not be fit at all
            if candidate_auc > baseline_auc + 1e-6:
                working = candidate_frame
                baseline_auc = candidate_auc
                accepted.extend(new_columns)
                for column in new_columns:
                    kind = "numeric" if candidate_frame[column].dtype.kind in "ifb" else "categorical"
                    agenda.add(column, kind, f"generated at iteration {iteration}")
        return AFEResult(
            frame=working,
            new_columns=accepted,
            n_generated=n_generated,
            notes={"method": "caafe", "validation_auc": f"{baseline_auc:.4f}"},
        )

    # ------------------------------------------------------------------
    def _validation_auc(self, frame: DataFrame, target: str, deadline: Deadline) -> float:
        """AUC of the validation model on a holdout split.

        CAAFE's validator masks non-finite values (``nan_to_num``) before
        fitting — which is exactly how an unguarded division can pass
        validation and still poison the returned frame for stricter
        downstream consumers.
        """
        deadline.check("CAAFE validation")
        X = self._numeric_matrix(frame, target)
        y = frame[target]._numeric().astype(np.int64)
        X_train, X_val, y_train, y_val = train_test_split(X, y, test_size=0.3, seed=self.seed)
        model = (
            make_model(self.validation_model, seed=self.seed)
            if isinstance(self.validation_model, str)
            else clone(self.validation_model)
        )
        model.fit(X_train, y_train)
        return roc_auc_score(y_val, model.predict_proba(X_val)[:, 1])

    @staticmethod
    def _numeric_matrix(frame: DataFrame, target: str) -> np.ndarray:
        from repro.dataframe.reshape import factorize

        columns = []
        for name in frame.columns:
            if name == target:
                continue
            series = frame[name]
            if series.dtype == object:
                codes, _ = factorize(series)
                columns.append(codes.astype(np.float64))
            else:
                # CAAFE's validator zero-masks non-finite values (TabPFN-style
                # input clipping) — so an unguarded ratio can look great on
                # its valid rows and be accepted despite the infinities.
                columns.append(
                    np.nan_to_num(series._numeric(), nan=0.0, posinf=0.0, neginf=0.0)
                )
        return np.column_stack(columns) if columns else np.zeros((len(frame), 0))
