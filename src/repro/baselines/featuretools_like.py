"""Featuretools-style Deep Feature Synthesis (DSM baseline).

The paper configures Featuretools with the ``add_numeric`` and
``multiply_numeric`` transform primitives plus aggregation primitives,
then relies on its built-in selection to remove highly correlated, highly
null, and single-value features.  The expansion is *context-free*: every
numeric pair is combined regardless of meaning, which is exactly why its
features often fail to help (Table 4's negative deltas).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AFEResult, Deadline
from repro.dataframe import DataFrame, Series

__all__ = ["FeaturetoolsDFS"]


class FeaturetoolsDFS:
    """Exhaustive primitive application + correlation-based selection.

    Parameters
    ----------
    primitives:
        Transform primitives over numeric pairs (``add_numeric``,
        ``multiply_numeric``, per the paper's configuration).
    agg_primitives:
        GroupBy aggregations applied for every (categorical, numeric) pair.
    corr_threshold:
        Selection drops a new feature whose absolute correlation with any
        retained column exceeds this.
    max_null_fraction:
        Selection drops features with more missing values than this.
    """

    def __init__(
        self,
        primitives: tuple[str, ...] = ("add_numeric", "multiply_numeric"),
        agg_primitives: tuple[str, ...] = ("mean", "max", "min", "sum"),
        corr_threshold: float = 0.95,
        max_null_fraction: float = 0.3,
        max_group_cardinality: int = 50,
    ) -> None:
        unknown = set(primitives) - {"add_numeric", "multiply_numeric", "subtract_numeric", "divide_numeric"}
        if unknown:
            raise ValueError(f"unknown primitives: {sorted(unknown)}")
        self.primitives = primitives
        self.agg_primitives = agg_primitives
        self.corr_threshold = corr_threshold
        self.max_null_fraction = max_null_fraction
        self.max_group_cardinality = max_group_cardinality

    _PRIMITIVE_OPS = {
        "add_numeric": ("+", lambda a, b: a + b),
        "multiply_numeric": ("*", lambda a, b: a * b),
        "subtract_numeric": ("-", lambda a, b: a - b),
        "divide_numeric": ("/", lambda a, b: a / b),
    }

    def fit_transform(
        self, frame: DataFrame, target: str, deadline: Deadline | None = None
    ) -> AFEResult:
        """Expand every applicable primitive, then select."""
        deadline = deadline or Deadline()
        working = frame.copy()
        numeric = [c for c in frame.numeric_columns() if c != target]
        categorical = [
            c
            for c in frame.categorical_columns()
            if frame[c].nunique() <= self.max_group_cardinality
        ]
        candidates: dict[str, Series] = {}
        for name in self.primitives:
            symbol, op = self._PRIMITIVE_OPS[name]
            for i, a in enumerate(numeric):
                deadline.check("transform primitives")
                for b in numeric[i + 1 :]:
                    candidates[f"{a} {symbol} {b}"] = op(frame[a], frame[b])
        for group_col in categorical:
            for agg in self.agg_primitives:
                deadline.check("aggregation primitives")
                for value_col in numeric:
                    name = f"{agg.upper()}({value_col}) by {group_col}"
                    candidates[name] = frame.groupby(group_col)[value_col].transform(agg)
        n_generated = len(candidates)
        selected = self._select(frame, target, candidates, deadline)
        for name, series in selected.items():
            working[name] = series
        return AFEResult(
            frame=working,
            new_columns=list(selected),
            n_generated=n_generated,
            notes={"method": "featuretools_dfs"},
        )

    # ------------------------------------------------------------------
    def _select(
        self,
        frame: DataFrame,
        target: str,
        candidates: dict[str, Series],
        deadline: Deadline,
    ) -> dict[str, Series]:
        """Featuretools-style screening: null / constant / correlated."""
        kept: dict[str, Series] = {}
        kept_arrays: list[np.ndarray] = [
            frame[c]._numeric() for c in frame.numeric_columns() if c != target
        ]
        for name, series in candidates.items():
            deadline.check("feature selection")
            values = series._numeric()
            finite = np.isfinite(values)
            if 1.0 - finite.mean() > self.max_null_fraction:
                continue
            present = values[finite]
            if len(present) == 0 or present.std() == 0:
                continue
            if self._correlated_with_any(values, kept_arrays):
                continue
            kept[name] = series
            kept_arrays.append(values)
        return kept

    def _correlated_with_any(self, values: np.ndarray, pool: list[np.ndarray]) -> bool:
        for other in pool:
            mask = np.isfinite(values) & np.isfinite(other)
            if mask.sum() < 3:
                continue
            a, b = values[mask], other[mask]
            if a.std() == 0 or b.std() == 0:
                continue
            if abs(float(np.corrcoef(a, b)[0, 1])) > self.corr_threshold:
                return True
        return False
