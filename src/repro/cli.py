"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the eight built-in evaluation datasets (Table 3).
``run``
    Run SMARTFEAT on a built-in dataset or a CSV file and print the
    generated features, optionally writing the enriched CSV.
``compare``
    Run the method comparison (initial / SMARTFEAT / baselines) on a
    built-in dataset and print the Table 4-style row.
``plan export`` / ``plan apply``
    The fit/serve split: ``export`` fits SMARTFEAT and writes the
    compiled :class:`~repro.serve.FeaturePlan` JSON (or saves it into a
    plan registry); ``apply`` replays a plan over fresh CSV rows with no
    FM client in the loop.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import SmartFeat
from repro.core.pipeline import resolve_executor
from repro.datasets import DATASET_NAMES, list_datasets, load_dataset
from repro.eval import (
    SweepConfig,
    render_auc_table,
    render_schedule,
    render_sweep_summary,
    render_table,
    run_sweep,
)
from repro.eval.harness import evaluate_models
from repro.fm import (
    Budget,
    FMBudgetExceededError,
    FMCache,
    HedgePolicy,
    SimulatedFM,
    live_provider_configured,
    provider_from_env,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMARTFEAT reproduction: FM-guided automated feature engineering.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the built-in evaluation datasets")

    run = sub.add_parser("run", help="run SMARTFEAT on a dataset or CSV")
    run.add_argument("source", help=f"dataset name ({', '.join(DATASET_NAMES)}) or a CSV path")
    run.add_argument("--target", help="target column (required for CSV sources)")
    run.add_argument("--rows", type=int, default=800, help="row cap for built-in datasets")
    run.add_argument("--model", default="random_forest", help="downstream model name")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--output", help="write the enriched table to this CSV path")
    run.add_argument("--evaluate", action="store_true", help="print before/after AUC")
    run.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="max in-flight FM calls (default 1 = serial; >1 uses the thread-pool executor)",
    )
    run.add_argument(
        "--executor",
        choices=("serial", "thread", "async"),
        default=None,
        help=(
            "FM execution backend (default: serial, or thread when "
            "--concurrency > 1).  'async' runs batches on an executor-owned "
            "asyncio event loop — the backend a real HTTP client plugs "
            "into.  --concurrency bounds thread/async in-flight calls "
            "(explicit values are honoured exactly; unset defaults to 8)"
        ),
    )
    run.add_argument(
        "--wave-size",
        type=int,
        default=None,
        help=(
            "sampling draws speculatively issued per wave; a semantic knob — "
            "it changes which candidates are drawn (default: --concurrency, "
            "so the pool has work to fan out)"
        ),
    )
    run.add_argument(
        "--fm-cache",
        metavar="PATH",
        default=None,
        help="persistent JSON cache for temperature-0 FM calls (created if missing)",
    )
    run.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "checkpoint the search state to this file after every "
            "completed stage, so a killed run can be resumed"
        ),
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from --checkpoint: completed stages are restored "
            "(zero re-spent FM calls) and only the remainder runs"
        ),
    )
    run.add_argument(
        "--adaptive-concurrency",
        action="store_true",
        help=(
            "AIMD concurrency control: back off multiplicatively on "
            "429/5xx backpressure, recover additively on success "
            "(bounded above by --concurrency)"
        ),
    )
    run.add_argument(
        "--hedge",
        type=float,
        default=None,
        metavar="QUANTILE",
        help=(
            "hedged requests: once a call outlives this latency quantile "
            "(e.g. 0.95), issue a duplicate and take the first answer "
            "(only applies to stateless clients; the simulated client is "
            "stateful, so this knob matters for transport-backed runs)"
        ),
    )
    _add_stage_plan_flags(run)
    _add_budget_flags(run)

    compare = sub.add_parser("compare", help="compare methods on a built-in dataset")
    compare.add_argument("dataset", choices=DATASET_NAMES)
    compare.add_argument("--rows", type=int, default=900)
    compare.add_argument("--models", default="lr,nb,rf", help="comma-separated model names")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--sweep-concurrency",
        type=int,
        default=1,
        help="max (dataset, method) cells evaluated at once (1 = serial sweep)",
    )
    _add_stage_plan_flags(compare)
    _add_budget_flags(compare, per_cell=True)

    plan = sub.add_parser("plan", help="compile and replay serving FeaturePlans")
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)

    export = plan_sub.add_parser(
        "export", help="fit SMARTFEAT and write the compiled plan JSON"
    )
    export.add_argument(
        "source", help=f"dataset name ({', '.join(DATASET_NAMES)}) or a CSV path"
    )
    export.add_argument("--target", help="target column (required for CSV sources)")
    export.add_argument("--rows", type=int, default=400, help="row cap for built-in datasets")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--out", help="write the plan JSON to this path")
    export.add_argument("--registry", help="plan registry directory to save into")
    export.add_argument(
        "--name", help="plan name inside the registry (default: the source name)"
    )

    apply_ = plan_sub.add_parser(
        "apply", help="replay a compiled plan over fresh CSV rows (no FM)"
    )
    apply_.add_argument("--plan", help="path to a plan JSON file")
    apply_.add_argument("--registry", help="plan registry directory to load from")
    apply_.add_argument("--name", help="plan name inside the registry")
    apply_.add_argument("--version", type=int, default=None, help="registry plan version")
    apply_.add_argument("--csv", required=True, help="CSV of rows to transform")
    apply_.add_argument("--out", help="write the featured rows to this CSV path")
    apply_.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stream the CSV through the plan N rows at a time instead of "
            "loading it whole (out-of-core: bounded memory, incremental "
            "--out writes, output bit-identical to the unchunked path)"
        ),
    )
    apply_.add_argument(
        "--pipeline-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "overlap CSV decode, per-shard transform, and ordered --out "
            "writes with N transform threads (needs --chunk-rows; output "
            "stays byte-identical to the sequential stream)"
        ),
    )
    apply_.add_argument(
        "--pipeline-prefetch",
        type=int,
        default=None,
        metavar="M",
        help=(
            "bound on decoded-ahead shards beyond the workers "
            "(default: one per worker; total in-flight = N + M)"
        ),
    )
    apply_.add_argument(
        "--failure-policy",
        choices=["strict", "degrade"],
        default="strict",
        help=(
            "strict (default): any failing feature fails the batch; "
            "degrade: failing features yield NaN columns and a health report"
        ),
    )
    apply_.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        help=(
            "open a per-feature circuit breaker after this many consecutive "
            "failures (0 disables breakers)"
        ),
    )
    apply_.add_argument(
        "--watchdog-timeout",
        type=float,
        default=None,
        help="wall-clock seconds a sandbox-fallback feature may take per batch",
    )
    return parser


def _add_stage_plan_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stage-plan",
        choices=("serial", "overlap"),
        default="serial",
        help=(
            "stage scheduling: 'serial' runs the paper's §3.2 chain "
            "(every stage sees everything so far); 'overlap' cuts each "
            "stage's view to its declared reads so independent stages "
            "schedule side by side (result-identical on seeded clients, "
            "shorter modelled makespan and smaller prompts)"
        ),
    )
    parser.add_argument(
        "--plan-budget",
        action="store_true",
        help=(
            "budget-aware stage planning: right-size sampling budgets and "
            "drop optional stages to fit the remaining FM budget instead "
            "of aborting mid-run (requires --max-cost/--max-fm-calls)"
        ),
    )


def _add_budget_flags(parser: argparse.ArgumentParser, per_cell: bool = False) -> None:
    scope = "per sweep cell" if per_cell else "for the run"
    parser.add_argument(
        "--max-cost",
        type=float,
        default=None,
        metavar="USD",
        help=f"FM dollar budget {scope}; exceeding it stops FM calls",
    )
    parser.add_argument(
        "--max-fm-calls",
        type=int,
        default=None,
        metavar="N",
        help=f"FM call budget {scope}; exceeding it stops FM calls",
    )


def _budget_from_args(args) -> Budget | None:
    if args.max_cost is None and args.max_fm_calls is None:
        return None
    return Budget(max_cost_usd=args.max_cost, max_calls=args.max_fm_calls)


def _cmd_datasets() -> int:
    rows = [
        [s.name, str(s.n_categorical), str(s.n_numeric), str(s.n_rows), s.field, s.target]
        for s in list_datasets()
    ]
    print(render_table(["Dataset", "# cat", "# num", "# rows", "Field", "Target"], rows))
    return 0


def _load_source(args) -> tuple:
    if args.source in DATASET_NAMES:
        bundle = load_dataset(args.source, seed=args.seed, n_rows=args.rows)
        return (
            bundle.frame,
            bundle.target,
            bundle.descriptions,
            bundle.title,
            bundle.target_description,
        )
    from repro.dataframe import read_csv

    if not args.target:
        raise SystemExit("--target is required for CSV sources")
    frame = read_csv(args.source)
    if args.target not in frame.columns:
        raise SystemExit(f"target column {args.target!r} not in {args.source}")
    return frame, args.target, None, "", ""


def _make_clients(args) -> tuple:
    """The config-selected FM pair: live HTTP transports when the
    environment opts in (``SMARTFEAT_PROVIDER`` + ``SMARTFEAT_API_KEY``),
    the seeded simulator otherwise.  CI never sets the variables, so the
    live path is never exercised there."""
    if live_provider_configured():
        fm = provider_from_env()
        function_fm = provider_from_env()
        print(
            f"Using live provider (model {fm.model}); "
            "unset SMARTFEAT_PROVIDER to run on the simulator",
            file=sys.stderr,
        )
        return fm, function_fm
    return (
        SimulatedFM(seed=args.seed, model="gpt-4"),
        SimulatedFM(seed=args.seed + 1, model="gpt-3.5-turbo"),
    )


def _cmd_run(args) -> int:
    frame, target, descriptions, title, target_description = _load_source(args)
    if args.concurrency is not None and args.concurrency < 1:
        raise SystemExit("--concurrency must be >= 1")
    if args.plan_budget and _budget_from_args(args) is None:
        raise SystemExit(
            "--plan-budget needs a budget to plan against: "
            "pass --max-cost and/or --max-fm-calls"
        )
    if args.wave_size is not None and args.wave_size < 1:
        raise SystemExit("--wave-size must be >= 1")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    if args.hedge is not None and not (0.0 < args.hedge < 1.0):
        raise SystemExit("--hedge must be a quantile in (0, 1)")
    backend = args.executor or ("thread" if (args.concurrency or 1) > 1 else "serial")
    if backend == "serial" and (args.concurrency or 1) > 1:
        raise SystemExit("--executor serial conflicts with --concurrency > 1")
    # An explicit --concurrency is honoured exactly (even 1: a real
    # rate-limit bound); only an unset one falls back to the backend's
    # default of 8 for thread/async.
    executor = resolve_executor(
        backend,
        args.concurrency,
        adaptive=True if args.adaptive_concurrency else None,
        hedge=HedgePolicy(quantile=args.hedge) if args.hedge is not None else None,
    )
    cache = FMCache(path=args.fm_cache) if args.fm_cache else None
    # --wave-size defaults to the backend's concurrency so the pool (or
    # loop) has sampling work to fan out; pass --wave-size explicitly to
    # fix the search semantics independently of the backend.
    wave_size = args.wave_size if args.wave_size is not None else executor.concurrency
    fm, function_fm = _make_clients(args)
    tool = SmartFeat(
        fm=fm,
        function_fm=function_fm,
        downstream_model=args.model,
        executor=executor,
        cache=cache,
        wave_size=wave_size,
        budget=_budget_from_args(args),
        stage_plan=args.stage_plan,
        plan_budget=args.plan_budget,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    try:
        result = tool.fit_transform(
            frame,
            target=target,
            descriptions=descriptions,
            title=title,
            target_description=target_description,
        )
    except FMBudgetExceededError as exc:
        if cache is not None:
            cache.save()  # keep what was paid for; a rerun starts warm
        raise SystemExit(f"aborted: {exc}")
    finally:
        close = getattr(executor, "close", None)
        if close is not None:  # thread pool / event loop backends hold threads
            close()
    print(f"Generated {len(result.new_features)} features:")
    for feature in result.new_features.values():
        print(f"  [{feature.family.value:10s}] {feature.name}")
    if result.dropped:
        print(f"Dropped originals: {result.dropped}")
    for plan in result.row_plans:
        print(
            f"Deferred row-level feature {plan.name!r}: {plan.estimated_calls} calls, "
            f"~${plan.estimated_cost_usd:.2f}"
        )
    for suggestion in result.suggestions:
        print(f"Data sources for {suggestion.name!r}: {suggestion.sources}")
    if args.evaluate:
        before = evaluate_models(frame, target, models=("lr", "rf"), n_splits=3)
        after = evaluate_models(result.frame, target, models=("lr", "rf"), n_splits=3)
        for model in before:
            print(f"  {model}: {before[model]:.2f} -> {after[model]:.2f}")
    if args.output:
        from repro.dataframe.io import to_csv

        to_csv(result.frame, args.output)
        print(f"Wrote enriched table to {args.output}")
    execution = result.fm_usage["execution"]
    print(
        f"FM execution: concurrency {execution['concurrency']}, "
        f"{execution['summed_latency_s']:.0f}s summed latency, "
        f"{execution['critical_path_s']:.0f}s critical path"
        + (f", {execution['cache_hits']} cache hits" if execution["cache_hits"] else "")
    )
    print(render_schedule(execution["schedule"]))
    if cache is not None:
        cache.save()
        print(f"FM cache: {len(cache)} entries saved to {args.fm_cache}")
    return 0


def _cmd_compare(args) -> int:
    if args.sweep_concurrency < 1:
        raise SystemExit("--sweep-concurrency must be >= 1")
    if args.plan_budget and _budget_from_args(args) is None:
        raise SystemExit(
            "--plan-budget needs a budget to plan against: "
            "pass --max-cost and/or --max-fm-calls"
        )
    config = SweepConfig(
        datasets=(args.dataset,),
        models=tuple(m.strip() for m in args.models.split(",") if m.strip()),
        n_rows=args.rows,
        n_splits=3,
        time_limit_s=None,
        seed=args.seed,
        sweep_concurrency=args.sweep_concurrency,
        max_cost_usd=args.max_cost,
        max_fm_calls=args.max_fm_calls,
        stage_plan=args.stage_plan,
        plan_budget=args.plan_budget,
    )
    result = run_sweep(config, progress=lambda line: print(f"  {line}", file=sys.stderr))
    print(render_auc_table(result, aggregate="average"))
    print(file=sys.stderr)
    print(render_sweep_summary(result), file=sys.stderr)
    return 0


def _cmd_plan_export(args) -> int:
    from repro.serve import PlanRegistry

    if not args.out and not args.registry:
        raise SystemExit("pass --out and/or --registry to store the exported plan")
    frame, target, descriptions, title, target_description = _load_source(args)
    fm, function_fm = _make_clients(args)
    tool = SmartFeat(fm=fm, function_fm=function_fm, compile_plan=True)
    result = tool.fit_transform(
        frame,
        target=target,
        descriptions=descriptions,
        title=title,
        target_description=target_description,
    )
    plan = result.plan
    counts = plan.counts()
    print(
        f"Compiled plan: {len(plan.features)} features "
        f"({counts['compiled']} compiled, {counts['fallback']} fallback, "
        f"{counts['omitted']} omitted), fingerprint {plan.fingerprint[:12]}…"
    )
    for spec in plan.features:
        if spec.status != "compiled":
            print(f"  [{spec.status}] {spec.name}: {spec.reason}")
    if args.out:
        plan.save(args.out)
        print(f"Wrote plan to {args.out}")
    if args.registry:
        name = args.name or (
            args.source if args.source in DATASET_NAMES else "plan"
        )
        version = PlanRegistry(args.registry).save(plan, name)
        print(f"Saved to registry {args.registry} as {name} v{version}")
    return 0


def _cmd_plan_apply(args) -> int:
    from repro.dataframe import read_csv
    from repro.serve import FeaturePlan, FeatureServer, PlanError, PlanRegistry

    if bool(args.plan) == bool(args.registry):
        raise SystemExit("pass exactly one of --plan or --registry/--name")
    try:
        if args.plan:
            plan = FeaturePlan.load(args.plan)
            server = FeatureServer(
                plan=plan,
                failure_policy=args.failure_policy,
                breaker_threshold=args.breaker_threshold,
                watchdog_timeout=args.watchdog_timeout,
            )
        else:
            if not args.name:
                raise SystemExit("--registry needs --name")
            registry = PlanRegistry(args.registry)
            server = FeatureServer(
                registry=registry,
                name=args.name,
                version=args.version,
                failure_policy=args.failure_policy,
                breaker_threshold=args.breaker_threshold,
                watchdog_timeout=args.watchdog_timeout,
            )
            plan = server.plan_for()
        if args.pipeline_workers is not None and args.chunk_rows is None:
            raise SystemExit("--pipeline-workers needs --chunk-rows")
        if args.pipeline_workers is not None and args.pipeline_workers < 1:
            raise SystemExit("--pipeline-workers must be >= 1")
        if args.pipeline_prefetch is not None:
            if args.pipeline_workers is None:
                raise SystemExit("--pipeline-prefetch needs --pipeline-workers")
            if args.pipeline_prefetch < 1:
                raise SystemExit("--pipeline-prefetch must be >= 1")
        if args.chunk_rows is not None:
            if args.chunk_rows < 1:
                raise SystemExit("--chunk-rows must be >= 1")
            return _plan_apply_streaming(args, server, plan)
        rows = read_csv(args.csv)
        featured, report = server.transform_with_report(rows)
    except PlanError as exc:
        raise SystemExit(f"plan apply failed: {exc}")
    print(
        f"Applied plan ({len(plan.features)} features) to {len(rows)} rows: "
        f"{len(featured.columns)} columns out"
    )
    if args.failure_policy == "degrade":
        health = server.health()
        apply_report = report.apply_report
        print(
            f"Health: {health['status']} — "
            f"{apply_report.degraded_fraction:.0%} of features degraded, "
            f"{health['rows_quarantined']} rows quarantined"
        )
        for feature in apply_report.failures():
            print(f"  [{feature.status}] {feature.feature}: {feature.reason}")
    if args.out:
        from repro.dataframe.io import to_csv

        to_csv(featured, args.out)
        print(f"Wrote featured rows to {args.out}")
    else:
        preview = ", ".join(featured.columns[:8])
        more = len(featured.columns) - 8
        print(f"Columns: {preview}" + (f" … +{more} more" if more > 0 else ""))
    return 0


def _plan_apply_streaming(args, server, plan) -> int:
    """``plan apply --chunk-rows N``: replay the plan over a CSV shard
    stream, never holding more than one chunk (plus its featured output).

    A one-pass schema scan pins every chunk to the whole-file column
    dtypes, so each shard is bit-identical to the matching row slice of
    ``read_csv`` and the streamed output matches the unchunked path
    column-for-column; ``--out`` appends shard-by-shard (header once).

    ``--pipeline-workers N`` overlaps the three stages (decode,
    transform, ordered write) through the shard pipeline; the
    re-sequencing buffer keeps ``--out`` bytes identical to the
    sequential stream, and per-stage wall-clock/queue-depth stats print
    at the end.
    """
    from repro.dataframe.io import read_csv_shards, scan_csv_kinds, to_csv

    schema = scan_csv_kinds(args.csv)
    n_shards = 0
    columns: list[str] = []
    stream = server.transform_stream(
        read_csv_shards(args.csv, args.chunk_rows, schema=schema),
        pipeline_workers=args.pipeline_workers,
        pipeline_prefetch=args.pipeline_prefetch,
    )
    for featured in stream:
        columns = featured.columns
        if args.out:
            to_csv(featured, args.out, append=n_shards > 0)
        n_shards += 1
    rows_in = server.stats()["rows_in"]
    print(
        f"Applied plan ({len(plan.features)} features) to {rows_in} rows "
        f"in {n_shards} chunks of <= {args.chunk_rows}: "
        f"{len(columns)} columns out"
    )
    if args.pipeline_workers is not None:
        pipe = server.stats().get("pipeline", {})
        stage = pipe.get("stage_s", {})
        depth = pipe.get("queue_depth", {})
        print(
            f"Pipeline: {pipe.get('workers', 0)} workers, "
            f"prefetch {pipe.get('prefetch', 0)} — wall {pipe.get('wall_s', 0.0):.2f}s "
            f"(decode {stage.get('produce', 0.0):.2f}s, "
            f"transform {stage.get('transform', 0.0):.2f}s, "
            f"emit wait {stage.get('emit_wait', 0.0):.2f}s); "
            f"queue depth max {depth.get('max', 0)} / "
            f"mean {depth.get('mean', 0.0):.1f}"
        )
    if args.failure_policy == "degrade":
        health = server.health()
        print(
            f"Health: {health['status']} — "
            f"failing features: {health['failing_features'] or 'none'}, "
            f"{health['rows_quarantined']} rows quarantined"
        )
    if args.out:
        print(f"Wrote featured rows to {args.out}")
    else:
        preview = ", ".join(columns[:8])
        more = len(columns) - 8
        print(f"Columns: {preview}" + (f" … +{more} more" if more > 0 else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "plan":
        if args.plan_command == "export":
            return _cmd_plan_export(args)
        return _cmd_plan_apply(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
