"""SMARTFEAT core: operator-guided, feature-level FM feature construction.

The public entry point is :class:`SmartFeat`:

>>> from repro.core import SmartFeat
>>> from repro.fm import SimulatedFM
>>> tool = SmartFeat(fm=SimulatedFM(seed=0), downstream_model="random_forest")
>>> result = tool.fit_transform(df, target="Safe")       # doctest: +SKIP
>>> result.frame.columns                                  # doctest: +SKIP

Components (Section 3 of the paper):

* :class:`~repro.core.agenda.DataAgenda` — the evolving feature-description
  registry serialised into every prompt;
* :class:`~repro.core.operator_selector.OperatorSelector` — proposal and
  sampling prompting over the four operator families;
* :class:`~repro.core.function_generator.FunctionGenerator` — turns selector
  output into executable transformations (or row-level completion plans, or
  external data-source suggestions);
* :mod:`~repro.core.validation` — the feature-quality screens;
* :class:`~repro.core.pipeline.SmartFeat` — the search loop plus the
  original-feature drop heuristic.
"""

from repro.core.agenda import DataAgenda
from repro.core.checkpoint import (
    CheckpointMismatchError,
    CheckpointStore,
    restore_run,
    snapshot_run,
)
from repro.core.operator_selector import OperatorSelector
from repro.core.function_generator import FunctionGenerator
from repro.core.pipeline import (
    SmartFeat,
    SmartFeatResult,
    complete_row_plan,
    resolve_executor,
)
from repro.core.parsing import parse_scalar
from repro.core.types import (
    FeatureCandidate,
    GeneratedFeature,
    OperatorFamily,
    RowCompletionPlan,
    SourceSuggestion,
)
from repro.core.validation import ValidationConfig, validate_output

__all__ = [
    "CheckpointMismatchError",
    "CheckpointStore",
    "DataAgenda",
    "FeatureCandidate",
    "FunctionGenerator",
    "GeneratedFeature",
    "OperatorFamily",
    "OperatorSelector",
    "RowCompletionPlan",
    "SmartFeat",
    "SmartFeatResult",
    "SourceSuggestion",
    "ValidationConfig",
    "complete_row_plan",
    "parse_scalar",
    "resolve_executor",
    "restore_run",
    "snapshot_run",
    "validate_output",
]
