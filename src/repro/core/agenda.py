"""The data agenda: the evolving feature-description registry.

Section 3.1: SMARTFEAT's input is (1) the dataset feature description,
(2) the prediction class, and (3) the downstream model.  Each accepted
feature's name and description are appended, and the updated agenda seeds
the next iteration's prompts.  :meth:`DataAgenda.describe` is the exact
serialisation every prompt embeds (and the simulator parses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataframe import DataFrame

__all__ = ["AgendaEntry", "DataAgenda"]

#: Upper bound on how many category values are listed in the agenda;
#: columns above this read as "high cardinality" to the FM.
MAX_LISTED_VALUES = 15


@dataclass
class AgendaEntry:
    """One feature's agenda line: name, kind, optional domain, description."""

    name: str
    kind: str  # "numeric" | "categorical" | "binary"
    description: str = ""
    values: list[str] = field(default_factory=list)

    def render(self) -> str:
        values = f", values: {'|'.join(self.values)}" if self.values else ""
        return f"- {self.name} ({self.kind}{values}): {self.description}"


def _column_kind(frame: DataFrame, name: str) -> tuple[str, list[str]]:
    """Classify a column and collect its listable category values."""
    series = frame[name]
    if series.dtype == object:
        uniques = series.unique()
        values = [str(v) for v in uniques[:MAX_LISTED_VALUES]] if len(uniques) <= MAX_LISTED_VALUES else []
        return "categorical", values
    uniques = set(series.dropna().tolist())
    if uniques <= {0, 1, 0.0, 1.0, True, False}:
        return "binary", []
    return "numeric", []


@dataclass
class DataAgenda:
    """Serializable description of the dataset, target, and model context."""

    title: str = ""
    target: str = ""
    target_description: str = ""
    model: str = ""
    entries: dict[str, AgendaEntry] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_dataframe(
        cls,
        frame: DataFrame,
        target: str,
        descriptions: dict[str, str] | None = None,
        title: str = "",
        target_description: str = "",
        model: str = "",
    ) -> "DataAgenda":
        """Build the initial agenda from a dataframe plus its data card.

        *descriptions* maps column name → natural-language description (the
        content of a Kaggle-style data card).  Absent descriptions leave the
        entry with an empty description — the paper's "minimal input,
        consisting only of the feature names" configuration.
        """
        if target not in frame.columns:
            raise KeyError(f"target column {target!r} not in dataframe")
        descriptions = descriptions or {}
        agenda = cls(
            title=title,
            target=target,
            target_description=target_description,
            model=model,
        )
        for name in frame.columns:
            if name == target:
                continue
            kind, values = _column_kind(frame, name)
            agenda.entries[name] = AgendaEntry(
                name=name,
                kind=kind,
                description=descriptions.get(name, ""),
                values=values,
            )
        return agenda

    # ------------------------------------------------------------------
    def add(self, name: str, kind: str, description: str, values: list[str] | None = None) -> None:
        """Register a newly generated feature (name + description, §3.1)."""
        if kind not in ("numeric", "categorical", "binary"):
            raise ValueError(f"invalid agenda kind: {kind!r}")
        self.entries[name] = AgendaEntry(name, kind, description, list(values or []))

    def remove(self, name: str) -> None:
        self.entries.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    @property
    def feature_names(self) -> list[str]:
        return list(self.entries)

    def numeric_features(self) -> list[str]:
        return [e.name for e in self.entries.values() if e.kind == "numeric"]

    def categorical_features(self) -> list[str]:
        return [e.name for e in self.entries.values() if e.kind == "categorical"]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Serialise the agenda into the prompt block every template embeds."""
        lines = [f"Dataset description: {self.title or 'untitled dataset'}"]
        lines.append("Features:")
        for entry in self.entries.values():
            lines.append(entry.render())
        target_desc = f" — {self.target_description}" if self.target_description else ""
        lines.append(f"Prediction class: {self.target}{target_desc}")
        if self.model:
            lines.append(f"Downstream model: {self.model}")
        return "\n".join(lines)

    def subset(self, names) -> "DataAgenda":
        """A view of this agenda restricted to *names*, order preserved.

        Entry objects are shared, not copied — the stage scheduler builds
        one subset per sampling wave, so views must be cheap; treat them
        as read-only.  Title, target, and model context are retained
        (every stage prompt needs them).
        """
        keep = set(names)
        out = DataAgenda(
            title=self.title,
            target=self.target,
            target_description=self.target_description,
            model=self.model,
        )
        for name, entry in self.entries.items():
            if name in keep:
                out.entries[name] = entry
        return out

    def copy(self) -> "DataAgenda":
        out = DataAgenda(
            title=self.title,
            target=self.target,
            target_description=self.target_description,
            model=self.model,
        )
        for entry in self.entries.values():
            out.entries[entry.name] = AgendaEntry(
                entry.name, entry.kind, entry.description, list(entry.values)
            )
        return out
