"""Checkpointed search state: kill a run mid-graph, resume without re-spending.

The FM spend of a SMARTFEAT run is the expensive part; a crash (or an
operator Ctrl-C) that throws away five completed stages re-buys them on
the next attempt.  This module snapshots the run at **stage-node
granularity** — after every node the scheduler completes — and restores
it on resume:

- the working frame's columns (values + dtypes, in column order),
- the data agenda (the evolving prompt context),
- the accumulated :class:`~repro.core.pipeline.SmartFeatResult` payload
  (accepted features, drops, rejections, suggestions, row plans),
- the stage context's bookkeeping (column provenance tags, the drop
  heuristic's sets, planner-granted draw budgets),
- each FM client's ledger totals and per-call checkpoint state (the
  simulator's sampling counter, a scripted client's cursor), and
- the shared :class:`~repro.fm.base.Budget`'s spend counters.

A resumed run hands the scheduler the completed node names; those nodes
are marked ``"restored"`` and never dispatched, so the resumed run
issues **zero** FM calls for work the killed run already paid for — and,
because the clients' per-call state is restored too, the remaining
stages draw exactly the samples the uninterrupted run would have drawn:
the output frame is bit-identical.

Writes are atomic (tmp file + ``os.replace``) so a kill *during* a
checkpoint write leaves the previous checkpoint intact.  A checkpoint
records a fingerprint of the input (column names/dtypes, row count,
target, title); resuming against different data fails loudly.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.agenda import AgendaEntry, DataAgenda
from repro.core.types import (
    GeneratedFeature,
    OperatorFamily,
    RowCompletionPlan,
    SourceSuggestion,
)
from repro.dataframe import DataFrame, Series

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import StageContext
    from repro.fm.base import Budget, FMClient

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointMismatchError",
    "CheckpointStore",
    "fingerprint",
    "restore_run",
    "snapshot_run",
]

CHECKPOINT_VERSION = 1


class CheckpointMismatchError(ValueError):
    """The checkpoint does not belong to this (data, target, title) run."""


def _json_default(value):
    """Make numpy scalars (row-plan previews carry them) serializable."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return str(value)


class CheckpointStore:
    """One checkpoint file with atomic writes.

    ``save`` serialises through a temp file in the same directory and
    ``os.replace``s it over the target — readers (and a kill mid-write)
    only ever see a complete previous state or a complete new one.
    A lock serialises writers: under physical stage fan-out two nodes may
    finish (and checkpoint) at the same moment.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict | None:
        """The stored payload, or ``None`` when no checkpoint exists."""
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        return json.loads(raw)

    def save(self, payload: dict) -> None:
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(
                json.dumps(payload, default=_json_default, allow_nan=True)
            )
            os.replace(tmp, self.path)

    def clear(self) -> None:
        with self._lock:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def fingerprint(frame: DataFrame, target: str, title: str = "") -> dict:
    """Identity of the (data, task) a checkpoint belongs to."""
    return {
        "columns": [[name, frame[name].dtype.str] for name in frame.columns],
        "n_rows": len(frame),
        "target": target,
        "title": title,
    }


def _unique_clients(clients) -> list:
    seen: dict[int, object] = {}
    for client in clients:
        seen.setdefault(id(client), client)
    return list(seen.values())


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------
def snapshot_run(
    ctx: "StageContext",
    clients,
    budget: "Budget | None",
    completed,
    run_fingerprint: dict,
) -> dict:
    """Serialise the run's full restorable state after a node completed.

    Caller holds ``ctx.lock`` (or is the only thread): the frame, agenda,
    and result must not be mid-merge while they are being read.
    """
    frame = ctx.working
    columns = [
        {
            "name": name,
            "dtype": frame[name].dtype.str,
            "values": frame[name].tolist(),
        }
        for name in frame.columns
    ]
    agenda = ctx.agenda
    result = ctx.result
    return {
        "version": CHECKPOINT_VERSION,
        "fingerprint": run_fingerprint,
        "completed": list(completed),
        "context": {
            "columns": columns,
            "column_tags": dict(ctx.column_tags),
            "unary_transformed": sorted(ctx.unary_transformed),
            "used_by_other_ops": sorted(ctx.used_by_other_ops),
            "granted_draws": dict(ctx.granted_draws),
            "agenda": {
                "title": agenda.title,
                "target": agenda.target,
                "target_description": agenda.target_description,
                "model": agenda.model,
                "entries": [
                    {
                        "name": entry.name,
                        "kind": entry.kind,
                        "description": entry.description,
                        "values": list(entry.values),
                    }
                    for entry in agenda.entries.values()
                ],
            },
            "result": {
                "new_features": [
                    {
                        "name": feature.name,
                        "family": feature.family.value,
                        "input_columns": list(feature.input_columns),
                        "description": feature.description,
                        "output_columns": list(feature.output_columns),
                        "source_code": feature.source_code,
                        "fm_calls": feature.fm_calls,
                    }
                    for feature in result.new_features.values()
                ],
                "dropped": list(result.dropped),
                "removed_by_fm": list(result.removed_by_fm),
                "rejections": dict(result.rejections),
                "errors": dict(result.errors),
                "suggestions": [
                    {
                        "name": s.name,
                        "description": s.description,
                        "sources": list(s.sources),
                    }
                    for s in result.suggestions
                ],
                "row_plans": [
                    {
                        "name": p.name,
                        "description": p.description,
                        "preview": [
                            [dict(record), text] for record, text in p.preview
                        ],
                        "n_rows": p.n_rows,
                        "estimated_calls": p.estimated_calls,
                        "estimated_cost_usd": p.estimated_cost_usd,
                        "estimated_latency_s": p.estimated_latency_s,
                        "relevant_columns": list(p.relevant_columns),
                    }
                    for p in result.row_plans
                ],
            },
        },
        "clients": [
            {
                "model": client.model,
                "state": client.checkpoint_state(),
                "ledger": client.ledger.snapshot(),
            }
            for client in _unique_clients(clients)
        ],
        "budget": None if budget is None else budget.snapshot(),
    }


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def restore_run(
    payload: dict,
    ctx: "StageContext",
    clients,
    budget: "Budget | None",
    run_fingerprint: dict,
) -> frozenset[str]:
    """Rehydrate *ctx*, *clients*, and *budget* from a checkpoint payload.

    Returns the completed node names for the scheduler's ``completed``
    parameter.  Raises :class:`CheckpointMismatchError` when the payload
    belongs to different data or an incompatible checkpoint version.
    """
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointMismatchError(
            f"checkpoint version {payload.get('version')!r} != "
            f"expected {CHECKPOINT_VERSION}"
        )
    if payload.get("fingerprint") != run_fingerprint:
        raise CheckpointMismatchError(
            "checkpoint fingerprint does not match this run's data/target/title "
            "— refusing to resume against different input"
        )
    context = payload["context"]
    # Working frame: rebuild columns with their recorded dtypes in the
    # recorded order, then swap the rebuilt frame into the context AND
    # the result (they must stay one object — installs mutate it).
    frame = DataFrame()
    for column in context["columns"]:
        values = np.array(column["values"], dtype=np.dtype(column["dtype"]))
        frame[column["name"]] = Series._from_array(values, column["name"])
    ctx.working = frame
    ctx.result.frame = frame
    ctx.column_tags = dict(context["column_tags"])
    ctx.unary_transformed = set(context["unary_transformed"])
    ctx.used_by_other_ops = set(context["used_by_other_ops"])
    ctx.granted_draws = dict(context["granted_draws"])
    # Agenda: same object identity, rebuilt entries.
    spec = context["agenda"]
    ctx.agenda.title = spec["title"]
    ctx.agenda.target = spec["target"]
    ctx.agenda.target_description = spec["target_description"]
    ctx.agenda.model = spec["model"]
    ctx.agenda.entries = {
        entry["name"]: AgendaEntry(
            entry["name"], entry["kind"], entry["description"], list(entry["values"])
        )
        for entry in spec["entries"]
    }
    # Result payload.
    result = ctx.result
    spec = context["result"]
    result.new_features = {
        feature["name"]: GeneratedFeature(
            name=feature["name"],
            family=OperatorFamily(feature["family"]),
            input_columns=list(feature["input_columns"]),
            description=feature["description"],
            output_columns=list(feature["output_columns"]),
            source_code=feature["source_code"],
            fm_calls=feature["fm_calls"],
        )
        for feature in spec["new_features"]
    }
    result.dropped = list(spec["dropped"])
    result.removed_by_fm = list(spec["removed_by_fm"])
    result.rejections = dict(spec["rejections"])
    result.errors = dict(spec["errors"])
    result.suggestions = [
        SourceSuggestion(s["name"], s["description"], list(s["sources"]))
        for s in spec["suggestions"]
    ]
    result.row_plans = [
        RowCompletionPlan(
            name=p["name"],
            description=p["description"],
            preview=[(dict(record), text) for record, text in p["preview"]],
            n_rows=p["n_rows"],
            estimated_calls=p["estimated_calls"],
            estimated_cost_usd=p["estimated_cost_usd"],
            estimated_latency_s=p["estimated_latency_s"],
            relevant_columns=list(p["relevant_columns"]),
        )
        for p in spec["row_plans"]
    ]
    # Clients: ledgers + per-call state, matched positionally (the order
    # snapshot_run serialised is the order the caller passes here).
    unique = _unique_clients(clients)
    saved = payload["clients"]
    if len(saved) != len(unique):
        raise CheckpointMismatchError(
            f"checkpoint has {len(saved)} client records, run has {len(unique)}"
        )
    for client, record in zip(unique, saved):
        client.ledger.restore(record["ledger"])
        client.restore_checkpoint_state(record["state"])
    if budget is not None and payload.get("budget") is not None:
        spent = payload["budget"]
        budget.restore_spent(
            cost_usd=spent["spent_cost_usd"],
            calls=spent["spent_calls"],
            latency_s=spent["spent_latency_s"],
        )
    return frozenset(payload["completed"])
