"""The function generator (Section 3.3).

For each candidate the generator decides among the paper's three
scenarios:

1. **Transformation function** — interact with the FM (the efficient path:
   one call per feature, independent of table size), extract the code, run
   it in the sandbox.  High-order candidates skip the FM entirely: the
   selector's output already determines ``df.groupby(g)[a].transform(f)``.
2. **Row-level completion** — no explicit function exists.  Small tables
   are completed row by row; for large tables the generator produces a
   preview plus a cost estimate and defers to the user (the pipeline's
   ``row_level_policy``).
3. **Source suggestion** — neither applies; the FM suggests external data
   sources.
"""

from __future__ import annotations

from repro.core import prompts
from repro.core.agenda import DataAgenda
from repro.core.parsing import extract_code
from repro.core.sandbox import SandboxViolation, TransformError, run_transform
from repro.fm.errors import FMParseError
from repro.core.types import (
    FeatureCandidate,
    GeneratedFeature,
    OperatorFamily,
    RowCompletionPlan,
    SourceSuggestion,
)
from repro.dataframe import DataFrame, Series
from repro.fm.base import FMClient
from repro.fm.cost import estimate_tokens

__all__ = ["FunctionGenerator", "RealizedFeature"]


class RealizedFeature:
    """A successfully materialised feature: columns of values + provenance."""

    def __init__(self, feature: GeneratedFeature, values: dict[str, Series]) -> None:
        self.feature = feature
        self.values = values


class FunctionGenerator:
    """Turns selector candidates into values via FM-generated functions."""

    def __init__(
        self,
        fm: FMClient,
        row_limit: int = 200,
        preview_rows: int = 5,
        repair_retries: int = 1,
    ) -> None:
        self.fm = fm
        self.row_limit = row_limit
        self.preview_rows = preview_rows
        self.repair_retries = repair_retries

    # ------------------------------------------------------------------
    def realize(
        self,
        candidate: FeatureCandidate,
        agenda: DataAgenda,
        frame: DataFrame,
    ) -> RealizedFeature | RowCompletionPlan | SourceSuggestion:
        """Dispatch a candidate to the appropriate §3.3 scenario."""
        if candidate.kind == "source":
            return self._suggest_sources(candidate, agenda)
        if candidate.kind == "row_level":
            return self._row_level(candidate, frame)
        if candidate.family == OperatorFamily.HIGH_ORDER:
            return self._high_order_direct(candidate, frame)
        return self._via_function(candidate, agenda, frame)

    # ------------------------------------------------------------------
    # Scenario 1a: FM-generated transformation function
    # ------------------------------------------------------------------
    def _via_function(
        self, candidate: FeatureCandidate, agenda: DataAgenda, frame: DataFrame
    ) -> RealizedFeature:
        prompt = prompts.function_generation_prompt(agenda, candidate)
        fm_calls = 0
        source = ""
        result = None
        last_error: Exception | None = None
        for attempt in range(self.repair_retries + 1):
            response = self.fm.complete(prompt, temperature=0.0 if attempt == 0 else 0.7)
            fm_calls += 1
            try:
                source = extract_code(response.text)
                result = run_transform(source, frame)
                break
            except (FMParseError, SandboxViolation, TransformError) as exc:
                last_error = exc
                # Error-correction loop (Section 5 future work): re-ask with
                # the failing code and the error message.
                prompt = prompts.function_repair_prompt(
                    agenda, candidate, source or response.text, str(exc)
                )
        if result is None:
            assert last_error is not None
            raise last_error
        values = self._as_columns(result, candidate.name)
        feature = GeneratedFeature(
            name=candidate.name,
            family=candidate.family,
            input_columns=candidate.columns,
            description=candidate.description,
            output_columns=list(values),
            source_code=source,
            fm_calls=fm_calls,
        )
        return RealizedFeature(feature, values)

    # ------------------------------------------------------------------
    # Scenario 1b: high-order features need no FM interaction
    # ------------------------------------------------------------------
    def _high_order_direct(
        self, candidate: FeatureCandidate, frame: DataFrame
    ) -> RealizedFeature:
        params = candidate.params
        group_cols = params["groupby_col"]
        agg_col = params["agg_col"]
        function = params["function"]
        source = (
            f"def transform(df):\n"
            f"    return df.groupby({group_cols!r})[{agg_col!r}].transform({function!r})\n"
        )
        result = run_transform(source, frame)
        values = self._as_columns(result, candidate.name)
        feature = GeneratedFeature(
            name=candidate.name,
            family=candidate.family,
            input_columns=candidate.columns,
            description=candidate.description,
            output_columns=list(values),
            source_code=source,
            fm_calls=0,
        )
        return RealizedFeature(feature, values)

    # ------------------------------------------------------------------
    # Scenario 2: row-level completion with cost gating
    # ------------------------------------------------------------------
    def _row_level(
        self, candidate: FeatureCandidate, frame: DataFrame
    ) -> RealizedFeature | RowCompletionPlan:
        relevant = candidate.columns or frame.columns
        n_rows = len(frame)
        if n_rows <= self.row_limit:
            values = []
            for _, row in frame.iterrows():
                record = {c: row[c] for c in relevant}
                prompt = prompts.row_completion_prompt(candidate.name, record)
                values.append(self._parse_value(self.fm.complete(prompt, temperature=0.0).text))
            series = Series(values, candidate.name)
            feature = GeneratedFeature(
                name=candidate.name,
                family=candidate.family,
                input_columns=list(relevant),
                description=candidate.description,
                output_columns=[candidate.name],
                source_code="<row-level FM completion>",
                fm_calls=n_rows,
            )
            return RealizedFeature(feature, {candidate.name: series})
        # Too large: produce a preview and a cost projection for the user.
        preview: list[tuple[dict, str]] = []
        for _, row in frame.head(self.preview_rows).iterrows():
            record = {c: row[c] for c in relevant}
            prompt = prompts.row_completion_prompt(candidate.name, record)
            preview.append((record, self.fm.complete(prompt, temperature=0.0).text))
        sample_prompt = prompts.row_completion_prompt(
            candidate.name, {c: frame[c][0] for c in relevant}
        )
        per_call_tokens = estimate_tokens(sample_prompt) + 8
        cost = self.fm.cost_model.price(per_call_tokens, 8) * n_rows
        latency = self.fm.cost_model.latency(8) * n_rows
        return RowCompletionPlan(
            name=candidate.name,
            description=candidate.description,
            preview=preview,
            n_rows=n_rows,
            estimated_calls=n_rows,
            estimated_cost_usd=round(cost, 4),
            estimated_latency_s=round(latency, 1),
        )

    @staticmethod
    def _parse_value(text: str):
        """Interpret a row-completion answer: number when possible."""
        stripped = text.strip().strip('"')
        try:
            return float(stripped)
        except ValueError:
            return stripped if stripped and stripped.lower() != "unknown" else None

    # ------------------------------------------------------------------
    # Scenario 3: external data sources
    # ------------------------------------------------------------------
    def _suggest_sources(
        self, candidate: FeatureCandidate, agenda: DataAgenda
    ) -> SourceSuggestion:
        prompt = prompts.source_suggestion_prompt(agenda, candidate)
        response = self.fm.complete(prompt, temperature=0.0)
        sources = [
            line.lstrip("- ").strip()
            for line in response.text.splitlines()
            if line.strip()
        ]
        return SourceSuggestion(
            name=candidate.name, description=candidate.description, sources=sources
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _as_columns(result: Series | DataFrame, default_name: str) -> dict[str, Series]:
        # A single-Series output is the candidate feature itself; generated
        # code often returns it still carrying the *input* column's name
        # (e.g. ``pd.cut(df['Age'], ...)``), so it is renamed to the
        # candidate name.  Multi-column outputs keep their own names.
        if isinstance(result, Series):
            return {default_name: result.rename(default_name)}
        return {c: result[c] for c in result.columns}
