"""The function generator (Section 3.3).

For each candidate the generator decides among the paper's three
scenarios:

1. **Transformation function** — interact with the FM (the efficient path:
   one call per feature, independent of table size), extract the code, run
   it in the sandbox.  High-order candidates skip the FM entirely: the
   selector's output already determines ``df.groupby(g)[a].transform(f)``.
2. **Row-level completion** — no explicit function exists.  Small tables
   are completed row by row; for large tables the generator produces a
   preview plus a cost estimate and defers to the user (the pipeline's
   ``row_level_policy``).
3. **Source suggestion** — neither applies; the FM suggests external data
   sources.

The first attempt of every scenario-1 generation and every row of a
scenario-2 completion run at ``temperature == 0`` and are independent of
one another, so :meth:`FunctionGenerator.realize_batch` fans them out
through the configured :class:`~repro.fm.executor.FMExecutor`; only the
(rare) error-correction retries stay serial, because each retry depends
on the previous attempt's failure.
"""

from __future__ import annotations

from repro.core import prompts
from repro.core.agenda import DataAgenda
from repro.core.parsing import extract_code, parse_scalar
from repro.core.sandbox import SandboxViolation, TransformError, run_transform
from repro.fm.errors import FMBudgetExceededError, FMError, FMParseError
from repro.core.types import (
    FeatureCandidate,
    GeneratedFeature,
    OperatorFamily,
    RowCompletionPlan,
    SourceSuggestion,
)
from repro.dataframe import DataFrame, Series
from repro.fm.base import FMClient, FMResponse
from repro.fm.cost import estimate_tokens
from repro.fm.executor import FMExecutor, FMRequest

__all__ = ["FunctionGenerator", "RealizedFeature"]

#: Exceptions that turn one candidate's realization into a rejection.
REALIZE_ERRORS = (FMError, FMParseError, SandboxViolation, TransformError)


class RealizedFeature:
    """A successfully materialised feature: columns of values + provenance."""

    def __init__(self, feature: GeneratedFeature, values: dict[str, Series]) -> None:
        self.feature = feature
        self.values = values


class FunctionGenerator:
    """Turns selector candidates into values via FM-generated functions."""

    def __init__(
        self,
        fm: FMClient,
        row_limit: int = 200,
        preview_rows: int = 5,
        repair_retries: int = 1,
        executor: FMExecutor | None = None,
    ) -> None:
        self.fm = fm
        self.row_limit = row_limit
        self.preview_rows = preview_rows
        self.repair_retries = repair_retries
        self.executor = executor

    def _run_transform(self, source: str, frame: DataFrame, timer=None):
        """Execute one sandboxed transform, accounting it under
        ``"transform_exec"`` when a timer is given.

        The timer always arrives explicitly (the pipeline threads the
        run's :class:`~repro.core.timing.StageTimer` through
        ``realize``/``realize_batch``); the generator never parks one on
        shared state, so physically concurrent stages sharing a
        generator can never cross their timers.
        """
        if timer is None:
            return run_transform(source, frame)
        with timer.time("transform_exec"):
            return run_transform(source, frame)

    # ------------------------------------------------------------------
    def realize(
        self,
        candidate: FeatureCandidate,
        agenda: DataAgenda,
        frame: DataFrame,
        executor: FMExecutor | None = None,
        timer=None,
    ) -> RealizedFeature | RowCompletionPlan | SourceSuggestion:
        """Dispatch a candidate to the appropriate §3.3 scenario."""
        executor = executor or self.executor
        if candidate.kind == "source":
            return self._suggest_sources(candidate, agenda, executor=executor)
        if candidate.kind == "row_level":
            return self._row_level(candidate, frame, executor=executor)
        if candidate.family == OperatorFamily.HIGH_ORDER:
            return self._high_order_direct(candidate, frame, timer=timer)
        return self._via_function(candidate, agenda, frame, executor=executor, timer=timer)

    def realize_batch(
        self,
        candidates: list[FeatureCandidate],
        agenda: DataAgenda,
        frame: DataFrame,
        executor: FMExecutor | None = None,
        timer=None,
    ) -> list[RealizedFeature | RowCompletionPlan | SourceSuggestion | Exception]:
        """Realize a wave of candidates, batching the first FM attempts.

        Scenario-1 first attempts are deterministic and independent, so
        they fan out as one batch; repairs and the other scenarios run
        serially in candidate order.  Returns one outcome per candidate,
        in order — a failed candidate yields the exception the serial
        path would have raised, so callers keep per-candidate rejection
        bookkeeping.
        """
        executor = executor or self.executor
        first_attempts: dict[int, object] = {}
        fn_indices = [
            i
            for i, candidate in enumerate(candidates)
            if candidate.kind == "function" and candidate.family != OperatorFamily.HIGH_ORDER
        ]
        if fn_indices:
            requests = [
                FMRequest(prompts.function_generation_prompt(agenda, candidates[i]), 0.0)
                for i in fn_indices
            ]
            for i, result in zip(fn_indices, self.fm.complete_batch(requests, executor)):
                first_attempts[i] = result.response if result.ok else result.error
        outcomes: list[RealizedFeature | RowCompletionPlan | SourceSuggestion | Exception] = []
        for i, candidate in enumerate(candidates):
            try:
                if i in first_attempts:
                    outcomes.append(
                        self._via_function(
                            candidate,
                            agenda,
                            frame,
                            first_attempt=first_attempts[i],
                            executor=executor,
                            timer=timer,
                        )
                    )
                else:
                    outcomes.append(
                        self.realize(
                            candidate, agenda, frame, executor=executor, timer=timer
                        )
                    )
            except FMBudgetExceededError:
                raise  # budget exhaustion aborts the run, not one candidate
            except REALIZE_ERRORS as exc:
                outcomes.append(exc)
        return outcomes

    # ------------------------------------------------------------------
    # Scenario 1a: FM-generated transformation function
    # ------------------------------------------------------------------
    def _via_function(
        self,
        candidate: FeatureCandidate,
        agenda: DataAgenda,
        frame: DataFrame,
        first_attempt: "FMResponse | Exception | None" = None,
        executor: FMExecutor | None = None,
        timer=None,
    ) -> RealizedFeature:
        prompt = prompts.function_generation_prompt(agenda, candidate)
        fm_calls = 0
        source = ""
        result = None
        last_error: Exception | None = None
        for attempt in range(self.repair_retries + 1):
            if attempt == 0 and isinstance(first_attempt, Exception):
                # The batched first attempt already failed at the client
                # level; surface it exactly like a failing complete().
                raise first_attempt
            if attempt == 0 and first_attempt is not None:
                response = first_attempt
            else:
                response = self._complete(
                    prompt, 0.0 if attempt == 0 else 0.7, executor=executor
                )
            fm_calls += 1
            try:
                source = extract_code(response.text)
                result = self._run_transform(source, frame, timer=timer)
                break
            except (FMParseError, SandboxViolation, TransformError) as exc:
                last_error = exc
                # Error-correction loop (Section 5 future work): re-ask with
                # the failing code and the error message.
                prompt = prompts.function_repair_prompt(
                    agenda, candidate, source or response.text, str(exc)
                )
        if result is None:
            assert last_error is not None
            raise last_error
        values = self._as_columns(result, candidate.name)
        feature = GeneratedFeature(
            name=candidate.name,
            family=candidate.family,
            input_columns=candidate.columns,
            description=candidate.description,
            output_columns=list(values),
            source_code=source,
            fm_calls=fm_calls,
        )
        return RealizedFeature(feature, values)

    # ------------------------------------------------------------------
    # Scenario 1b: high-order features need no FM interaction
    # ------------------------------------------------------------------
    def _high_order_direct(
        self, candidate: FeatureCandidate, frame: DataFrame, timer=None
    ) -> RealizedFeature:
        params = candidate.params
        group_cols = params["groupby_col"]
        agg_col = params["agg_col"]
        function = params["function"]
        source = (
            f"def transform(df):\n"
            f"    return df.groupby({group_cols!r})[{agg_col!r}].transform({function!r})\n"
        )
        result = self._run_transform(source, frame, timer=timer)
        values = self._as_columns(result, candidate.name)
        feature = GeneratedFeature(
            name=candidate.name,
            family=candidate.family,
            input_columns=candidate.columns,
            description=candidate.description,
            output_columns=list(values),
            source_code=source,
            fm_calls=0,
        )
        return RealizedFeature(feature, values)

    # ------------------------------------------------------------------
    # Scenario 2: row-level completion with cost gating
    # ------------------------------------------------------------------
    def _row_level(
        self,
        candidate: FeatureCandidate,
        frame: DataFrame,
        executor: FMExecutor | None = None,
    ) -> RealizedFeature | RowCompletionPlan:
        relevant = candidate.columns or frame.columns
        n_rows = len(frame)
        if n_rows <= self.row_limit:
            values = self._complete_rows(
                candidate.name, frame, relevant, executor=executor
            )
            series = Series(values, candidate.name)
            feature = GeneratedFeature(
                name=candidate.name,
                family=candidate.family,
                input_columns=list(relevant),
                description=candidate.description,
                output_columns=[candidate.name],
                source_code="<row-level FM completion>",
                fm_calls=n_rows,
            )
            return RealizedFeature(feature, {candidate.name: series})
        # Too large: produce a preview and a cost projection for the user.
        preview_values = self._complete_rows(
            candidate.name,
            frame.head(self.preview_rows),
            relevant,
            raw=True,
            executor=executor,
        )
        preview_names, preview_rows = frame.head(self.preview_rows).row_tuples(relevant)
        preview = [
            (dict(zip(preview_names, vals)), text)
            for vals, text in zip(preview_rows, preview_values)
        ]
        sample_prompt = prompts.row_completion_prompt(
            candidate.name, {c: frame[c][0] for c in relevant}
        )
        per_call_tokens = estimate_tokens(sample_prompt) + 8
        cost = self.fm.cost_model.price(per_call_tokens, 8) * n_rows
        latency = self.fm.cost_model.latency(8) * n_rows
        return RowCompletionPlan(
            name=candidate.name,
            description=candidate.description,
            preview=preview,
            n_rows=n_rows,
            estimated_calls=n_rows,
            estimated_cost_usd=round(cost, 4),
            estimated_latency_s=round(latency, 1),
            relevant_columns=list(relevant),
        )

    def _complete_rows(
        self,
        name: str,
        frame: DataFrame,
        columns: list[str],
        raw: bool = False,
        executor: FMExecutor | None = None,
    ) -> list:
        """One temperature-0 completion per row, batched through the
        executor.  A client-level failure on any row aborts the whole
        feature, as the serial loop did.  Row dicts are assembled from one
        up-front column extraction instead of a dict comprehension per row."""
        names, rows = frame.row_tuples(columns)
        requests = [
            FMRequest(prompts.row_completion_prompt(name, dict(zip(names, vals))), 0.0)
            for vals in rows
        ]
        results = self.fm.complete_batch(requests, executor or self.executor)
        texts = [result.unwrap().text for result in results]
        return texts if raw else [parse_scalar(text) for text in texts]

    @staticmethod
    def _parse_value(text: str):
        """Deprecated alias for :func:`repro.core.parsing.parse_scalar`."""
        return parse_scalar(text)

    # ------------------------------------------------------------------
    # Scenario 3: external data sources
    # ------------------------------------------------------------------
    def _suggest_sources(
        self,
        candidate: FeatureCandidate,
        agenda: DataAgenda,
        executor: FMExecutor | None = None,
    ) -> SourceSuggestion:
        prompt = prompts.source_suggestion_prompt(agenda, candidate)
        response = self._complete(prompt, 0.0, executor=executor)
        sources = [
            line.lstrip("- ").strip()
            for line in response.text.splitlines()
            if line.strip()
        ]
        return SourceSuggestion(
            name=candidate.name, description=candidate.description, sources=sources
        )

    # ------------------------------------------------------------------
    def _complete(
        self, prompt: str, temperature: float, executor: FMExecutor | None = None
    ) -> FMResponse:
        """One call, routed through the configured executor when present."""
        executor = executor or self.executor
        if executor is not None:
            return executor.complete(self.fm, prompt, temperature)
        return self.fm.complete(prompt, temperature)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_columns(result: Series | DataFrame, default_name: str) -> dict[str, Series]:
        # A single-Series output is the candidate feature itself; generated
        # code often returns it still carrying the *input* column's name
        # (e.g. ``pd.cut(df['Age'], ...)``), so it is renamed to the
        # candidate name.  Multi-column outputs keep their own names.
        if isinstance(result, Series):
            return {default_name: result.rename(default_name)}
        return {c: result[c] for c in result.columns}
