"""The operator selector (Section 3.2).

Holds the per-family prompt templates and the two prompting strategies:

* **proposal** (unary): one deterministic call per original attribute; the
  FM lists all appropriate operators with confidence levels, and the
  selector keeps the *certain*/*high* ones;
* **sampling** (binary, high-order, extractor): repeated temperature>0
  calls, one candidate per call, until the sampling budget or the
  generation-error threshold is reached (driven by the pipeline).

Outputs are :class:`~repro.core.types.FeatureCandidate` records carrying
the paper's three selector outputs: feature name, relevant columns, and
feature description.

Both strategies have batch entry points (:meth:`unary_candidates_batch`,
:meth:`sample_batch`): the calls of one batch are independent — unary
proposals talk about different attributes, sampling draws are i.i.d. —
so an :class:`~repro.fm.executor.FMExecutor` may fan them out
concurrently without changing any answer.
"""

from __future__ import annotations

from repro.core import prompts
from repro.core.agenda import DataAgenda
from repro.core.parsing import parse_json_response, parse_proposals
from repro.core.types import FeatureCandidate, OperatorFamily
from repro.fm.base import FMClient
from repro.fm.errors import FMError, FMParseError
from repro.fm.executor import FMExecutor, FMRequest

__all__ = ["OperatorSelector"]

#: Confidence levels the selector keeps from proposal output.
ACCEPTED_CONFIDENCES = ("certain", "high")

_BINARY_OP_WORD = {"+": "plus", "-": "minus", "*": "times", "/": "div"}


class OperatorSelector:
    """FM-backed selection of operators and candidate features."""

    def __init__(
        self,
        fm: FMClient,
        temperature: float = 0.7,
        accepted_confidences: tuple[str, ...] = ACCEPTED_CONFIDENCES,
        executor: FMExecutor | None = None,
    ) -> None:
        self.fm = fm
        self.temperature = temperature
        self.accepted_confidences = accepted_confidences
        self.executor = executor

    # ------------------------------------------------------------------
    # Proposal strategy (unary)
    # ------------------------------------------------------------------
    def unary_candidates(self, agenda: DataAgenda, attr: str) -> list[FeatureCandidate]:
        """All certain/high-confidence unary candidates for one attribute.

        The candidate name follows the paper's ``OpName_OrgAttr`` scheme and
        the description is the operator description (tag preserved for the
        function generator).
        """
        return self.unary_candidates_batch(agenda, [attr])[0].unwrap()

    def unary_candidates_batch(
        self,
        agenda: DataAgenda,
        attrs: list[str],
        executor: FMExecutor | None = None,
    ) -> "list[_Parsed[list[FeatureCandidate]]]":
        """One proposal call per attribute, fanned out as a single batch.

        Returns one outcome per attribute, in order: the parsed candidate
        list, or the error that call raised (so the pipeline can count it
        without losing the rest of the batch).
        """
        for attr in attrs:
            if attr not in agenda:
                raise KeyError(f"attribute {attr!r} not in agenda")
        requests = [
            FMRequest(prompts.unary_proposal_prompt(agenda, attr), 0.0) for attr in attrs
        ]
        results = self.fm.complete_batch(requests, executor or self.executor)
        outcomes: list[_Parsed[list[FeatureCandidate]]] = []
        for attr, result in zip(attrs, results):
            if not result.ok:
                outcomes.append(_Parsed(error=result.error))
                continue
            outcomes.append(
                _Parsed(value=self._parse_unary(result.response.text, attr))
            )
        return outcomes

    def _parse_unary(self, text: str, attr: str) -> list[FeatureCandidate]:
        candidates: list[FeatureCandidate] = []
        for tag, confidence, description in parse_proposals(text):
            if confidence not in self.accepted_confidences:
                continue
            base = tag.split("[", 1)[0]
            candidates.append(
                FeatureCandidate(
                    name=f"{base}_{attr}",
                    columns=[attr],
                    description=f"{tag}: {description}",
                    family=OperatorFamily.UNARY,
                    params={"confidence": confidence},
                )
            )
        return candidates

    # ------------------------------------------------------------------
    # Sampling strategy (binary / high-order / extractor)
    # ------------------------------------------------------------------
    def binary_candidates_proposal(self, agenda: DataAgenda, k: int = 5) -> list[FeatureCandidate]:
        """Proposal-strategy alternative for the binary family (§3.2).

        One deterministic call returning up to *k* candidates — cheaper
        and duplicate-free, but less diverse than sampling in rich spaces.
        """
        response = self._complete(prompts.binary_proposal_prompt(agenda, k), 0.0)
        candidates: list[FeatureCandidate] = []
        for line in response.text.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                payload = parse_json_response(line)
            except FMParseError:
                continue
            candidate = self._binary_from_payload(payload, agenda)
            if candidate is not None:
                candidates.append(candidate)
        return candidates[:k]

    def sample_batch(
        self,
        family: OperatorFamily,
        agenda: DataAgenda,
        n: int,
        executor: FMExecutor | None = None,
    ) -> "list[_Parsed[FeatureCandidate | None]]":
        """*n* i.i.d. sampling draws for *family*, fanned out as one wave.

        Every draw shares the same prompt (built once from the current
        agenda); diversity comes from the sampling temperature.  Returns
        one outcome per draw, in order — a candidate, None (the FM
        declined), or the parse/client error the draw raised.
        """
        prompt_builders = {
            OperatorFamily.BINARY: prompts.binary_sampling_prompt,
            OperatorFamily.HIGH_ORDER: prompts.high_order_sampling_prompt,
            OperatorFamily.EXTRACTOR: prompts.extractor_sampling_prompt,
        }
        prompt = prompt_builders[family](agenda)
        requests = [FMRequest(prompt, self.temperature) for _ in range(n)]
        results = self.fm.complete_batch(requests, executor or self.executor)
        outcomes: list[_Parsed[FeatureCandidate | None]] = []
        for result in results:
            if not result.ok:
                outcomes.append(_Parsed(error=result.error))
                continue
            try:
                outcomes.append(
                    _Parsed(value=self._parse_sample(family, result.response.text, agenda))
                )
            except (FMError, FMParseError) as exc:
                outcomes.append(_Parsed(error=exc))
        return outcomes

    def _parse_sample(
        self, family: OperatorFamily, text: str, agenda: DataAgenda
    ) -> FeatureCandidate | None:
        parsers = {
            OperatorFamily.BINARY: self._parse_binary_sample,
            OperatorFamily.HIGH_ORDER: self._parse_high_order_sample,
            OperatorFamily.EXTRACTOR: self._parse_extractor_sample,
        }
        return parsers[family](text, agenda)

    def sample_binary(self, agenda: DataAgenda) -> FeatureCandidate | None:
        """One i.i.d.-sampled binary-operator candidate, or None."""
        response = self._complete(prompts.binary_sampling_prompt(agenda), self.temperature)
        return self._parse_binary_sample(response.text, agenda)

    def _parse_binary_sample(self, text: str, agenda: DataAgenda) -> FeatureCandidate | None:
        payload = parse_json_response(text)
        return self._binary_from_payload(payload, agenda, strict=True)

    def _binary_from_payload(
        self, payload: dict, agenda: DataAgenda, strict: bool = False
    ) -> FeatureCandidate | None:
        """Turn a binary-operator JSON payload into a candidate.

        ``strict`` raises on unknown columns (a generation error the
        pipeline counts); otherwise invalid payloads are skipped.
        """
        operator = payload.get("operator")
        columns = payload.get("columns") or []
        if operator not in ("+", "-", "*", "/") or len(columns) != 2:
            return None
        missing = [c for c in columns if c not in agenda]
        if missing:
            if strict:
                raise FMParseError(f"binary candidate references unknown columns: {missing}")
            return None
        name = payload.get("name") or f"{columns[0]}_{_BINARY_OP_WORD[operator]}_{columns[1]}"
        description = payload.get("description") or f"binary[{operator}]: combination of {columns}"
        if not description.startswith("binary["):
            description = f"binary[{operator}]: {description}"
        return FeatureCandidate(
            name=name,
            columns=list(columns),
            description=description,
            family=OperatorFamily.BINARY,
            params={"operator": operator},
        )

    def sample_high_order(self, agenda: DataAgenda) -> FeatureCandidate | None:
        """One sampled GroupByThenAgg candidate, or None.

        Per the paper, the feature name is ``GroupBy_Gcol_func_Acol``, the
        transformation expression doubles as the description, and the
        group-by plus aggregate columns are the relevant columns.
        """
        response = self._complete(prompts.high_order_sampling_prompt(agenda), self.temperature)
        return self._parse_high_order_sample(response.text, agenda)

    def _parse_high_order_sample(self, text: str, agenda: DataAgenda) -> FeatureCandidate | None:
        payload = parse_json_response(text)
        group_cols = payload.get("groupby_col") or []
        if isinstance(group_cols, str):
            group_cols = [group_cols]
        agg_col = payload.get("agg_col")
        function = payload.get("function")
        if not group_cols or not agg_col or function not in ("mean", "max", "min", "sum", "count", "avg", "average"):
            return None
        missing = [c for c in [*group_cols, agg_col] if c not in agenda]
        if missing:
            raise FMParseError(f"high-order candidate references unknown columns: {missing}")
        name = f"GroupBy_{'_'.join(group_cols)}_{function}_{agg_col}"
        return FeatureCandidate(
            name=name,
            columns=[*group_cols, agg_col],
            description=(
                f"groupby[{function}]: df.groupby({group_cols})[{agg_col!r}]"
                f".transform({function!r})"
            ),
            family=OperatorFamily.HIGH_ORDER,
            params={"groupby_col": list(group_cols), "agg_col": agg_col, "function": function},
        )

    def sample_extractor(self, agenda: DataAgenda) -> FeatureCandidate | None:
        """One sampled extractor candidate, or None."""
        response = self._complete(prompts.extractor_sampling_prompt(agenda), self.temperature)
        return self._parse_extractor_sample(response.text, agenda)

    def _parse_extractor_sample(self, text: str, agenda: DataAgenda) -> FeatureCandidate | None:
        payload = parse_json_response(text)
        kind = payload.get("kind", "function")
        name = payload.get("name") or ""
        if not name or kind not in ("function", "row_level", "source"):
            return None
        columns = payload.get("columns") or []
        missing = [c for c in columns if c not in agenda]
        if missing:
            raise FMParseError(f"extractor candidate references unknown columns: {missing}")
        return FeatureCandidate(
            name=name,
            columns=list(columns),
            description=payload.get("description") or name,
            family=OperatorFamily.EXTRACTOR,
            kind=kind,
        )

    # ------------------------------------------------------------------
    def _complete(self, prompt: str, temperature: float):
        """One call, routed through the configured executor when present."""
        if self.executor is not None:
            return self.executor.complete(self.fm, prompt, temperature)
        return self.fm.complete(prompt, temperature)


class _Parsed:
    """One batch outcome: a parsed value or the error that replaced it."""

    __slots__ = ("value", "error")

    def __init__(self, value=None, error: Exception | None = None) -> None:
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        if self.error is not None:
            raise self.error
        return self.value
