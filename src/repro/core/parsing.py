"""Structured parsers for FM output (the LangChain role in the paper)."""

from __future__ import annotations

import json
import re

from repro.fm.errors import FMParseError

__all__ = ["extract_code", "parse_json_response", "parse_proposals", "parse_scalar"]

_PROPOSAL_LINE = re.compile(
    r"^(?P<tag>[a-z_]+(?:\[[^\]]*\])*)\s*\((?P<confidence>certain|high|medium|low)\)\s*:\s*(?P<desc>.+)$"
)


def parse_proposals(text: str) -> list[tuple[str, str, str]]:
    """Parse proposal-strategy output lines.

    Each valid line has the shape ``operator_tag (confidence): description``;
    returns ``(tag, confidence, description)`` triples, skipping the
    explicit ``none`` tag and any unparseable lines (an FM may pad its
    answer with prose).
    """
    out: list[tuple[str, str, str]] = []
    for line in text.splitlines():
        match = _PROPOSAL_LINE.match(line.strip())
        if not match:
            continue
        tag = match.group("tag")
        if tag.split("[", 1)[0] == "none":
            continue
        out.append((tag, match.group("confidence"), match.group("desc").strip()))
    return out


def parse_json_response(text: str) -> dict:
    """Extract and load the first JSON object in *text*.

    Tolerates code fences and surrounding prose; raises
    :class:`FMParseError` when no parseable object exists.
    """
    stripped = text.strip()
    if stripped.startswith("```"):
        stripped = re.sub(r"^```[a-z]*\n?", "", stripped)
        stripped = stripped.rstrip("`").rstrip()
    start = stripped.find("{")
    if start == -1:
        raise FMParseError(f"no JSON object in FM response: {text[:120]!r}")
    depth = 0
    for i in range(start, len(stripped)):
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
            if depth == 0:
                blob = stripped[start : i + 1]
                try:
                    parsed = json.loads(blob)
                except json.JSONDecodeError as exc:
                    raise FMParseError(f"invalid JSON in FM response: {blob[:120]!r}") from exc
                if not isinstance(parsed, dict):
                    raise FMParseError("FM JSON response is not an object")
                return parsed
    raise FMParseError(f"unbalanced JSON object in FM response: {text[:120]!r}")


def parse_scalar(text: str) -> float | str | None:
    """Interpret a row-completion answer: number when possible.

    Quoted strings are unwrapped; numeric answers become floats; an empty
    answer or an explicit ``unknown`` becomes None (a missing value).
    """
    stripped = text.strip().strip('"')
    try:
        return float(stripped)
    except ValueError:
        return stripped if stripped and stripped.lower() != "unknown" else None


def extract_code(text: str) -> str:
    """Extract Python source from an FM response.

    Prefers a fenced ```` ```python ```` block; otherwise accepts raw text
    that already looks like code (contains ``def transform`` or a ``df[``
    assignment).  Raises :class:`FMParseError` for prose-only answers.
    """
    fence = re.search(r"```(?:python)?\s*\n(.*?)```", text, re.DOTALL)
    if fence:
        return fence.group(1).strip() + "\n"
    if "def transform" in text or re.search(r"df\[[^\]]+\]\s*=", text):
        return text.strip() + "\n"
    raise FMParseError(f"no Python code in FM response: {text[:120]!r}")
