"""The SMARTFEAT pipeline: the Section 3 search loop end to end.

Order of exploration (Section 3.2, "Generating the candidate feature set"):

1. unary operators on each original feature (proposal strategy);
2. binary operators over original + unary features (sampling strategy);
3. high-order GroupByThenAgg features (sampling strategy);
4. extractors over the enriched feature set (sampling strategy);
5. the drop heuristic: an original feature that received a unary
   transformation and is used by no other operator is removed.

Each accepted feature's name and description are appended to the data
agenda before the next iteration, so later operators can build on earlier
generated features.

Execution model
---------------
FM interactions are structured as *waves* of independent calls: the unary
stage issues all per-attribute proposal calls as one batch, and each
sampling stage speculatively issues ``min(remaining budget, wave_size)``
draws per wave, then deduplicates, realizes (first attempts batched), and
validates the wave's results in submission order, stopping at the error
threshold.  ``wave_size`` is a *semantic* parameter — it determines which
agenda snapshot each prompt sees — while the executor's concurrency is
pure infrastructure: running the same waves on
:class:`~repro.fm.executor.SerialExecutor` or a
:class:`~repro.fm.executor.ThreadPoolFMExecutor` accepts identical
features and records identical ledger totals, only the critical-path
latency changes.  With ``wave_size=1`` the sampling stages degenerate to
the paper's one-call-at-a-time loop; the unary stage is always one batch
(its per-attribute proposals are mutually independent, so there is no
within-stage feedback to preserve).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.agenda import DataAgenda
from repro.core.function_generator import (
    REALIZE_ERRORS,
    FunctionGenerator,
    RealizedFeature,
)
from repro.core.operator_selector import OperatorSelector
from repro.core.types import (
    FeatureCandidate,
    GeneratedFeature,
    OperatorFamily,
    RowCompletionPlan,
    SourceSuggestion,
)
from repro.core.parsing import parse_json_response, parse_scalar
from repro.core.timing import StageTimer
from repro.core.validation import ValidationConfig, validate_output
from repro.dataframe import DataFrame
from repro.fm.base import Budget, FMClient
from repro.fm.cache import FMCache
from repro.fm.errors import FMBudgetExceededError, FMError, FMParseError
from repro.fm.executor import FMExecutor, FMRequest, SerialExecutor

__all__ = ["SmartFeat", "SmartFeatResult"]

_ALL_FAMILIES = (
    OperatorFamily.UNARY,
    OperatorFamily.BINARY,
    OperatorFamily.HIGH_ORDER,
    OperatorFamily.EXTRACTOR,
)


@dataclass
class SmartFeatResult:
    """Everything a SMARTFEAT run produced.

    ``frame`` is the transformed dataframe (target column preserved);
    ``new_features`` maps feature name → provenance; ``dropped`` lists
    original features removed by the drop heuristic; ``suggestions`` and
    ``row_plans`` surface the §3.3 scenario-2/3 outputs; ``rejections``
    records validator verdicts; ``fm_usage`` summarises API accounting,
    including the execution layer's summed vs critical-path latency.
    """

    frame: DataFrame
    new_features: dict[str, GeneratedFeature] = field(default_factory=dict)
    dropped: list[str] = field(default_factory=list)
    removed_by_fm: list[str] = field(default_factory=list)
    suggestions: list[SourceSuggestion] = field(default_factory=list)
    row_plans: list[RowCompletionPlan] = field(default_factory=list)
    rejections: dict[str, str] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    fm_usage: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def new_columns(self) -> list[str]:
        """All accepted output columns across generated features."""
        out: list[str] = []
        for feature in self.new_features.values():
            out.extend(feature.output_columns)
        return out


class SmartFeat:
    """Automated feature construction through feature-level FM interactions.

    Parameters
    ----------
    fm:
        Operator-selector client (the paper uses GPT-4 here).
    function_fm:
        Function-generator client (the paper uses GPT-3.5-turbo for its
        comparable quality at lower cost); defaults to *fm*.
    downstream_model:
        Name of the downstream classifier, included in every prompt so the
        FM tailors features to it (e.g. scaling for DNN/KNN).
    sampling_budget:
        Per-family cap on sampling-strategy calls (paper default: 10).
    error_threshold:
        Per-family cap on generation errors — invalid or repeated
        candidates — before sampling stops early.
    operator_families:
        Which families to explore (ablations switch these off).
    row_level_policy:
        ``"auto"`` — complete small tables, defer large ones to a plan;
        ``"never"`` — always defer; ``"always"`` — complete regardless of
        size (costly, for small-data experiments).
    drop_heuristic:
        Apply the original-feature removal rule.
    repair_retries:
        Error-correction attempts per generated function: on failure the
        FM is re-asked with the failing code and error message (the
        paper's Section 5 error-correction direction).
    binary_strategy:
        ``"sampling"`` (paper default) or ``"proposal"`` — the §3.2
        strategy choice for the binary family, exposed for ablation.
    fm_feature_removal:
        Ask the FM to flag redundant generated features for removal after
        the search (the paper's §3.2 future-work direction; off by
        default).
    executor:
        FM execution backend; defaults to a per-instance
        :class:`~repro.fm.executor.SerialExecutor`.  Swapping in a
        :class:`~repro.fm.executor.ThreadPoolFMExecutor` changes only
        wall-clock behaviour, never which features are accepted.
    cache:
        Optional :class:`~repro.fm.cache.FMCache` attached to both
        clients: repeated runs over the same data re-issue zero
        temperature-0 calls.  Note the attachment outlives this
        instance — the clients keep serving from the cache until it is
        detached (``fm.cache = None``).
    budget:
        Optional :class:`~repro.fm.base.Budget` attached to both
        clients' ledgers (one shared meter, so it caps their *combined*
        spend).  When a call crosses a limit,
        :class:`~repro.fm.errors.FMBudgetExceededError` propagates out
        of :meth:`fit_transform` — it is never absorbed as a generation
        error, so callers can degrade gracefully (the eval sweep marks
        the cell ``status="budget"``).  Like ``cache``, the attachment
        outlives this instance.
    wave_size:
        Sampling draws speculatively issued per wave (and the agenda
        snapshot granularity).  This is a *semantic* knob: it changes
        which candidates are drawn.  It defaults to 1 — the paper's
        serial loop — independent of the executor, so swapping backends
        alone never changes results; raise it to give a concurrent
        executor sampling work to fan out.
    """

    def __init__(
        self,
        fm: FMClient,
        function_fm: FMClient | None = None,
        downstream_model: str = "random_forest",
        sampling_budget: int = 10,
        error_threshold: int = 3,
        temperature: float = 0.7,
        validation: ValidationConfig | None = None,
        operator_families: tuple[OperatorFamily, ...] = _ALL_FAMILIES,
        row_level_policy: str = "auto",
        row_limit: int = 200,
        drop_heuristic: bool = True,
        repair_retries: int = 1,
        binary_strategy: str = "sampling",
        fm_feature_removal: bool = False,
        executor: FMExecutor | None = None,
        cache: FMCache | None = None,
        wave_size: int | None = None,
        budget: Budget | None = None,
    ) -> None:
        if row_level_policy not in ("auto", "never", "always"):
            raise ValueError(f"invalid row_level_policy: {row_level_policy!r}")
        if binary_strategy not in ("sampling", "proposal"):
            raise ValueError(f"invalid binary_strategy: {binary_strategy!r}")
        if wave_size is not None and wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        self.fm = fm
        self.function_fm = function_fm or fm
        self.downstream_model = downstream_model
        self.sampling_budget = sampling_budget
        self.error_threshold = error_threshold
        self.validation = validation or ValidationConfig()
        self.operator_families = tuple(operator_families)
        self.row_level_policy = row_level_policy
        self.drop_heuristic = drop_heuristic
        self.binary_strategy = binary_strategy
        self.fm_feature_removal = fm_feature_removal
        self.executor = executor or SerialExecutor()
        self.cache = cache
        if cache is not None:
            self.fm.cache = cache
            self.function_fm.cache = cache
        self.budget = budget
        if budget is not None:
            self.fm.ledger.budget = budget
            self.function_fm.ledger.budget = budget
        self.wave_size = wave_size if wave_size is not None else 1
        self.selector = OperatorSelector(fm, temperature=temperature, executor=self.executor)
        self.generator = FunctionGenerator(
            self.function_fm,
            row_limit=10**9 if row_level_policy == "always" else row_limit,
            repair_retries=repair_retries,
            executor=self.executor,
        )

    # ------------------------------------------------------------------
    def fit_transform(
        self,
        frame: DataFrame,
        target: str,
        descriptions: dict[str, str] | None = None,
        title: str = "",
        target_description: str = "",
    ) -> SmartFeatResult:
        """Run the full search and return the enriched dataframe.

        *descriptions* is the data card (column → description).  Omitting
        it reproduces the paper's names-only ablation.
        """
        agenda = DataAgenda.from_dataframe(
            frame,
            target=target,
            descriptions=descriptions,
            title=title,
            target_description=target_description,
            model=self.downstream_model,
        )
        working = frame.copy()
        result = SmartFeatResult(frame=working)
        original_features = [c for c in frame.columns if c != target]
        unary_transformed: set[str] = set()
        used_by_other_ops: set[str] = set()
        timer = StageTimer()
        self.generator.timer = timer

        try:
            if OperatorFamily.UNARY in self.operator_families:
                with timer.time("unary_stage"):
                    self._unary_stage(
                        working, agenda, result, original_features, unary_transformed
                    )
            if OperatorFamily.BINARY in self.operator_families:
                with timer.time("binary_stage"):
                    if self.binary_strategy == "proposal":
                        self._binary_proposal_stage(working, agenda, result, used_by_other_ops)
                    else:
                        self._sampling_stage(
                            working, agenda, result, OperatorFamily.BINARY, used_by_other_ops
                        )
            if OperatorFamily.HIGH_ORDER in self.operator_families:
                with timer.time("high_order_stage"):
                    self._sampling_stage(
                        working, agenda, result, OperatorFamily.HIGH_ORDER, used_by_other_ops
                    )
            if OperatorFamily.EXTRACTOR in self.operator_families:
                with timer.time("extractor_stage"):
                    self._sampling_stage(
                        working, agenda, result, OperatorFamily.EXTRACTOR, used_by_other_ops
                    )
            if self.drop_heuristic:
                with timer.time("drop_heuristic"):
                    self._apply_drop_heuristic(
                        working, result, original_features, unary_transformed, used_by_other_ops
                    )
            if self.fm_feature_removal:
                with timer.time("fm_removal_stage"):
                    self._fm_removal_stage(working, agenda, result)
        finally:
            self.generator.timer = None
        result.fm_usage = {
            "operator_selector": self.fm.ledger.snapshot(),
        }
        if self.function_fm is not self.fm:
            result.fm_usage["function_generator"] = self.function_fm.ledger.snapshot()
        execution = dict(self.executor.stats.snapshot())
        execution["concurrency"] = self.executor.concurrency
        execution["wave_size"] = self.wave_size
        # Data-plane wall clock per stage (plus sandboxed transform
        # execution under "transform_exec"), next to the FM-side modelled
        # latency so FM time vs dataframe time reads off one report.
        execution["dataplane"] = timer.snapshot()
        result.fm_usage["execution"] = execution
        return result

    # ------------------------------------------------------------------
    def _unary_stage(
        self,
        working: DataFrame,
        agenda: DataAgenda,
        result: SmartFeatResult,
        original_features: list[str],
        unary_transformed: set[str],
    ) -> None:
        """Proposal strategy: every attribute's call is independent, so
        the whole stage fans out as one batch, followed by one batch of
        first-attempt function generations."""
        proposals = self.selector.unary_candidates_batch(
            agenda, original_features, executor=self.executor
        )
        ordered: list[tuple[str, FeatureCandidate]] = []
        for attr, outcome in zip(original_features, proposals):
            if not outcome.ok:
                if isinstance(outcome.error, FMBudgetExceededError):
                    raise outcome.error  # budget exhaustion aborts the run
                if isinstance(outcome.error, (FMError, FMParseError)):
                    result.errors["unary"] = result.errors.get("unary", 0) + 1
                    continue
                raise outcome.error
            ordered.extend((attr, candidate) for candidate in outcome.value)
        realized = self.generator.realize_batch(
            [candidate for _, candidate in ordered], agenda, working, executor=self.executor
        )
        for (attr, candidate), outcome in zip(ordered, realized):
            if self._install(candidate, outcome, working, agenda, result):
                unary_transformed.add(attr)

    def _binary_proposal_stage(
        self,
        working: DataFrame,
        agenda: DataAgenda,
        result: SmartFeatResult,
        used_by_other_ops: set[str],
    ) -> None:
        """§3.2 strategy ablation: one proposal call instead of sampling."""
        try:
            candidates = self.selector.binary_candidates_proposal(
                agenda, k=self.sampling_budget
            )
        except FMBudgetExceededError:
            raise  # budget exhaustion aborts the run, not just the stage
        except (FMError, FMParseError):
            result.errors["binary"] = result.errors.get("binary", 0) + 1
            return
        errors = 0
        for candidate in candidates:
            if candidate.name in agenda:
                errors += 1
                continue
            if self._accept(candidate, working, agenda, result):
                used_by_other_ops.update(candidate.columns)
            else:
                errors += 1
        result.errors["binary"] = errors

    def _sampling_stage(
        self,
        working: DataFrame,
        agenda: DataAgenda,
        result: SmartFeatResult,
        family: OperatorFamily,
        used_by_other_ops: set[str],
    ) -> None:
        """Sampling strategy as speculative waves.

        Each wave issues ``min(remaining budget, wave_size)`` draws from
        the current agenda, then parses, deduplicates, batch-realizes,
        and validates the results in submission order.  Once the error
        count crosses the threshold the stage stops — any later results
        of the in-flight wave are discarded (already-spent speculation).
        With ``wave_size=1`` this is exactly the paper's serial loop.
        """
        errors = 0
        seen: set[str] = set()
        issued = 0
        while issued < self.sampling_budget and errors < self.error_threshold:
            wave = min(self.wave_size, self.sampling_budget - issued)
            samples = self.selector.sample_batch(
                family, agenda, wave, executor=self.executor
            )
            issued += wave
            # Parse/dedupe pass, truncated at the error threshold so the
            # realization batch never pays for candidates we won't keep.
            survivors: list[FeatureCandidate] = []
            for outcome in samples:
                if errors >= self.error_threshold:
                    break
                if not outcome.ok:
                    if isinstance(outcome.error, FMBudgetExceededError):
                        raise outcome.error  # budget exhaustion aborts the run
                    if isinstance(outcome.error, (FMError, FMParseError)):
                        errors += 1
                        continue
                    raise outcome.error
                candidate = outcome.value
                if candidate is None:
                    errors += 1
                    continue
                if candidate.name in seen or candidate.name in agenda:
                    errors += 1  # repeated feature counts as a generation error
                    continue
                seen.add(candidate.name)
                survivors.append(candidate)
            realized = self.generator.realize_batch(
                survivors, agenda, working, executor=self.executor
            )
            for candidate, outcome in zip(survivors, realized):
                if errors >= self.error_threshold:
                    break
                if self._install(candidate, outcome, working, agenda, result):
                    used_by_other_ops.update(candidate.columns)
                else:
                    errors += 1
        result.errors[family.value] = errors

    # ------------------------------------------------------------------
    def _accept(
        self,
        candidate: FeatureCandidate,
        working: DataFrame,
        agenda: DataAgenda,
        result: SmartFeatResult,
    ) -> bool:
        """Realize, validate, and install one candidate; True on success."""
        try:
            realized = self.generator.realize(candidate, agenda, working)
        except FMBudgetExceededError:
            raise  # budget exhaustion aborts the run, not one candidate
        except REALIZE_ERRORS as exc:
            realized = exc
        return self._install(candidate, realized, working, agenda, result)

    def _install(
        self,
        candidate: FeatureCandidate,
        realized: RealizedFeature | RowCompletionPlan | SourceSuggestion | Exception,
        working: DataFrame,
        agenda: DataAgenda,
        result: SmartFeatResult,
    ) -> bool:
        """Validate and install one realized candidate; True on success."""
        if isinstance(realized, Exception):
            result.rejections[candidate.name] = f"generation failed: {realized}"
            return False
        if isinstance(realized, SourceSuggestion):
            result.suggestions.append(realized)
            return False
        if isinstance(realized, RowCompletionPlan):
            result.row_plans.append(realized)
            return False
        assert isinstance(realized, RealizedFeature)
        report = validate_output(
            _merge_columns(realized), len(working), self.validation, candidate.name
        )
        for column, reason in report.rejected.items():
            result.rejections[column] = reason
        if not report.ok:
            return False
        accepted_columns: list[str] = []
        for column, series in report.accepted.items():
            if column in working.columns:
                result.rejections[column] = "duplicate column name"
                continue
            working[column] = series
            accepted_columns.append(column)
            kind = "numeric" if series.dtype.kind in "ifb" else "categorical"
            uniques = series.unique()
            if set(uniques) <= {0, 1, 0.0, 1.0, True, False}:
                kind = "binary"
            values: list[str] = []
            if kind == "categorical" and len(uniques) <= 15:
                values = [str(v) for v in uniques]
            agenda.add(column, kind, candidate.description, values=values)
        if not accepted_columns:
            return False
        feature = realized.feature
        feature.output_columns = accepted_columns
        result.new_features[feature.name] = feature
        return True

    # ------------------------------------------------------------------
    def _fm_removal_stage(
        self, working: DataFrame, agenda: DataAgenda, result: SmartFeatResult
    ) -> None:
        """FM-driven removal of redundant generated features (§3.2 future
        work, off by default).  Only generated columns may be removed —
        originals and the target are never eligible."""
        from repro.core import prompts as _prompts

        generated_columns = set(result.new_columns)
        try:
            response = self.executor.complete(
                self.fm, _prompts.feature_removal_prompt(agenda), temperature=0.0
            )
            payload = parse_json_response(response.text)
        except FMBudgetExceededError:
            raise  # budget exhaustion aborts the run, not just the stage
        except (FMError, FMParseError):
            result.errors["removal"] = result.errors.get("removal", 0) + 1
            return
        for name in payload.get("remove") or []:
            if name not in generated_columns or name not in working.columns:
                continue
            drop_inplace(working, name)
            agenda.remove(name)
            result.removed_by_fm.append(name)
            for feature in result.new_features.values():
                if name in feature.output_columns:
                    feature.output_columns.remove(name)
        # Features whose every output column was removed vanish entirely.
        result.new_features = {
            key: feature
            for key, feature in result.new_features.items()
            if feature.output_columns
        }

    # ------------------------------------------------------------------
    def _apply_drop_heuristic(
        self,
        working: DataFrame,
        result: SmartFeatResult,
        original_features: list[str],
        unary_transformed: set[str],
        used_by_other_ops: set[str],
    ) -> None:
        """Remove originals superseded by a unary transform (Section 3.2)."""
        for attr in original_features:
            if attr in unary_transformed and attr not in used_by_other_ops:
                if attr in working.columns:
                    drop_inplace(working, attr)
                    result.dropped.append(attr)


def drop_inplace(frame: DataFrame, column: str) -> None:
    """Remove *column* from *frame* without copying the other columns."""
    frame.drop(column, errors="ignore", inplace=True)


def complete_row_plan(
    result: SmartFeatResult,
    plan: RowCompletionPlan,
    fm: FMClient,
    relevant_columns: list[str] | None = None,
    executor: FMExecutor | None = None,
) -> SmartFeatResult:
    """Execute a deferred row-level completion plan (the user said yes).

    Section 3.3 defers row-level completion of large tables to the user,
    who weighs the preview against the projected cost.  This helper runs
    the full completion over ``result.frame`` with *fm* — batched through
    *executor* when given — and installs the finished column; the plan is
    removed from ``result.row_plans``.

    The relevant columns come from, in order: the *relevant_columns*
    override, the plan's own ``relevant_columns`` metadata, the preview
    records (plans recorded before the metadata existed), and finally the
    whole frame.
    """
    from repro.core import prompts as _prompts

    if plan not in result.row_plans:
        raise ValueError(f"plan {plan.name!r} is not pending on this result")
    columns = list(relevant_columns) if relevant_columns else list(plan.relevant_columns)
    if not columns and plan.preview:
        preview_record = plan.preview[0][0]
        columns = [c for c in result.frame.columns if c in preview_record]
    if not columns:
        columns = result.frame.columns
    names, rows = result.frame.row_tuples(columns)
    requests = [
        FMRequest(
            _prompts.row_completion_prompt(plan.name, dict(zip(names, vals))), 0.0
        )
        for vals in rows
    ]
    responses = fm.complete_batch(requests, executor)
    values = [parse_scalar(r.unwrap().text) for r in responses]
    from repro.dataframe import Series

    result.frame[plan.name] = Series(values, plan.name)
    result.new_features[plan.name] = GeneratedFeature(
        name=plan.name,
        family=OperatorFamily.EXTRACTOR,
        input_columns=list(columns),
        description=plan.description,
        output_columns=[plan.name],
        source_code="<row-level FM completion>",
        fm_calls=len(values),
    )
    result.row_plans.remove(plan)
    return result


def _merge_columns(realized: RealizedFeature) -> DataFrame:
    """Collect a realized feature's output columns into one frame."""
    out = DataFrame()
    for name, series in realized.values.items():
        out[name] = series.rename(name)
    return out
