"""The SMARTFEAT pipeline: the Section 3 search loop end to end.

Order of exploration (Section 3.2, "Generating the candidate feature set"):

1. unary operators on each original feature (proposal strategy);
2. binary operators over original + unary features (sampling strategy);
3. high-order GroupByThenAgg features (sampling strategy);
4. extractors over the enriched feature set (sampling strategy);
5. the drop heuristic: an original feature that received a unary
   transformation and is used by no other operator is removed.

Each accepted feature's name and description are appended to the data
agenda before the next iteration, so later operators can build on earlier
generated features.

Execution model
---------------
FM interactions are structured as *waves* of independent calls: the unary
stage issues all per-attribute proposal calls as one batch, and each
sampling stage speculatively issues ``min(remaining budget, wave_size)``
draws per wave, then deduplicates, realizes (first attempts batched), and
validates the wave's results in submission order, stopping at the error
threshold.  ``wave_size`` is a *semantic* parameter — it determines which
agenda snapshot each prompt sees — while the executor's concurrency is
pure infrastructure: running the same waves on
:class:`~repro.fm.executor.SerialExecutor` or a
:class:`~repro.fm.executor.ThreadPoolFMExecutor` accepts identical
features and records identical ledger totals, only the critical-path
latency changes.  With ``wave_size=1`` the sampling stages degenerate to
the paper's one-call-at-a-time loop; the unary stage is always one batch
(its per-attribute proposals are mutually independent, so there is no
within-stage feedback to preserve).

Stage graph
-----------
The stage sequence itself is no longer hard-coded: ``fit_transform``
builds a :class:`~repro.core.scheduler.StageGraph` whose nodes declare
which column *provenance tags* they read and write (``"originals"``,
``"unary"``, ``"binary"``, …), and one
:class:`~repro.core.scheduler.StageScheduler` call executes it.  Stage
dispatch always follows the canonical §3.2 order — that keeps seeded
clients reproducible — but the graph makes the search's real dependency
structure explicit: under ``stage_plan="overlap"`` each stage sees only
the columns its declared reads cover, the schedule report models the DAG
makespan with independent stages overlapped, and (with
``plan_budget=True``) the scheduler right-sizes each stage's sampling
budget to the remaining :class:`~repro.fm.base.Budget` instead of
aborting mid-flight.  See :mod:`repro.core.scheduler` for the contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.core.agenda import DataAgenda
from repro.core.checkpoint import (
    CheckpointStore,
    fingerprint as checkpoint_fingerprint,
    restore_run,
    snapshot_run,
)
from repro.core.function_generator import (
    REALIZE_ERRORS,
    FunctionGenerator,
    RealizedFeature,
)
from repro.core.operator_selector import OperatorSelector
from repro.core.scheduler import (
    WILDCARD,
    StageGraph,
    StageNode,
    StageScheduler,
)
from repro.core.types import (
    FeatureCandidate,
    GeneratedFeature,
    OperatorFamily,
    RowCompletionPlan,
    SourceSuggestion,
)
from repro.core.parsing import parse_json_response, parse_scalar
from repro.core.timing import StageTimer
from repro.core.validation import ValidationConfig, validate_output
from repro.dataframe import DataFrame
from repro.fm.base import Budget, FMClient
from repro.fm.cache import FMCache
from repro.fm.errors import FMBudgetExceededError, FMError, FMParseError
from repro.fm.executor import (
    AsyncFMExecutor,
    FMExecutor,
    FMRequest,
    RetryPolicy,
    SerialExecutor,
    ThreadPoolFMExecutor,
)

__all__ = ["SmartFeat", "SmartFeatResult", "StageContext", "resolve_executor"]

#: Default in-flight bound when an executor is selected by name.
_DEFAULT_EXECUTOR_CONCURRENCY = 8


def resolve_executor(
    name: str,
    concurrency: int | None = None,
    retry: "RetryPolicy | None" = None,
    adaptive=None,
    hedge=None,
) -> FMExecutor:
    """Build an FM executor from a backend name.

    ``"serial"`` ignores *concurrency*; ``"thread"`` and ``"async"``
    default to ``8`` in-flight calls.  This is the string form behind
    ``SmartFeat(executor="async")`` and the CLI's ``--executor``.
    *retry*, *adaptive* (an :class:`~repro.fm.adaptive.AIMDController`
    or ``True``), and *hedge* (a :class:`~repro.fm.hedging.HedgePolicy`)
    pass through to the executor's traffic policies.
    """
    # None means "not specified"; explicit values (including invalid
    # ones like 0) pass through so the constructors validate them.
    if concurrency is None:
        concurrency = _DEFAULT_EXECUTOR_CONCURRENCY
    if name == "serial":
        return SerialExecutor(retry=retry, adaptive=adaptive, hedge=hedge)
    if name == "thread":
        return ThreadPoolFMExecutor(
            concurrency, retry=retry, adaptive=adaptive, hedge=hedge
        )
    if name == "async":
        return AsyncFMExecutor(
            concurrency, retry=retry, adaptive=adaptive, hedge=hedge
        )
    raise ValueError(
        f"unknown executor backend {name!r}: expected 'serial', 'thread', or 'async'"
    )

_ALL_FAMILIES = (
    OperatorFamily.UNARY,
    OperatorFamily.BINARY,
    OperatorFamily.HIGH_ORDER,
    OperatorFamily.EXTRACTOR,
)

#: Provenance tag carried by the input table's columns (and the target).
ORIGINALS_TAG = "originals"


@dataclass
class SmartFeatResult:
    """Everything a SMARTFEAT run produced.

    ``frame`` is the transformed dataframe (target column preserved);
    ``new_features`` maps feature name → provenance; ``dropped`` lists
    original features removed by the drop heuristic; ``suggestions`` and
    ``row_plans`` surface the §3.3 scenario-2/3 outputs; ``rejections``
    records validator verdicts; ``fm_usage`` summarises API accounting,
    including the execution layer's summed vs critical-path latency and
    the stage schedule (``fm_usage["execution"]["schedule"]``).
    """

    frame: DataFrame
    new_features: dict[str, GeneratedFeature] = field(default_factory=dict)
    dropped: list[str] = field(default_factory=list)
    removed_by_fm: list[str] = field(default_factory=list)
    suggestions: list[SourceSuggestion] = field(default_factory=list)
    row_plans: list[RowCompletionPlan] = field(default_factory=list)
    rejections: dict[str, str] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    fm_usage: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Compiled serving artifact (:class:`repro.serve.FeaturePlan`) when the
    #: run was built with ``compile_plan=True``; ``None`` otherwise.  Typed
    #: loosely so the core pipeline never imports the serve layer eagerly.
    plan: Any = None

    @property
    def new_columns(self) -> list[str]:
        """All accepted output columns across generated features."""
        out: list[str] = []
        for feature in self.new_features.values():
            out.extend(feature.output_columns)
        return out


@dataclass
class StageContext:
    """Mutable state one ``fit_transform`` run threads through its stages.

    The scheduler owns dispatch; the context owns the data: the working
    frame and agenda every stage merges into (installation order *is*
    the deterministic merge order), the provenance tag per column that
    stage views are cut by, the drop-heuristic bookkeeping sets, the
    run's timer, and the draw budgets the budget planner granted.
    """

    working: DataFrame
    agenda: DataAgenda
    result: SmartFeatResult
    original_features: list[str]
    target: str
    timer: StageTimer
    restrict_views: bool = False
    #: Set by the scheduler when independent stages really run
    #: concurrently; views and installs then serialise on ``lock``.
    physical: bool = False
    column_tags: dict[str, str] = field(default_factory=dict)
    unary_transformed: set[str] = field(default_factory=set)
    used_by_other_ops: set[str] = field(default_factory=set)
    granted_draws: dict[str, int] = field(default_factory=dict)
    #: Guards the shared frame/agenda/bookkeeping under physical stage
    #: fan-out.  Re-entrant because an install may re-read shared state;
    #: uncontended (sequential dispatch) it costs nanoseconds.
    lock: threading.RLock = field(default_factory=threading.RLock)

    def view(self, node: StageNode) -> tuple[DataFrame, DataAgenda]:
        """The frame and agenda *node* is allowed to see, per its reads.

        Under the serial plan (and for wildcard readers) this is the
        shared state — the paper's everything-so-far chain semantics.
        Under the overlap plan the view is cut to the node's declared
        reads plus its own writes, which is what makes the declared
        stage independence real information-flow independence.  Views
        share column/entry objects (no copies) and are rebuilt per wave,
        so a stage always sees its own earlier installs.

        Under *physical* fan-out the whole cut happens inside the
        context lock and always materialises a view (never the shared
        objects), so a stage's snapshot cannot change under it while a
        concurrent stage installs.
        """
        with self.lock:
            if not self.restrict_views or WILDCARD in node.reads:
                return self.working, self.agenda
            allowed_tags = set(node.reads) | set(node.writes)
            allowed = [
                name
                for name in self.working.columns
                if name == self.target
                or self.column_tags.get(name, ORIGINALS_TAG) in allowed_tags
            ]
            if not self.physical and len(allowed) == len(self.working.columns):
                return self.working, self.agenda
            return (
                self.working.column_view(allowed),
                self.agenda.subset(allowed),
            )


class SmartFeat:
    """Automated feature construction through feature-level FM interactions.

    Parameters
    ----------
    fm:
        Operator-selector client (the paper uses GPT-4 here).
    function_fm:
        Function-generator client (the paper uses GPT-3.5-turbo for its
        comparable quality at lower cost); defaults to *fm*.
    downstream_model:
        Name of the downstream classifier, included in every prompt so the
        FM tailors features to it (e.g. scaling for DNN/KNN).
    sampling_budget:
        Per-family cap on sampling-strategy calls (paper default: 10).
    error_threshold:
        Per-family cap on generation errors — invalid or repeated
        candidates — before sampling stops early.
    operator_families:
        Which families to explore (ablations switch these off).
    row_level_policy:
        ``"auto"`` — complete small tables, defer large ones to a plan;
        ``"never"`` — always defer; ``"always"`` — complete regardless of
        size (costly, for small-data experiments).
    drop_heuristic:
        Apply the original-feature removal rule.
    repair_retries:
        Error-correction attempts per generated function: on failure the
        FM is re-asked with the failing code and error message (the
        paper's Section 5 error-correction direction).
    binary_strategy:
        ``"sampling"`` (paper default) or ``"proposal"`` — the §3.2
        strategy choice for the binary family, exposed for ablation.
    fm_feature_removal:
        Ask the FM to flag redundant generated features for removal after
        the search (the paper's §3.2 future-work direction; off by
        default).
    executor:
        FM execution backend: an :class:`~repro.fm.executor.FMExecutor`
        instance or one of the names ``"serial"`` / ``"thread"`` /
        ``"async"`` (resolved by :func:`resolve_executor` at the default
        concurrency of 8).  Defaults to a per-instance
        :class:`~repro.fm.executor.SerialExecutor`.  On seeded clients,
        swapping backends changes only wall-clock behaviour, never which
        features are accepted; with stateless clients (e.g.
        :class:`~repro.fm.transport.TransportFMClient`) a concurrent
        backend additionally lets ``stage_plan="overlap"`` fan
        independent stages out physically.  A string-selected backend is
        *owned* by the instance — its worker threads / event loop are
        released by :meth:`close` (or ``with SmartFeat(...) as tool:``);
        a passed-in instance stays the caller's to close.
    cache:
        Optional :class:`~repro.fm.cache.FMCache` attached to both
        clients: repeated runs over the same data re-issue zero
        temperature-0 calls.  Note the attachment outlives this
        instance — the clients keep serving from the cache until it is
        detached (``fm.cache = None``).
    budget:
        Optional :class:`~repro.fm.base.Budget` attached to both
        clients' ledgers (one shared meter, so it caps their *combined*
        spend).  When a call crosses a limit,
        :class:`~repro.fm.errors.FMBudgetExceededError` propagates out
        of :meth:`fit_transform` — it is never absorbed as a generation
        error, so callers can degrade gracefully (the eval sweep marks
        the cell ``status="budget"``).  With ``plan_budget=True`` the
        stage scheduler instead right-sizes the remaining stages to the
        headroom and the run completes.  Like ``cache``, the attachment
        outlives this instance.
    wave_size:
        Sampling draws speculatively issued per wave (and the agenda
        snapshot granularity).  This is a *semantic* knob: it changes
        which candidates are drawn.  It defaults to 1 — the paper's
        serial loop — independent of the executor, so swapping backends
        alone never changes results; raise it to give a concurrent
        executor sampling work to fan out.
    stage_plan:
        ``"serial"`` (default) — every stage sees the full
        everything-so-far agenda, the paper's chain.  ``"overlap"`` —
        each stage sees only the columns its declared reads cover, so
        stages without read/write conflicts are genuinely independent
        and the schedule models them overlapped.  On seeded clients the
        two plans are result-identical (the reads cover everything the
        FM's answers use — enforced by the equivalence suite); dispatch
        order is canonical either way, so this is the stage-level
        analogue of the executor contract.
    plan_budget:
        Enable budget-aware planning: the scheduler checks the budget's
        remaining headroom before each stage, shrinks sampling budgets
        and drops optional stages to fit, and absorbs a mid-stage budget
        trip into the schedule report instead of raising.  Decisions
        land in ``result.fm_usage["execution"]["schedule"]``.
    compile_plan:
        After fitting, also compile the accepted features into a serving
        :class:`~repro.serve.FeaturePlan` and attach it as
        ``result.plan`` — see :meth:`export_plan`.
    checkpoint:
        Path (or :class:`~repro.core.checkpoint.CheckpointStore`) to
        checkpoint the search to: after every completed stage node the
        full restorable state — frame, agenda, result, ledgers, client
        sampling state, budget spend — is written atomically.  ``None``
        (default) disables checkpointing.
    resume:
        With ``checkpoint`` set: restore the stored state before
        scheduling, mark the recorded nodes ``"restored"``, and run only
        what is left — at zero re-spent FM calls, producing a frame
        bit-identical to the uninterrupted run (the checkpoint also
        restores the clients' per-call sampling state).  A checkpoint
        from different data/target/title fails loudly.  When no
        checkpoint file exists yet, the run simply starts fresh.
    """

    def __init__(
        self,
        fm: FMClient,
        function_fm: FMClient | None = None,
        downstream_model: str = "random_forest",
        sampling_budget: int = 10,
        error_threshold: int = 3,
        temperature: float = 0.7,
        validation: ValidationConfig | None = None,
        operator_families: tuple[OperatorFamily, ...] = _ALL_FAMILIES,
        row_level_policy: str = "auto",
        row_limit: int = 200,
        drop_heuristic: bool = True,
        repair_retries: int = 1,
        binary_strategy: str = "sampling",
        fm_feature_removal: bool = False,
        executor: FMExecutor | str | None = None,
        cache: FMCache | None = None,
        wave_size: int | None = None,
        budget: Budget | None = None,
        stage_plan: str = "serial",
        plan_budget: bool = False,
        compile_plan: bool = False,
        checkpoint: "str | CheckpointStore | None" = None,
        resume: bool = False,
    ) -> None:
        if row_level_policy not in ("auto", "never", "always"):
            raise ValueError(f"invalid row_level_policy: {row_level_policy!r}")
        if binary_strategy not in ("sampling", "proposal"):
            raise ValueError(f"invalid binary_strategy: {binary_strategy!r}")
        if wave_size is not None and wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        if stage_plan not in ("serial", "overlap"):
            raise ValueError(f"invalid stage_plan: {stage_plan!r}")
        self.fm = fm
        self.function_fm = function_fm or fm
        self.downstream_model = downstream_model
        self.sampling_budget = sampling_budget
        self.error_threshold = error_threshold
        self.validation = validation or ValidationConfig()
        self.operator_families = tuple(operator_families)
        self.row_level_policy = row_level_policy
        self.drop_heuristic = drop_heuristic
        self.binary_strategy = binary_strategy
        self.fm_feature_removal = fm_feature_removal
        # An executor resolved from a name is owned by this instance:
        # close() tears its threads/loop down.  A passed-in instance
        # belongs to the caller (it may be shared across tools).
        self._owns_executor = isinstance(executor, str)
        if isinstance(executor, str):
            executor = resolve_executor(executor)
        self.executor = executor or SerialExecutor()
        self.cache = cache
        if cache is not None:
            self.fm.cache = cache
            self.function_fm.cache = cache
        self.budget = budget
        if budget is not None:
            self.fm.ledger.budget = budget
            self.function_fm.ledger.budget = budget
        self.wave_size = wave_size if wave_size is not None else 1
        self.stage_plan = stage_plan
        self.plan_budget = plan_budget
        self.compile_plan = compile_plan
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path/store")
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = CheckpointStore(checkpoint)
        self.resume = resume
        self.selector = OperatorSelector(fm, temperature=temperature, executor=self.executor)
        self.generator = FunctionGenerator(
            self.function_fm,
            row_limit=10**9 if row_level_policy == "always" else row_limit,
            repair_retries=repair_retries,
            executor=self.executor,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the executor **if this instance created it** (the
        string forms ``executor="thread"`` / ``"async"`` own a worker
        pool or event-loop thread that otherwise lives until process
        exit).  Caller-supplied executor instances are left running —
        they may be shared.  Idempotent; the tool stays usable (the
        backends restart themselves on the next batch)."""
        if self._owns_executor:
            close = getattr(self.executor, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "SmartFeat":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def fit_transform(
        self,
        frame: DataFrame,
        target: str,
        descriptions: dict[str, str] | None = None,
        title: str = "",
        target_description: str = "",
    ) -> SmartFeatResult:
        """Run the full search and return the enriched dataframe.

        *descriptions* is the data card (column → description).  Omitting
        it reproduces the paper's names-only ablation.

        The search is one scheduler call over the stage graph that
        :meth:`build_stage_graph` declares; ``stage_plan`` and
        ``plan_budget`` (constructor knobs) select the view/overlap
        semantics and the budget planner.
        """
        agenda = DataAgenda.from_dataframe(
            frame,
            target=target,
            descriptions=descriptions,
            title=title,
            target_description=target_description,
            model=self.downstream_model,
        )
        working = frame.copy()
        result = SmartFeatResult(frame=working)
        ctx = StageContext(
            working=working,
            agenda=agenda,
            result=result,
            original_features=[c for c in frame.columns if c != target],
            target=target,
            timer=StageTimer(),
            # restrict_views is derived by the scheduler from its plan —
            # one source of truth for view semantics vs report label.
            column_tags={c: ORIGINALS_TAG for c in frame.columns},
        )
        graph = self.build_stage_graph(ctx)
        completed: frozenset[str] = frozenset()
        on_node_complete = None
        if self.checkpoint is not None:
            run_fingerprint = checkpoint_fingerprint(frame, target, title)
            if self.resume:
                payload = self.checkpoint.load()
                if payload is not None:
                    completed = restore_run(
                        payload,
                        ctx,
                        (self.fm, self.function_fm),
                        self.budget,
                        run_fingerprint,
                    )
            finished: list[str] = list(completed)
            store = self.checkpoint

            def on_node_complete(node) -> None:
                # Under physical fan-out several nodes finish (and
                # checkpoint) concurrently; the snapshot must not read a
                # mid-merge frame, and the finished list is shared.
                with ctx.lock:
                    if node.name not in finished:
                        finished.append(node.name)
                    store.save(
                        snapshot_run(
                            ctx,
                            (self.fm, self.function_fm),
                            self.budget,
                            finished,
                            run_fingerprint,
                        )
                    )

        scheduler = StageScheduler(
            executor=self.executor,
            clients=(self.fm, self.function_fm),
            plan=self.stage_plan,
            budget=self.budget,
            plan_budget=self.plan_budget,
            completed=completed,
            on_node_complete=on_node_complete,
        )
        schedule = scheduler.execute(graph, ctx)
        result.fm_usage = {
            "operator_selector": self.fm.ledger.snapshot(),
        }
        if self.function_fm is not self.fm:
            result.fm_usage["function_generator"] = self.function_fm.ledger.snapshot()
        execution = dict(self.executor.stats.snapshot())
        execution["concurrency"] = self.executor.concurrency
        execution["wave_size"] = self.wave_size
        # Data-plane wall clock per stage (plus sandboxed transform
        # execution under "transform_exec"), next to the FM-side modelled
        # latency so FM time vs dataframe time reads off one report.
        execution["dataplane"] = ctx.timer.snapshot()
        execution["schedule"] = schedule.report()
        result.fm_usage["execution"] = execution
        if self.compile_plan:
            result.plan = self.export_plan(result, frame, target)
        return result

    # ------------------------------------------------------------------
    def fit_transform_stream(
        self,
        shards,
        target: str,
        descriptions: dict[str, str] | None = None,
        title: str = "",
        target_description: str = "",
        *,
        fit_sample_rows: int = 100_000,
        sample_seed: int = 0,
        refresh_group_tables: bool = True,
        pipeline_workers: int | None = None,
        pipeline_prefetch: int | None = None,
    ) -> SmartFeatResult:
        """Out-of-core fit: search over a bounded sample of a shard stream.

        *shards* is an iterable of :class:`~repro.dataframe.io.Shard`
        objects / DataFrames, or — when a second pass may be needed — a
        zero-argument callable returning a fresh such iterable each time
        it is called (e.g. ``lambda: read_csv_shards(path, 50_000)``).

        Pass 1 draws a ``fit_sample_rows``-row sample via the seeded
        reservoir (:func:`~repro.dataframe.io.reservoir_sample`), whose
        output depends only on the row stream and seed — never on shard
        boundaries — and holds at most the sample plus one shard in
        memory.  The FM search then runs :meth:`fit_transform` on that
        sample, so the accepted features, ``result.frame``, and the
        exported plan are bit-identical to fitting in memory on the same
        sample.

        With ``compile_plan=True`` and *refresh_group_tables* (default),
        a second pass re-aggregates every frozen ``group_lookup`` table
        over the **full** stream through the two-pass segmented merge
        (:meth:`~repro.serve.FeaturePlan.refresh_group_tables`), so group
        statistics reflect every row even though the search saw only the
        sample.  A one-shot iterator cannot be re-wound: if the plan has
        group tables and *shards* is not callable, this raises
        ``ValueError`` before any FM spend is wasted on a half-done
        artifact.  Pass ``refresh_group_tables=False`` to keep
        sample-only tables.

        The exported plan records what happened under
        ``plan.metadata["fit_stream"]``: sampled vs total row counts, the
        seed, and whether tables were refreshed.

        ``pipeline_workers`` opts the second (refresh) pass into the
        overlapped shard executor: decode and per-shard feature replay
        run on worker threads while the aggregation fold stays in
        stream order, so the refreshed tables are bit-identical to the
        sequential pass (see
        :meth:`~repro.serve.FeaturePlan.refresh_group_tables`).
        """
        from repro.dataframe.io import reservoir_sample

        if fit_sample_rows < 1:
            raise ValueError(
                f"fit_sample_rows must be >= 1, got {fit_sample_rows}"
            )
        factory = shards if callable(shards) else None
        stream = shards() if factory is not None else shards
        sample, total_rows = reservoir_sample(
            stream, fit_sample_rows, seed=sample_seed
        )
        if len(sample) == 0:
            raise ValueError("shard stream produced no rows to fit on")
        result = self.fit_transform(
            sample,
            target,
            descriptions=descriptions,
            title=title,
            target_description=target_description,
        )
        refreshed = 0
        if result.plan is not None:
            if refresh_group_tables and result.plan._group_lookup_nodes():
                if factory is None:
                    raise ValueError(
                        "refreshing group tables needs a second pass over the "
                        "stream: pass a callable shard factory (e.g. "
                        "lambda: read_csv_shards(path, rows)) or set "
                        "refresh_group_tables=False"
                    )
                refreshed = result.plan.refresh_group_tables(
                    factory(),
                    pipeline_workers=pipeline_workers,
                    pipeline_prefetch=pipeline_prefetch,
                )
            result.plan.metadata["fit_stream"] = {
                "sample_rows": len(sample),
                "requested_sample_rows": fit_sample_rows,
                "total_rows": total_rows,
                "seed": sample_seed,
                "group_tables_refreshed": refreshed,
            }
        return result

    # ------------------------------------------------------------------
    # Serving plan export
    # ------------------------------------------------------------------
    def export_plan(self, result, frame, target, knowledge=None, metadata=None):
        """Compile *result* into a serving :class:`~repro.serve.FeaturePlan`.

        The plan replays the run's accepted features as a pure-numpy
        program (no FM client, no sandbox exec on the hot path) — see
        :mod:`repro.serve`.  *frame* must be the original input frame the
        run was fitted on; per-feature verification rebuilds the fit
        state from it and only marks a feature ``compiled`` when replay
        is bit-identical to ``result.frame``.
        """
        from repro.serve.compiler import compile_plan as _compile_plan

        return _compile_plan(
            result, frame, target, knowledge=knowledge, metadata=metadata
        )

    # ------------------------------------------------------------------
    # Stage graph construction
    # ------------------------------------------------------------------
    def build_stage_graph(self, ctx: StageContext) -> StageGraph:
        """Declare the §3.2 search as a stage graph.

        The reads/writes contract (what each stage's prompts and
        transforms may depend on):

        * ``unary`` reads the originals and writes ``unary`` columns.
        * ``binary`` reads originals + unary (the paper: "binary
          operators over original and unary features") and writes
          ``binary`` columns.
        * ``high_order`` reads originals + unary: group keys must
          partition rows (categoricals, bucketisations) and aggregands
          are interpretable base quantities — arithmetic composites are
          neither, so ``binary`` outputs are not read.
        * ``extractor`` reads originals + unary: entity lookups, splits,
          and composites work off interpretable base columns.
        * ``drop`` reads everything (it needs every stage's usage
          bookkeeping) and writes ``originals`` (removal).
        * ``fm_removal`` reads and writes everything, and is optional —
          the budget planner drops it first.

        Declaration order is the canonical dispatch order; the derived
        hazard edges are what the overlap plan schedules by.  To add a
        stage: append a node with honest reads/writes and a runner that
        builds its prompts from ``ctx.view(node)`` and installs through
        ``self._install`` — the scheduler handles dispatch, attribution,
        views, and budget planning.
        """
        graph = StageGraph()
        families = self.operator_families
        unary_on = OperatorFamily.UNARY in families
        base_reads = frozenset(
            {ORIGINALS_TAG, "unary"} if unary_on else {ORIGINALS_TAG}
        )
        if unary_on:
            graph.add(
                StageNode(
                    name="unary",
                    runner=self._run_unary,
                    reads=frozenset({ORIGINALS_TAG}),
                    writes=frozenset({"unary"}),
                    timer_key="unary_stage",
                    planned_draws=len(ctx.original_features),
                    calls_per_draw=3.0,  # one proposal + ~2 realizations
                )
            )
        if OperatorFamily.BINARY in families:
            runner = (
                self._run_binary_proposal
                if self.binary_strategy == "proposal"
                else self._run_binary_sampling
            )
            graph.add(
                StageNode(
                    name="binary",
                    runner=runner,
                    reads=base_reads,
                    writes=frozenset({"binary"}),
                    timer_key="binary_stage",
                    shrinkable=True,
                    planned_draws=self.sampling_budget,
                    calls_per_draw=(
                        1.5 if self.binary_strategy == "proposal" else 2.0
                    ),
                )
            )
        if OperatorFamily.HIGH_ORDER in families:
            graph.add(
                StageNode(
                    name="high_order",
                    runner=self._run_high_order,
                    reads=base_reads,
                    writes=frozenset({"high_order"}),
                    timer_key="high_order_stage",
                    shrinkable=True,
                    planned_draws=self.sampling_budget,
                    calls_per_draw=1.0,  # realization needs no FM call
                )
            )
        if OperatorFamily.EXTRACTOR in families:
            graph.add(
                StageNode(
                    name="extractor",
                    runner=self._run_extractor,
                    reads=base_reads,
                    writes=frozenset({"extractor"}),
                    timer_key="extractor_stage",
                    shrinkable=True,
                    planned_draws=self.sampling_budget,
                    calls_per_draw=2.0,
                )
            )
        if self.drop_heuristic:
            graph.add(
                StageNode(
                    name="drop",
                    runner=self._run_drop,
                    reads=frozenset({WILDCARD}),
                    writes=frozenset({ORIGINALS_TAG}),
                    timer_key="drop_heuristic",
                    fm=False,
                )
            )
        if self.fm_feature_removal:
            graph.add(
                StageNode(
                    name="fm_removal",
                    runner=self._run_fm_removal,
                    reads=frozenset({WILDCARD}),
                    writes=frozenset({WILDCARD}),
                    timer_key="fm_removal_stage",
                    optional=True,
                    planned_draws=1,
                )
            )
        return graph

    @staticmethod
    def _write_tag(node: StageNode) -> str:
        """The provenance tag *node* stamps on columns it installs."""
        concrete = [tag for tag in node.writes if tag != WILDCARD]
        return concrete[0] if concrete else node.name

    # ------------------------------------------------------------------
    # Stage runners
    # ------------------------------------------------------------------
    def _run_unary(self, ctx: StageContext, node: StageNode) -> None:
        """Proposal strategy: every attribute's call is independent, so
        the whole stage fans out as one batch, followed by one batch of
        first-attempt function generations."""
        frame_view, agenda_view = ctx.view(node)
        proposals = self.selector.unary_candidates_batch(
            agenda_view, ctx.original_features, executor=self.executor
        )
        result = ctx.result
        ordered: list[tuple[str, FeatureCandidate]] = []
        for attr, outcome in zip(ctx.original_features, proposals):
            if not outcome.ok:
                if isinstance(outcome.error, FMBudgetExceededError):
                    raise outcome.error  # budget exhaustion ends the stage
                if isinstance(outcome.error, (FMError, FMParseError)):
                    result.errors["unary"] = result.errors.get("unary", 0) + 1
                    continue
                raise outcome.error
            ordered.extend((attr, candidate) for candidate in outcome.value)
        realized = self.generator.realize_batch(
            [candidate for _, candidate in ordered],
            agenda_view,
            frame_view,
            executor=self.executor,
            timer=ctx.timer,
        )
        for (attr, candidate), outcome in zip(ordered, realized):
            if self._install(candidate, outcome, ctx, node):
                ctx.unary_transformed.add(attr)

    def _run_binary_sampling(self, ctx: StageContext, node: StageNode) -> None:
        self._sampling_stage(ctx, node, OperatorFamily.BINARY)

    def _run_high_order(self, ctx: StageContext, node: StageNode) -> None:
        self._sampling_stage(ctx, node, OperatorFamily.HIGH_ORDER)

    def _run_extractor(self, ctx: StageContext, node: StageNode) -> None:
        self._sampling_stage(ctx, node, OperatorFamily.EXTRACTOR)

    def _run_binary_proposal(self, ctx: StageContext, node: StageNode) -> None:
        """§3.2 strategy ablation: one proposal call instead of sampling."""
        result = ctx.result
        k = ctx.granted_draws.get(node.name, self.sampling_budget)
        _, agenda_view = ctx.view(node)
        try:
            candidates = self.selector.binary_candidates_proposal(agenda_view, k=k)
        except FMBudgetExceededError:
            raise  # budget exhaustion ends the stage, not just one call
        except (FMError, FMParseError):
            result.errors["binary"] = result.errors.get("binary", 0) + 1
            return
        errors = 0
        try:
            for candidate in candidates:
                frame_view, agenda_view = ctx.view(node)  # sees own installs
                # Name dedupe runs against the *shared* agenda: it is merge
                # bookkeeping (the name came from the FM, nothing flows back
                # into a prompt), and checking the view instead would let a
                # collision with an out-of-view column slip through to a
                # realization call the serial plan never makes.
                if candidate.name in ctx.agenda:
                    errors += 1
                    continue
                if self._accept(candidate, frame_view, agenda_view, ctx, node):
                    ctx.used_by_other_ops.update(candidate.columns)
                else:
                    errors += 1
        finally:
            # Recorded even when a budget trip truncates the stage, so
            # error-rate reporting never mistakes a cut-off stage for a
            # clean one.
            result.errors["binary"] = errors

    def _sampling_stage(
        self, ctx: StageContext, node: StageNode, family: OperatorFamily
    ) -> None:
        """Sampling strategy as speculative waves.

        Each wave issues ``min(remaining budget, wave_size)`` draws from
        the stage's current view, then parses, deduplicates,
        batch-realizes, and validates the results in submission order.
        Once the error count crosses the threshold the stage stops — any
        later results of the in-flight wave are discarded
        (already-spent speculation).  With ``wave_size=1`` this is
        exactly the paper's serial loop.  The draw budget is
        ``sampling_budget`` unless the budget planner granted less.
        """
        result = ctx.result
        draw_budget = ctx.granted_draws.get(node.name, self.sampling_budget)
        errors = 0
        seen: set[str] = set()
        issued = 0
        try:
            while issued < draw_budget and errors < self.error_threshold:
                frame_view, agenda_view = ctx.view(node)  # grows with own installs
                wave = min(self.wave_size, draw_budget - issued)
                samples = self.selector.sample_batch(
                    family, agenda_view, wave, executor=self.executor
                )
                issued += wave
                # Parse/dedupe pass, truncated at the error threshold so the
                # realization batch never pays for candidates we won't keep.
                survivors: list[FeatureCandidate] = []
                for outcome in samples:
                    if errors >= self.error_threshold:
                        break
                    if not outcome.ok:
                        if isinstance(outcome.error, FMBudgetExceededError):
                            raise outcome.error  # budget exhaustion ends the stage
                        if isinstance(outcome.error, (FMError, FMParseError)):
                            errors += 1
                            continue
                        raise outcome.error
                    candidate = outcome.value
                    if candidate is None:
                        errors += 1
                        continue
                    # Name dedupe runs against the *shared* agenda (merge
                    # bookkeeping, not FM input): checking the view would
                    # let a collision with an out-of-view column through to
                    # a realization call the serial plan never makes.
                    if candidate.name in seen or candidate.name in ctx.agenda:
                        errors += 1  # repeated feature counts as a generation error
                        continue
                    seen.add(candidate.name)
                    survivors.append(candidate)
                realized = self.generator.realize_batch(
                    survivors,
                    agenda_view,
                    frame_view,
                    executor=self.executor,
                    timer=ctx.timer,
                )
                for candidate, outcome in zip(survivors, realized):
                    if errors >= self.error_threshold:
                        break
                    if self._install(candidate, outcome, ctx, node):
                        ctx.used_by_other_ops.update(candidate.columns)
                    else:
                        errors += 1
        finally:
            # Recorded even when a budget trip truncates the stage mid-wave,
            # so error-rate reporting never mistakes a cut-off stage for a
            # clean one.
            result.errors[family.value] = errors

    # ------------------------------------------------------------------
    def _accept(
        self,
        candidate: FeatureCandidate,
        frame_view: DataFrame,
        agenda_view: DataAgenda,
        ctx: StageContext,
        node: StageNode,
    ) -> bool:
        """Realize, validate, and install one candidate; True on success."""
        try:
            realized = self.generator.realize(
                candidate, agenda_view, frame_view, timer=ctx.timer
            )
        except FMBudgetExceededError:
            raise  # budget exhaustion ends the stage, not one candidate
        except REALIZE_ERRORS as exc:
            realized = exc
        return self._install(candidate, realized, ctx, node)

    def _install(
        self,
        candidate: FeatureCandidate,
        realized: RealizedFeature | RowCompletionPlan | SourceSuggestion | Exception,
        ctx: StageContext,
        node: StageNode,
    ) -> bool:
        """Validate and install one realized candidate; True on success.

        Installation merges into the *shared* frame and agenda — stages
        run in canonical order, so install order is the deterministic
        merge order — and stamps each accepted column with the node's
        provenance tag, which is what later stages' views are cut by.

        Under physical stage fan-out several stages install concurrently
        (install order then follows completion order — real backends make
        no ordering promise).  The context lock guards only the *merge*:
        a half-merged feature must never be visible to a concurrent
        stage's view.  The O(rows) work — validation screens and the
        accepted columns' kind/values classification — runs before the
        lock, so overlapped stages do not serialize on each other's
        screening.  (The row count is stable for the whole run: stages
        only add or drop columns, so reading it up front is safe.)
        """
        working, agenda, result = ctx.working, ctx.agenda, ctx.result
        if isinstance(realized, Exception):
            with ctx.lock:
                result.rejections[candidate.name] = f"generation failed: {realized}"
            return False
        if isinstance(realized, SourceSuggestion):
            with ctx.lock:
                result.suggestions.append(realized)
            return False
        if isinstance(realized, RowCompletionPlan):
            with ctx.lock:
                result.row_plans.append(realized)
            return False
        assert isinstance(realized, RealizedFeature)
        with ctx.lock:
            n_rows = len(working)
        report = validate_output(
            _merge_columns(realized), n_rows, self.validation, candidate.name
        )
        classified: list[tuple[str, object, str, list[str]]] = []
        for column, series in report.accepted.items():
            kind = "numeric" if series.dtype.kind in "ifb" else "categorical"
            uniques = series.unique()
            if set(uniques) <= {0, 1, 0.0, 1.0, True, False}:
                kind = "binary"
            values: list[str] = []
            if kind == "categorical" and len(uniques) <= 15:
                values = [str(v) for v in uniques]
            classified.append((column, series, kind, values))
        with ctx.lock:
            for column, reason in report.rejected.items():
                result.rejections[column] = reason
            if not report.ok:
                return False
            accepted_columns: list[str] = []
            tag = self._write_tag(node)
            for column, series, kind, values in classified:
                if column in working.columns:
                    result.rejections[column] = "duplicate column name"
                    continue
                working[column] = series
                ctx.column_tags[column] = tag
                accepted_columns.append(column)
                agenda.add(column, kind, candidate.description, values=values)
            if not accepted_columns:
                return False
            feature = realized.feature
            feature.output_columns = accepted_columns
            result.new_features[feature.name] = feature
            return True

    # ------------------------------------------------------------------
    def _run_fm_removal(self, ctx: StageContext, node: StageNode) -> None:
        """FM-driven removal of redundant generated features (§3.2 future
        work, off by default).  Only generated columns may be removed —
        originals and the target are never eligible."""
        from repro.core import prompts as _prompts

        del node  # wildcard reader: always works on the shared state
        working, agenda, result = ctx.working, ctx.agenda, ctx.result
        generated_columns = set(result.new_columns)
        try:
            response = self.executor.complete(
                self.fm, _prompts.feature_removal_prompt(agenda), temperature=0.0
            )
            payload = parse_json_response(response.text)
        except FMBudgetExceededError:
            raise  # budget exhaustion ends the stage, not just the call
        except (FMError, FMParseError):
            result.errors["removal"] = result.errors.get("removal", 0) + 1
            return
        for name in payload.get("remove") or []:
            if name not in generated_columns or name not in working.columns:
                continue
            drop_inplace(working, name)
            agenda.remove(name)
            result.removed_by_fm.append(name)
            for feature in result.new_features.values():
                if name in feature.output_columns:
                    feature.output_columns.remove(name)
        # Features whose every output column was removed vanish entirely.
        result.new_features = {
            key: feature
            for key, feature in result.new_features.items()
            if feature.output_columns
        }

    # ------------------------------------------------------------------
    def _run_drop(self, ctx: StageContext, node: StageNode) -> None:
        """Remove originals superseded by a unary transform (Section 3.2)."""
        del node
        for attr in ctx.original_features:
            if attr in ctx.unary_transformed and attr not in ctx.used_by_other_ops:
                if attr in ctx.working.columns:
                    drop_inplace(ctx.working, attr)
                    ctx.result.dropped.append(attr)


def drop_inplace(frame: DataFrame, column: str) -> None:
    """Remove *column* from *frame* without copying the other columns."""
    frame.drop(column, errors="ignore", inplace=True)


def complete_row_plan(
    result: SmartFeatResult,
    plan: RowCompletionPlan,
    fm: FMClient,
    relevant_columns: list[str] | None = None,
    executor: FMExecutor | None = None,
) -> SmartFeatResult:
    """Execute a deferred row-level completion plan (the user said yes).

    Section 3.3 defers row-level completion of large tables to the user,
    who weighs the preview against the projected cost.  This helper runs
    the full completion over ``result.frame`` with *fm* — batched through
    *executor* when given — and installs the finished column; the plan is
    removed from ``result.row_plans``.

    The relevant columns come from, in order: the *relevant_columns*
    override, the plan's own ``relevant_columns`` metadata, the preview
    records (plans recorded before the metadata existed), and finally the
    whole frame.
    """
    from repro.core import prompts as _prompts

    if plan not in result.row_plans:
        raise ValueError(f"plan {plan.name!r} is not pending on this result")
    columns = list(relevant_columns) if relevant_columns else list(plan.relevant_columns)
    if not columns and plan.preview:
        preview_record = plan.preview[0][0]
        columns = [c for c in result.frame.columns if c in preview_record]
    if not columns:
        columns = result.frame.columns
    names, rows = result.frame.row_tuples(columns)
    requests = [
        FMRequest(
            _prompts.row_completion_prompt(plan.name, dict(zip(names, vals))), 0.0
        )
        for vals in rows
    ]
    responses = fm.complete_batch(requests, executor)
    values = [parse_scalar(r.unwrap().text) for r in responses]
    from repro.dataframe import Series

    result.frame[plan.name] = Series(values, plan.name)
    result.new_features[plan.name] = GeneratedFeature(
        name=plan.name,
        family=OperatorFamily.EXTRACTOR,
        input_columns=list(columns),
        description=plan.description,
        output_columns=[plan.name],
        source_code="<row-level FM completion>",
        fm_calls=len(values),
    )
    result.row_plans.remove(plan)
    return result


def _merge_columns(realized: RealizedFeature) -> DataFrame:
    """Collect a realized feature's output columns into one frame."""
    out = DataFrame()
    for name, series in realized.values.items():
        out[name] = series.rename(name)
    return out
