"""Prompt templates for the operator selector and the function generator.

These mirror the paper's Table 2 templates (and its Figure 2 function
prompt).  Every template embeds the serialised data agenda so both a real
FM and the simulator work from the same context window.
"""

from __future__ import annotations

from repro.core.agenda import DataAgenda
from repro.core.types import FeatureCandidate

__all__ = [
    "binary_proposal_prompt",
    "binary_sampling_prompt",
    "feature_removal_prompt",
    "extractor_sampling_prompt",
    "function_generation_prompt",
    "function_repair_prompt",
    "high_order_sampling_prompt",
    "row_completion_prompt",
    "source_suggestion_prompt",
    "unary_proposal_prompt",
]

_UNARY = """{agenda}

Task: Consider the unary operators on the attribute "{attr}" that can
generate helpful features to predict "{target}". List all possible
appropriate operators and your confidence levels
(certain/high/medium/low), one per line, in the format:
operator_tag (confidence): short feature description
Allowed operator tags: normalization, bucketization, log_transform,
get_dummies, date_split, text_length, squared, is_missing, none."""


def unary_proposal_prompt(agenda: DataAgenda, attr: str) -> str:
    """Proposal-strategy prompt for the unary operator family (Table 2)."""
    return _UNARY.format(agenda=agenda.describe(), attr=attr, target=agenda.target)


_BINARY = """{agenda}

Task: Propose ONE new feature that combines exactly two numeric attributes
with a binary arithmetic operator (+, -, *, /) and is helpful to predict
"{target}". Avoid features already present in the agenda.
Respond with JSON only:
{{"operator": "-", "columns": ["colA", "colB"], "name": "...", "description": "..."}}"""


def binary_sampling_prompt(agenda: DataAgenda) -> str:
    """Sampling-strategy prompt for the binary operator family."""
    return _BINARY.format(agenda=agenda.describe(), target=agenda.target)


_BINARY_PROPOSAL = """{agenda}

Task: List up to {k} new features, each combining exactly two numeric
attributes with a binary arithmetic operator (+, -, *, /), that are most
helpful to predict "{target}". Avoid features already present in the
agenda. Respond with one JSON object per line:
{{"operator": "-", "columns": ["colA", "colB"], "name": "...", "description": "..."}}"""


def binary_proposal_prompt(agenda: DataAgenda, k: int) -> str:
    """Proposal-strategy prompt for the binary family (§3.2 ablation).

    The paper applies the proposal strategy where the search space is
    small; exposing it for the binary family lets the strategy trade-off
    (one call, deterministic top-k vs. many calls, diverse samples) be
    measured directly."""
    return _BINARY_PROPOSAL.format(agenda=agenda.describe(), target=agenda.target, k=k)


_HIGH_ORDER = """{agenda}

Task: Generate a groupby feature for predicting "{target}" by applying
'df.groupby(groupby_col)[agg_col].transform(function)'. Specify the
groupby_col, agg_col, and the aggregation function (mean/max/min/sum/count).
Respond with JSON only:
{{"groupby_col": ["..."], "agg_col": "...", "function": "mean"}}"""


def high_order_sampling_prompt(agenda: DataAgenda) -> str:
    """Sampling-strategy prompt for the high-order (GroupByThenAgg) family
    — the exact Table 2 template."""
    return _HIGH_ORDER.format(agenda=agenda.describe(), target=agenda.target)


_EXTRACTOR = """{agenda}

Task: Propose ONE extractor feature that captures information the other
operators cannot: a composite index over several attributes, parsing or
splitting structured text, or an open-world knowledge lookup (for example
the population density of a city). It should help predict "{target}".
Respond with JSON only:
{{"name": "...", "columns": ["..."], "description": "...", "kind": "function" | "row_level" | "source"}}"""


def extractor_sampling_prompt(agenda: DataAgenda) -> str:
    """Sampling-strategy prompt for the extractor family."""
    return _EXTRACTOR.format(agenda=agenda.describe(), target=agenda.target)


_FUNCTION = """{agenda}

Task: Generate the optimal Python function to obtain the new feature
"{name}" (output) using feature(s) {columns} (input).
Feature description: {description}
Requirements: define `def transform(df):` returning the new column (a
Series) or new columns (a DataFrame). The execution environment provides
`pd` (pandas-compatible), `np` (numpy) and `math`. Handle missing values
and avoid division by zero. Respond with Python code only."""


def function_generation_prompt(agenda: DataAgenda, candidate: FeatureCandidate) -> str:
    """Function-generator prompt (Figure 2's right-hand interaction)."""
    return _FUNCTION.format(
        agenda=agenda.describe(),
        name=candidate.name,
        columns=candidate.columns,
        description=candidate.description,
    )


_REPAIR = """{agenda}

Task: The Python function previously generated for the new feature
"{name}" (inputs {columns}) failed.
Feature description: {description}
Failing code:
```python
{source}
```
Error: {error}
Generate a corrected `def transform(df):` meeting the same requirements
(`pd`, `np`, `math` available; handle missing values; avoid division by
zero). Respond with Python code only."""


def function_repair_prompt(
    agenda: DataAgenda, candidate: FeatureCandidate, source: str, error: str
) -> str:
    """Error-correction prompt: re-ask with the failing code and message.

    Implements the paper's "further improvements in error correction and
    detection" direction (Section 5) as a retry-with-feedback loop.
    """
    return _REPAIR.format(
        agenda=agenda.describe(),
        name=candidate.name,
        columns=candidate.columns,
        description=candidate.description,
        source=source.rstrip(),
        error=error,
    )


_ROW_COMPLETION = """Using world knowledge, complete the value of attribute "{attr}".
Record: {serialized}
{attr}: ?
Respond with the value only."""


def row_completion_prompt(attr: str, record: dict) -> str:
    """Serialised row-completion prompt: ``A1: v1, ..., A_new: ?`` (§3.3)."""
    serialized = ", ".join(f"{k}: {v}" for k, v in record.items())
    return _ROW_COMPLETION.format(attr=attr, serialized=serialized)


_SOURCES = """{agenda}

The feature "{name}" ({description}) cannot be computed by a
transformation function or row-level completion. Please suggest external
data sources the user could consult to construct it, one per line."""


def source_suggestion_prompt(agenda: DataAgenda, candidate: FeatureCandidate) -> str:
    """Scenario-3 prompt: ask the FM to suggest external data sources."""
    return _SOURCES.format(
        agenda=agenda.describe(), name=candidate.name, description=candidate.description
    )


_REMOVAL = """{agenda}

Task: Review the final feature set above. Identify generated features
that are redundant with one another (multiple monotone transforms of the
same column), near-duplicates, or uninformative for predicting
"{target}", and should be removed before training.
Respond with JSON only:
{{"remove": ["feature_name", "..."]}}"""


def feature_removal_prompt(agenda: DataAgenda) -> str:
    """FM-driven feature removal (the paper's Section 3.2 future work:
    "The exploration of utilizing FMs for feature removal is left as
    future work")."""
    return _REMOVAL.format(agenda=agenda.describe(), target=agenda.target)


def caafe_prompt(agenda: DataAgenda, sample_rows: str, iteration: int) -> str:
    """The CAAFE baseline's unguided code-generation prompt.

    Lives here (rather than in the baseline) so all prompt surfaces are in
    one reviewed module.
    """
    return (
        "You are an automated feature engineering assistant (CAAFE).\n"
        f"{agenda.describe()}\n"
        f"Sample rows:\n{sample_rows}\n"
        f"Iteration {iteration}: Suggest ONE new feature as Python code that\n"
        "operates on the dataframe `df` and assigns the new column, e.g.\n"
        "df['new_feature'] = df['a'] / df['b']\n"
        "Respond with Python code only."
    )
