"""Human- and machine-readable summaries of a SMARTFEAT run.

Generated features are code: downstream users need to audit what was
built, from which columns, with which transformation, and at what FM
cost.  :func:`result_summary` renders a terminal-friendly report;
:func:`provenance_json` exports the full lineage for storage alongside
the enriched dataset.
"""

from __future__ import annotations

import json

from repro.core.pipeline import SmartFeatResult

__all__ = ["provenance_json", "result_summary"]


def result_summary(result: SmartFeatResult) -> str:
    """A terminal-friendly report of one SMARTFEAT run."""
    lines: list[str] = []
    lines.append(f"SMARTFEAT run: {len(result.new_features)} features accepted")
    by_family: dict[str, list[str]] = {}
    for feature in result.new_features.values():
        by_family.setdefault(feature.family.value, []).append(feature.name)
    for family in ("unary", "binary", "high_order", "extractor"):
        names = by_family.get(family, [])
        if names:
            lines.append(f"  {family:10s} ({len(names)}): {', '.join(names)}")
    if result.dropped:
        lines.append(f"Dropped originals: {', '.join(result.dropped)}")
    if result.removed_by_fm:
        lines.append(f"Removed by FM review: {', '.join(result.removed_by_fm)}")
    if result.rejections:
        lines.append(f"Rejected candidates: {len(result.rejections)}")
        for name, reason in list(result.rejections.items())[:5]:
            lines.append(f"  - {name}: {reason}")
        if len(result.rejections) > 5:
            lines.append(f"  ... and {len(result.rejections) - 5} more")
    for plan in result.row_plans:
        lines.append(
            f"Deferred row-level plan {plan.name!r}: {plan.estimated_calls} calls, "
            f"~${plan.estimated_cost_usd:.2f}, ~{plan.estimated_latency_s:.0f}s"
        )
    for suggestion in result.suggestions:
        lines.append(f"Suggested sources for {suggestion.name!r}:")
        for source in suggestion.sources:
            lines.append(f"  - {source}")
    for client, usage in result.fm_usage.items():
        if client == "execution":
            lines.append(
                f"FM execution: concurrency {usage['concurrency']}, "
                f"wave size {usage['wave_size']}, "
                f"{usage['summed_latency_s']:.0f}s summed latency, "
                f"{usage['critical_path_s']:.0f}s critical path"
            )
            continue
        lines.append(
            f"FM usage [{client}]: {usage['n_calls']} calls, "
            f"{usage['prompt_tokens'] + usage['completion_tokens']} tokens, "
            f"${usage['cost_usd']:.4f}, {usage['latency_s']:.0f}s modelled latency"
        )
    return "\n".join(lines)


def provenance_json(result: SmartFeatResult, indent: int = 2) -> str:
    """Full feature lineage as JSON (name, family, inputs, code, outputs)."""
    payload = {
        "features": [
            {
                "name": feature.name,
                "family": feature.family.value,
                "input_columns": feature.input_columns,
                "output_columns": feature.output_columns,
                "description": feature.description,
                "source_code": feature.source_code,
                "fm_calls": feature.fm_calls,
            }
            for feature in result.new_features.values()
        ],
        "dropped_originals": result.dropped,
        "rejections": result.rejections,
        "row_plans": [
            {
                "name": plan.name,
                "n_rows": plan.n_rows,
                "estimated_calls": plan.estimated_calls,
                "estimated_cost_usd": plan.estimated_cost_usd,
            }
            for plan in result.row_plans
        ],
        "source_suggestions": [
            {"name": s.name, "sources": s.sources} for s in result.suggestions
        ],
        "fm_usage": result.fm_usage,
    }
    return json.dumps(payload, indent=indent)
