"""Restricted execution of FM-generated transformation code.

FM output is untrusted text.  The sandbox compiles it, rejects obviously
dangerous constructs, and executes it in a namespace that exposes only the
dataframe facade (``pd``), ``np``, ``math``, and a minimal set of builtins
— the contract stated in the function-generation prompt.
"""

from __future__ import annotations

import ast
import math
import threading
from typing import Any

import numpy as np

from repro.dataframe import DataFrame, Series
from repro.dataframe import pandas_facade as _pd

__all__ = [
    "SandboxViolation",
    "TransformError",
    "clear_compile_cache",
    "run_script",
    "run_transform",
]


class SandboxViolation(Exception):
    """Generated code used a construct the sandbox forbids."""


class TransformError(Exception):
    """Generated code compiled but failed at execution time."""


_FORBIDDEN_TOKENS = (
    "import os",
    "import sys",
    "import subprocess",
    "import socket",
    "import shutil",
    "import pathlib",
    "__import__",
    "open(",
    "eval(",
    "exec(",
    "globals(",
    "locals(",
    "getattr(",
    "setattr(",
    "delattr(",
    "__subclasses__",
    "__builtins__",
    "breakpoint(",
    "input(",
)

_SAFE_BUILTINS = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "dict": dict,
    "enumerate": enumerate,
    "float": float,
    "int": int,
    "len": len,
    "list": list,
    "map": map,
    "max": max,
    "min": min,
    "range": range,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "ZeroDivisionError": ZeroDivisionError,
    "Exception": Exception,
}


#: Modules generated code may import.  The namespace already injects
#: ``np``/``math``, so imports are never *needed* — but re-importing an
#: exposed module is harmless, while anything else is an escape attempt.
_ALLOWED_IMPORTS = frozenset({"math", "numpy"})

#: Bare names whose mere mention is an escape attempt.  The token scan
#: only catches the call spelling (``eval(``); the AST check catches
#: aliasing (``f = eval``) too.
_FORBIDDEN_NAMES = frozenset(
    {
        "eval",
        "exec",
        "open",
        "compile",
        "globals",
        "locals",
        "vars",
        "getattr",
        "setattr",
        "delattr",
        "breakpoint",
        "input",
        "__import__",
        "__builtins__",
    }
)


def _check_source(source: str) -> None:
    """Two-stage vetting: substring pre-filter, then an AST walk.

    The token scan is a cheap fast-reject for the obvious spellings; it is
    trivially bypassed by whitespace (``import  os``) or attribute
    chaining (``x.__class__``), so the real gate is the AST check: only
    allowlisted imports, no dunder attribute access, no forbidden names.
    """
    for token in _FORBIDDEN_TOKENS:
        if token in source:
            raise SandboxViolation(f"forbidden construct in generated code: {token!r}")
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return  # compile() reports syntax errors as TransformError
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in _ALLOWED_IMPORTS:
                    raise SandboxViolation(
                        f"forbidden import of module {alias.name!r} in generated code"
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level or root not in _ALLOWED_IMPORTS:
                raise SandboxViolation(
                    f"forbidden import from module {node.module!r} in generated code"
                )
        elif isinstance(node, ast.Attribute) and node.attr.startswith("__"):
            raise SandboxViolation(
                f"forbidden dunder attribute access {node.attr!r} in generated code"
            )
        elif isinstance(node, ast.Name) and node.id in _FORBIDDEN_NAMES:
            raise SandboxViolation(
                f"forbidden name {node.id!r} in generated code"
            )


#: Compiled code objects keyed on ``(filename, source)``.  The legacy
#: replay path re-executes the same handful of accepted transforms per
#: batch; caching skips both the forbidden-token scan and ``compile()``
#: on repeats.  Sources that fail either step are never cached, so
#: violations and syntax errors re-raise on every call.
_COMPILE_CACHE: dict[tuple[str, str], Any] = {}
_COMPILE_CACHE_LIMIT = 512
_COMPILE_LOCK = threading.Lock()


def clear_compile_cache() -> None:
    """Drop every cached code object (test/benchmark isolation hook)."""
    with _COMPILE_LOCK:
        _COMPILE_CACHE.clear()


def _compiled(source: str, filename: str):
    """Vetted, compiled code for *source* — cached per ``(filename, source)``."""
    key = (filename, source)
    with _COMPILE_LOCK:
        code = _COMPILE_CACHE.get(key)
    if code is not None:
        return code
    _check_source(source)
    code = compile(source, filename, "exec")
    with _COMPILE_LOCK:
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            # Bounded FIFO: drop the oldest entry; recompiling is cheap.
            _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)))
        _COMPILE_CACHE[key] = code
    return code


def _safe_import(name, globals=None, locals=None, fromlist=(), level=0):
    """Runtime backstop to the AST import check: only allowlisted modules.

    The exec namespace needs *an* ``__import__`` for the (vetted)
    ``import math`` / ``import numpy`` statements generated code
    sometimes opens with; this one re-checks the allowlist so a bypass of
    the static pass still cannot load anything else.
    """
    import builtins

    if level or name.split(".")[0] not in _ALLOWED_IMPORTS:
        raise SandboxViolation(f"forbidden import of module {name!r} in generated code")
    return builtins.__import__(name, globals, locals, fromlist, level)


def _namespace() -> dict[str, Any]:
    return {
        "__builtins__": {**_SAFE_BUILTINS, "__import__": _safe_import},
        "pd": _pd,
        "np": np,
        "math": math,
        "DataFrame": DataFrame,
        "Series": Series,
    }


def run_transform(source: str, frame: DataFrame) -> Series | DataFrame:
    """Execute ``def transform(df)`` source and return its result.

    Raises :class:`SandboxViolation` for forbidden constructs,
    :class:`TransformError` when the code fails to compile, define
    ``transform``, or execute.
    """
    namespace = _namespace()
    try:
        code = _compiled(source, "<fm-transform>")
    except SyntaxError as exc:
        raise TransformError(f"generated code does not compile: {exc}") from exc
    exec(code, namespace)  # noqa: S102 - sandboxed on purpose
    transform = namespace.get("transform")
    if not callable(transform):
        raise TransformError("generated code does not define transform(df)")
    try:
        result = transform(frame)
    except Exception as exc:
        raise TransformError(f"transform(df) raised {type(exc).__name__}: {exc}") from exc
    if not isinstance(result, (Series, DataFrame)):
        raise TransformError(
            f"transform(df) must return Series or DataFrame, got {type(result).__name__}"
        )
    return result


def run_script(source: str, frame: DataFrame) -> DataFrame:
    """Execute CAAFE-style statement code that mutates ``df`` in place.

    The frame is copied first; the mutated copy is returned.
    """
    namespace = _namespace()
    working = frame.copy()
    namespace["df"] = working
    try:
        code = _compiled(source, "<fm-script>")
    except SyntaxError as exc:
        raise TransformError(f"generated script does not compile: {exc}") from exc
    try:
        exec(code, namespace)  # noqa: S102 - sandboxed on purpose
    except Exception as exc:
        raise TransformError(f"generated script raised {type(exc).__name__}: {exc}") from exc
    result = namespace.get("df")
    if not isinstance(result, DataFrame):
        raise TransformError("script deleted or rebound df to a non-DataFrame")
    return result
