"""Restricted execution of FM-generated transformation code.

FM output is untrusted text.  The sandbox compiles it, rejects obviously
dangerous constructs, and executes it in a namespace that exposes only the
dataframe facade (``pd``), ``np``, ``math``, and a minimal set of builtins
— the contract stated in the function-generation prompt.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.dataframe import DataFrame, Series
from repro.dataframe import pandas_facade as _pd

__all__ = ["SandboxViolation", "TransformError", "run_script", "run_transform"]


class SandboxViolation(Exception):
    """Generated code used a construct the sandbox forbids."""


class TransformError(Exception):
    """Generated code compiled but failed at execution time."""


_FORBIDDEN_TOKENS = (
    "import os",
    "import sys",
    "import subprocess",
    "import socket",
    "import shutil",
    "import pathlib",
    "__import__",
    "open(",
    "eval(",
    "exec(",
    "globals(",
    "locals(",
    "getattr(",
    "setattr(",
    "delattr(",
    "__subclasses__",
    "__builtins__",
    "breakpoint(",
    "input(",
)

_SAFE_BUILTINS = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "dict": dict,
    "enumerate": enumerate,
    "float": float,
    "int": int,
    "len": len,
    "list": list,
    "map": map,
    "max": max,
    "min": min,
    "range": range,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "ZeroDivisionError": ZeroDivisionError,
    "Exception": Exception,
}


def _check_source(source: str) -> None:
    for token in _FORBIDDEN_TOKENS:
        if token in source:
            raise SandboxViolation(f"forbidden construct in generated code: {token!r}")


def _namespace() -> dict[str, Any]:
    return {
        "__builtins__": dict(_SAFE_BUILTINS),
        "pd": _pd,
        "np": np,
        "math": math,
        "DataFrame": DataFrame,
        "Series": Series,
    }


def run_transform(source: str, frame: DataFrame) -> Series | DataFrame:
    """Execute ``def transform(df)`` source and return its result.

    Raises :class:`SandboxViolation` for forbidden constructs,
    :class:`TransformError` when the code fails to compile, define
    ``transform``, or execute.
    """
    _check_source(source)
    namespace = _namespace()
    try:
        code = compile(source, "<fm-transform>", "exec")
        exec(code, namespace)  # noqa: S102 - sandboxed on purpose
    except SyntaxError as exc:
        raise TransformError(f"generated code does not compile: {exc}") from exc
    transform = namespace.get("transform")
    if not callable(transform):
        raise TransformError("generated code does not define transform(df)")
    try:
        result = transform(frame)
    except Exception as exc:
        raise TransformError(f"transform(df) raised {type(exc).__name__}: {exc}") from exc
    if not isinstance(result, (Series, DataFrame)):
        raise TransformError(
            f"transform(df) must return Series or DataFrame, got {type(result).__name__}"
        )
    return result


def run_script(source: str, frame: DataFrame) -> DataFrame:
    """Execute CAAFE-style statement code that mutates ``df`` in place.

    The frame is copied first; the mutated copy is returned.
    """
    _check_source(source)
    namespace = _namespace()
    working = frame.copy()
    namespace["df"] = working
    try:
        code = compile(source, "<fm-script>", "exec")
        exec(code, namespace)  # noqa: S102 - sandboxed on purpose
    except SyntaxError as exc:
        raise TransformError(f"generated script does not compile: {exc}") from exc
    except Exception as exc:
        raise TransformError(f"generated script raised {type(exc).__name__}: {exc}") from exc
    result = namespace["df"]
    if not isinstance(result, DataFrame):
        raise TransformError("script rebound df to a non-DataFrame")
    return result
