"""Restricted execution of FM-generated transformation code.

FM output is untrusted text.  The sandbox compiles it, rejects obviously
dangerous constructs, and executes it in a namespace that exposes only the
dataframe facade (``pd``), ``np``, ``math``, and a minimal set of builtins
— the contract stated in the function-generation prompt.
"""

from __future__ import annotations

import math
import threading
from typing import Any

import numpy as np

from repro.dataframe import DataFrame, Series
from repro.dataframe import pandas_facade as _pd

__all__ = [
    "SandboxViolation",
    "TransformError",
    "clear_compile_cache",
    "run_script",
    "run_transform",
]


class SandboxViolation(Exception):
    """Generated code used a construct the sandbox forbids."""


class TransformError(Exception):
    """Generated code compiled but failed at execution time."""


_FORBIDDEN_TOKENS = (
    "import os",
    "import sys",
    "import subprocess",
    "import socket",
    "import shutil",
    "import pathlib",
    "__import__",
    "open(",
    "eval(",
    "exec(",
    "globals(",
    "locals(",
    "getattr(",
    "setattr(",
    "delattr(",
    "__subclasses__",
    "__builtins__",
    "breakpoint(",
    "input(",
)

_SAFE_BUILTINS = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "dict": dict,
    "enumerate": enumerate,
    "float": float,
    "int": int,
    "len": len,
    "list": list,
    "map": map,
    "max": max,
    "min": min,
    "range": range,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "ZeroDivisionError": ZeroDivisionError,
    "Exception": Exception,
}


def _check_source(source: str) -> None:
    for token in _FORBIDDEN_TOKENS:
        if token in source:
            raise SandboxViolation(f"forbidden construct in generated code: {token!r}")


#: Compiled code objects keyed on ``(filename, source)``.  The legacy
#: replay path re-executes the same handful of accepted transforms per
#: batch; caching skips both the forbidden-token scan and ``compile()``
#: on repeats.  Sources that fail either step are never cached, so
#: violations and syntax errors re-raise on every call.
_COMPILE_CACHE: dict[tuple[str, str], Any] = {}
_COMPILE_CACHE_LIMIT = 512
_COMPILE_LOCK = threading.Lock()


def clear_compile_cache() -> None:
    """Drop every cached code object (test/benchmark isolation hook)."""
    with _COMPILE_LOCK:
        _COMPILE_CACHE.clear()


def _compiled(source: str, filename: str):
    """Vetted, compiled code for *source* — cached per ``(filename, source)``."""
    key = (filename, source)
    with _COMPILE_LOCK:
        code = _COMPILE_CACHE.get(key)
    if code is not None:
        return code
    _check_source(source)
    code = compile(source, filename, "exec")
    with _COMPILE_LOCK:
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            # Bounded FIFO: drop the oldest entry; recompiling is cheap.
            _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)))
        _COMPILE_CACHE[key] = code
    return code


def _namespace() -> dict[str, Any]:
    return {
        "__builtins__": dict(_SAFE_BUILTINS),
        "pd": _pd,
        "np": np,
        "math": math,
        "DataFrame": DataFrame,
        "Series": Series,
    }


def run_transform(source: str, frame: DataFrame) -> Series | DataFrame:
    """Execute ``def transform(df)`` source and return its result.

    Raises :class:`SandboxViolation` for forbidden constructs,
    :class:`TransformError` when the code fails to compile, define
    ``transform``, or execute.
    """
    namespace = _namespace()
    try:
        code = _compiled(source, "<fm-transform>")
    except SyntaxError as exc:
        raise TransformError(f"generated code does not compile: {exc}") from exc
    exec(code, namespace)  # noqa: S102 - sandboxed on purpose
    transform = namespace.get("transform")
    if not callable(transform):
        raise TransformError("generated code does not define transform(df)")
    try:
        result = transform(frame)
    except Exception as exc:
        raise TransformError(f"transform(df) raised {type(exc).__name__}: {exc}") from exc
    if not isinstance(result, (Series, DataFrame)):
        raise TransformError(
            f"transform(df) must return Series or DataFrame, got {type(result).__name__}"
        )
    return result


def run_script(source: str, frame: DataFrame) -> DataFrame:
    """Execute CAAFE-style statement code that mutates ``df`` in place.

    The frame is copied first; the mutated copy is returned.
    """
    namespace = _namespace()
    working = frame.copy()
    namespace["df"] = working
    try:
        code = _compiled(source, "<fm-script>")
    except SyntaxError as exc:
        raise TransformError(f"generated script does not compile: {exc}") from exc
    try:
        exec(code, namespace)  # noqa: S102 - sandboxed on purpose
    except Exception as exc:
        raise TransformError(f"generated script raised {type(exc).__name__}: {exc}") from exc
    result = namespace["df"]
    if not isinstance(result, DataFrame):
        raise TransformError("script rebound df to a non-DataFrame")
    return result
