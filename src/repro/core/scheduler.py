"""The stage-graph scheduler: §3.2's stage chain as a dependency DAG.

SMARTFEAT's search (Section 3.2) was written here, as in the paper, as a
hard-coded sequence: unary → binary → high-order → extractor → drop →
fm-removal.  But the sequence is really a *dependency graph* over column
provenance: the binary stage must wait for the unary stage only because
it **reads** unary-produced columns; the high-order and extractor stages
read nothing the binary stage writes, so nothing in the search's
semantics forces them to queue behind it.  This module makes that
structure explicit:

:class:`StageNode`
    One search stage with declared ``reads``/``writes`` — sets of column
    *provenance tags* (``"originals"``, ``"unary"``, … or the wildcard
    ``"*"``).  The tags name where a column came from, so a node's
    declaration is stable across datasets.
:class:`StageGraph`
    Declaration-ordered node list plus the hazard edges derived from the
    declarations (read-after-write, write-after-write, and
    write-after-read conflicts — exactly a compiler's data-dependence
    test, applied to feature-search stages).
:class:`StageScheduler`
    Executes a graph and reports the schedule.

Determinism contract (the PR 1/2 equivalence discipline, one level up)
----------------------------------------------------------------------
Stage *dispatch* always follows the canonical declaration order — the
paper's chain — because the seeded simulator keys sampling entropy on
each client's call counter, so reordering calls across stages would
change the draws and make runs irreproducible.  What the ``plan``
changes is

* which columns each stage **sees** (``plan="overlap"`` hands every
  stage a view restricted to its declared reads plus its own writes;
  ``plan="serial"`` reproduces the chain's everything-so-far views), and
* the **modelled timeline**: serial lays the stages end to end, overlap
  starts each node at the latest finish of its hazard dependencies (the
  classic DAG makespan, each node internally bounded by the executor's
  concurrency).

A seeded serial run and an overlapped run are therefore
result-identical whenever the declared reads really cover everything the
FM's answers depend on — which is precisely what the equivalence suite
verifies.  Against a stateless production FM client the same graph
admits physical stage fan-out through the shared executor; the modelled
overlap makespan reported here is the wall-clock such a deployment
would see.

Budget-aware planning
---------------------
With ``plan_budget=True`` the scheduler consults the shared
:class:`~repro.fm.base.Budget`'s remaining headroom before dispatching
each node and *right-sizes* the work to fit instead of letting the node
trip the meter mid-flight: sampling stages get their draw budgets shrunk
(which shrinks their waves), optional nodes (fm-removal) are dropped,
and a node that still overruns the estimate is truncated at the meter
and recorded as such — ``fit_transform`` completes instead of raising
:class:`~repro.fm.errors.FMBudgetExceededError`.  Every decision lands
in ``result.fm_usage["execution"]["schedule"]``.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.fm.errors import FMBudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fm.base import Budget, FMClient
    from repro.fm.executor import FMExecutor

__all__ = [
    "NodeRecord",
    "StageGraph",
    "StageNode",
    "StageScheduler",
    "StageSchedule",
    "WILDCARD",
]

#: Provenance tag matched by every other tag in hazard tests.
WILDCARD = "*"

#: Fallback per-call estimates for the budget planner, used before any
#: call has been recorded (afterwards the ledger's own averages apply).
#: They mirror a typical selector call under the simulated cost model.
_DEFAULT_CALL_COST_USD = 0.05
_DEFAULT_CALL_LATENCY_S = 3.0


@dataclass(frozen=True)
class StageNode:
    """One search stage and its declared data dependencies.

    ``reads``/``writes`` are column provenance tags.  ``runner`` executes
    the stage against a context object (the pipeline's ``StageContext``)
    and the node itself (so the stage can build its view and tag its
    outputs).  ``fm`` marks nodes that issue FM calls (the budget planner
    ignores pure data-plane nodes); ``optional`` nodes may be dropped by
    the planner; ``shrinkable`` nodes accept a reduced draw budget via
    ``ctx.granted_draws[name]``.  ``planned_draws``/``calls_per_draw``
    feed the planner's spend estimate; ``timer_key`` is the data-plane
    accounting key (kept stable with the pre-graph report format).
    """

    name: str
    runner: Callable[[Any, "StageNode"], None]
    reads: frozenset[str]
    writes: frozenset[str]
    timer_key: str
    fm: bool = True
    optional: bool = False
    shrinkable: bool = False
    planned_draws: int = 0
    calls_per_draw: float = 1.0

    @property
    def planned_calls(self) -> int:
        return math.ceil(self.planned_draws * self.calls_per_draw)


def _overlaps(a: frozenset[str], b: frozenset[str]) -> bool:
    if not a or not b:
        return False
    if WILDCARD in a or WILDCARD in b:
        return True
    return bool(a & b)


class StageGraph:
    """Declaration-ordered stage nodes plus derived hazard edges.

    Declaration order is the canonical (serial) execution order, so the
    derived edges always point backwards — the graph is acyclic by
    construction.  :meth:`dependencies` returns, per node, the earlier
    nodes it conflicts with: a read-after-write, write-after-write, or
    write-after-read overlap on the declared tag sets.
    """

    def __init__(self, nodes: Iterable[StageNode] = ()) -> None:
        self.nodes: list[StageNode] = []
        self._by_name: dict[str, StageNode] = {}
        for node in nodes:
            self.add(node)

    def add(self, node: StageNode) -> StageNode:
        if node.name in self._by_name:
            raise ValueError(f"duplicate stage node {node.name!r}")
        self.nodes.append(node)
        self._by_name[node.name] = node
        return node

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> StageNode:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.nodes)

    @staticmethod
    def conflicts(earlier: StageNode, later: StageNode) -> bool:
        """True when *later* must wait for *earlier* (any data hazard)."""
        return (
            _overlaps(earlier.writes, later.reads)  # read-after-write
            or _overlaps(earlier.writes, later.writes)  # write-after-write
            or _overlaps(earlier.reads, later.writes)  # write-after-read
        )

    def dependencies(self) -> dict[str, tuple[str, ...]]:
        """Per node, the earlier nodes it conflicts with (direct edges)."""
        deps: dict[str, tuple[str, ...]] = {}
        for i, later in enumerate(self.nodes):
            deps[later.name] = tuple(
                earlier.name
                for earlier in self.nodes[:i]
                if self.conflicts(earlier, later)
            )
        return deps


@dataclass
class NodeRecord:
    """One scheduled node's outcome and accounting.

    ``status`` is ``"ran"`` (full size), ``"shrunk"`` (ran at a reduced
    draw budget), ``"truncated"`` (hit the budget meter mid-stage; its
    partial results stand), ``"skipped"`` (never dispatched), or
    ``"restored"`` (completed by an earlier, checkpointed run — its
    outputs were rehydrated, so this run never dispatched it).
    ``critical_path_s`` is the node's modelled FM wall-clock at the
    executor's concurrency; ``dataplane_s`` its measured dataframe time.
    ``start_s``/``end_s`` place the node on the modelled overlap
    timeline.
    """

    name: str
    status: str = "ran"
    reason: str = ""
    depends_on: tuple[str, ...] = ()
    planned_draws: int = 0
    granted_draws: int | None = None
    fm_calls: int = 0
    cache_hits: int = 0
    cost_usd: float = 0.0
    summed_latency_s: float = 0.0
    critical_path_s: float = 0.0
    dataplane_s: float = 0.0
    start_s: float = 0.0
    end_s: float = 0.0
    #: Real (measured) wall-clock span of the stage, as offsets from the
    #: run's start — from the run timer's windows.  Distinct from the
    #: modelled start_s/end_s; when stages physically overlap (real FM
    #: backends), the measured windows are where that shows up.
    measured_window: tuple[float, float] | None = None

    @property
    def duration_s(self) -> float:
        """Modelled node duration: FM critical path plus data-plane time."""
        return self.critical_path_s + self.dataplane_s

    @property
    def degraded(self) -> bool:
        return self.status in ("shrunk", "skipped", "truncated")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "reason": self.reason,
            "depends_on": list(self.depends_on),
            "planned_draws": self.planned_draws,
            "granted_draws": self.granted_draws,
            "fm_calls": self.fm_calls,
            "cache_hits": self.cache_hits,
            "cost_usd": round(self.cost_usd, 6),
            "summed_latency_s": round(self.summed_latency_s, 3),
            "critical_path_s": round(self.critical_path_s, 3),
            "dataplane_s": round(self.dataplane_s, 6),
            "start_s": round(self.start_s, 3),
            "end_s": round(self.end_s, 3),
            "measured_window_s": (
                list(self.measured_window) if self.measured_window else None
            ),
        }


@dataclass
class StageSchedule:
    """A finished schedule: per-node records plus the two makespans.

    ``physical`` marks a run whose independent stages really executed
    concurrently (stateless clients through a shared concurrent
    executor) — there the *measured* per-node windows, not just the
    modelled timeline, show the overlap.
    """

    plan: str
    plan_budget: bool
    physical: bool = False
    records: list[NodeRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Lay the executed nodes on the serial and overlap timelines."""
        ends: dict[str, float] = {}
        cursor = 0.0
        for record in self.records:
            if record.status in ("skipped", "restored"):
                record.start_s = record.end_s = max(
                    (ends.get(dep, 0.0) for dep in record.depends_on), default=0.0
                )
                continue
            record.start_s = max(
                (ends.get(dep, 0.0) for dep in record.depends_on), default=0.0
            )
            record.end_s = record.start_s + record.duration_s
            ends[record.name] = record.end_s
            cursor += record.duration_s
        self._makespan_serial = cursor
        self._makespan_overlap = max(ends.values(), default=0.0)

    @property
    def makespan_serial_s(self) -> float:
        """Modelled duration with the stages laid end to end."""
        return self._makespan_serial

    @property
    def makespan_overlap_s(self) -> float:
        """Modelled DAG makespan with independent stages overlapped."""
        return self._makespan_overlap

    @property
    def overlap_speedup(self) -> float:
        if self._makespan_overlap <= 0:
            return 1.0
        return self._makespan_serial / self._makespan_overlap

    def critical_path(self) -> list[str]:
        """Node names on the overlap timeline's longest chain."""
        by_name = {
            r.name: r
            for r in self.records
            if r.status not in ("skipped", "restored")
        }
        if not by_name:
            return []
        tail = max(by_name.values(), key=lambda r: r.end_s)
        path = [tail.name]
        while True:
            gating = [
                by_name[dep]
                for dep in by_name[path[-1]].depends_on
                if dep in by_name and abs(by_name[dep].end_s - by_name[path[-1]].start_s) < 1e-9
            ]
            if not gating:
                break
            path.append(max(gating, key=lambda r: r.end_s).name)
        path.reverse()
        return path

    def degraded_nodes(self) -> list[str]:
        return [r.name for r in self.records if r.degraded]

    @property
    def measured_makespan_s(self) -> float:
        """Real wall-clock span of the executed stages (first start to
        last end of the measured per-node windows; 0.0 when unmeasured).
        Under physical overlap this is shorter than the sum of the
        windows — the proof the fan-out actually happened."""
        windows = [r.measured_window for r in self.records if r.measured_window]
        if not windows:
            return 0.0
        return max(end for _, end in windows) - min(start for start, _ in windows)

    def report(self) -> dict:
        """The ``execution["schedule"]`` payload."""
        return {
            "plan": self.plan,
            "plan_budget": self.plan_budget,
            "physical_overlap": self.physical,
            "dispatch_order": [
                r.name
                for r in self.records
                if r.status not in ("skipped", "restored")
            ],
            "nodes": [r.as_dict() for r in self.records],
            "makespan_serial_s": round(self._makespan_serial, 3),
            "makespan_overlap_s": round(self._makespan_overlap, 3),
            "overlap_speedup": round(self.overlap_speedup, 3),
            "measured_makespan_s": round(self.measured_makespan_s, 6),
            "critical_path": self.critical_path(),
            "degraded": self.degraded_nodes(),
        }


class StageScheduler:
    """Dispatches a :class:`StageGraph` and assembles the schedule.

    By default nodes run in declaration order on the calling thread; FM
    batches a node issues are attributed to it through the executor's
    :meth:`~repro.fm.executor.FMExecutor.stage` scope, and client-ledger
    deltas give the node's spend.  With ``plan_budget=True`` the
    dispatcher consults the budget's headroom first (see the module
    docstring for the policy) and absorbs mid-node
    :class:`~repro.fm.errors.FMBudgetExceededError` into a
    ``"truncated"`` record instead of re-raising.

    **Physical overlap.**  When the plan is ``"overlap"``, the executor
    is concurrent, and every client reports
    :meth:`~repro.fm.base.FMClient.is_stateless` (e.g. a
    transport-backed HTTP client, whose entropy lives server-side), the
    canonical dispatch order protects nothing — no counter, no cursor —
    so the scheduler runs each node on its own thread as soon as its
    hazard dependencies finish.  All stages share the one executor
    (whose in-flight bound spans them), so the overlap the serial
    dispatcher only *models* becomes measured wall-clock.  Per-node
    spend is then attributed from stage-tagged
    :class:`~repro.fm.executor.BatchRecord` entries (ledger deltas would
    cross-count concurrent stages).  ``physical="off"`` forces the
    sequential dispatcher regardless.
    """

    def __init__(
        self,
        executor: "FMExecutor",
        clients: tuple["FMClient", ...],
        plan: str = "serial",
        budget: "Budget | None" = None,
        plan_budget: bool = False,
        physical: str = "auto",
        completed: Iterable[str] = (),
        on_node_complete: Callable[[StageNode], None] | None = None,
    ) -> None:
        if plan not in ("serial", "overlap"):
            raise ValueError(f"invalid stage plan: {plan!r}")
        if physical not in ("auto", "off"):
            raise ValueError(f"invalid physical mode: {physical!r}")
        self.executor = executor
        # Deduplicate while preserving order (fm may be function_fm too).
        seen: "dict[int, FMClient]" = {}
        for client in clients:
            seen.setdefault(id(client), client)
        self.clients = tuple(seen.values())
        self.plan = plan
        self.budget = budget
        self.plan_budget = plan_budget and budget is not None
        self.physical = physical
        #: Node names a checkpointed earlier run already completed: they
        #: are marked ``"restored"`` and never dispatched (their outputs
        #: arrived with the restored context, their spend with the
        #: restored ledgers — re-running would re-spend).
        self.completed = frozenset(completed)
        #: Called after each node this run finishes (any terminal state —
        #: ran/shrunk/truncated/skipped, never a raised failure), on the
        #: thread that completed the node.  The pipeline's checkpoint
        #: writer hangs off this.
        self.on_node_complete = on_node_complete

    def _node_done(self, node: StageNode) -> None:
        if self.on_node_complete is not None:
            self.on_node_complete(node)

    def _physical_overlap(self) -> bool:
        """Whether this run may fan independent stages out for real."""
        if self.physical == "off" or self.plan != "overlap":
            return False
        if getattr(self.executor, "concurrency", 1) <= 1:
            return False
        return all(
            getattr(client, "is_stateless", lambda: False)()
            for client in self.clients
        )

    # ------------------------------------------------------------------
    def execute(self, graph: StageGraph, ctx) -> StageSchedule:
        """Run every node and return the finalized schedule.

        *ctx* is the pipeline's stage context; the scheduler touches only
        its ``timer``, ``granted_draws``, ``restrict_views``, and
        ``physical`` fields — the view/physical flags are derived here
        from the plan and client statefulness (single source of truth),
        so a context can never carry chain views under an ``overlap``
        label or vice versa.  The node runners own the rest.
        """
        ctx.restrict_views = self.plan == "overlap"
        physical = self._physical_overlap()
        ctx.physical = physical
        schedule = StageSchedule(
            plan=self.plan, plan_budget=self.plan_budget, physical=physical
        )
        deps = graph.dependencies()
        if physical:
            return self._execute_physical(graph, deps, ctx, schedule)
        for node in graph.nodes:
            record = NodeRecord(
                name=node.name,
                depends_on=deps[node.name],
                planned_draws=node.planned_draws,
            )
            schedule.records.append(record)
            if node.name in self.completed:
                record.status = "restored"
                record.reason = "completed by a checkpointed earlier run"
                continue
            if not self._plan_node(node, record, ctx):
                self._node_done(node)
                continue
            ledger_before = self._ledger_totals()
            batches_before = len(self.executor.batch_log)
            dataplane_before = ctx.timer.seconds(node.timer_key)
            try:
                with self.executor.stage(node.name), ctx.timer.time(node.timer_key):
                    node.runner(ctx, node)
            except FMBudgetExceededError as exc:
                if not self.plan_budget:
                    self._account(
                        record, ledger_before, batches_before, dataplane_before, ctx, node
                    )
                    schedule.finalize()
                    raise
                record.status = "truncated"
                record.reason = f"budget meter tripped mid-stage: {exc.args[0]}"
            self._account(
                record, ledger_before, batches_before, dataplane_before, ctx, node
            )
            self._node_done(node)
        schedule.finalize()
        return schedule

    # ------------------------------------------------------------------
    def _ledger_totals(self) -> tuple[int, int, float, float]:
        calls = hits = 0
        cost = latency = 0.0
        for client in self.clients:
            snap = client.ledger.snapshot()
            calls += snap["n_calls"]
            hits += snap["cache_hits"]
            cost += snap["cost_usd"]
            latency += snap["latency_s"]
        return calls, hits, cost, latency

    def _account(
        self,
        record: NodeRecord,
        ledger_before: tuple[int, int, float, float],
        batches_before: int,
        dataplane_before: float,
        ctx,
        node: StageNode,
    ) -> None:
        calls, hits, cost, latency = self._ledger_totals()
        record.fm_calls = calls - ledger_before[0]
        record.cache_hits = hits - ledger_before[1]
        record.cost_usd = cost - ledger_before[2]
        record.summed_latency_s = latency - ledger_before[3]
        # Only this node's batches count (the stage tag is thread-local,
        # so another run sharing the executor cannot leak records in).
        batches = [
            batch
            for batch in self.executor.batch_log[batches_before:]
            if batch.stage == node.name
        ]
        record.critical_path_s = sum(batch.critical_path_s for batch in batches)
        # Data-plane time is the stage's wall clock minus the time it sat
        # inside executor.run — otherwise a backend with real latency
        # (HTTP) would be double-counted against the modelled critical
        # path in duration_s.  Near-zero for simulated clients.
        blocked = sum(batch.wall_s for batch in batches)
        record.dataplane_s = max(
            0.0, ctx.timer.seconds(node.timer_key) - dataplane_before - blocked
        )
        record.measured_window = ctx.timer.windows().get(node.timer_key)

    # ------------------------------------------------------------------
    # Physical stage fan-out (stateless clients, concurrent executor)
    # ------------------------------------------------------------------
    def _execute_physical(
        self,
        graph: StageGraph,
        deps: dict[str, tuple[str, ...]],
        ctx,
        schedule: StageSchedule,
    ) -> StageSchedule:
        """Dispatch each node on its own thread once its hazards resolve.

        A condition variable coordinates the launch loop with node
        completions; budget planning (:meth:`_plan_node`) still happens
        on the dispatching thread, right before launch.  A node failure
        stops further launches, lets in-flight nodes drain, and re-raises
        the earliest failure in declaration order — mirroring what the
        sequential dispatcher's first raise would have surfaced.
        Mid-node budget trips are absorbed per ``plan_budget`` exactly as
        in sequential dispatch.
        """
        records: dict[str, NodeRecord] = {}
        for node in graph.nodes:
            record = NodeRecord(
                name=node.name,
                depends_on=deps[node.name],
                planned_draws=node.planned_draws,
            )
            schedule.records.append(record)
            records[node.name] = record
        cond = threading.Condition()
        done: set[str] = set()
        launched: set[str] = set()
        for node in graph.nodes:  # checkpoint-restored nodes never dispatch
            if node.name in self.completed:
                records[node.name].status = "restored"
                records[node.name].reason = "completed by a checkpointed earlier run"
                done.add(node.name)
                launched.add(node.name)
        failures: dict[str, BaseException] = {}
        threads: list[threading.Thread] = []

        def worker(node: StageNode, record: NodeRecord) -> None:
            batches_before = len(self.executor.batch_log)
            dataplane_before = ctx.timer.seconds(node.timer_key)
            error: BaseException | None = None
            try:
                with self.executor.stage(node.name), ctx.timer.time(node.timer_key):
                    node.runner(ctx, node)
            except FMBudgetExceededError as exc:
                if self.plan_budget:
                    record.status = "truncated"
                    record.reason = f"budget meter tripped mid-stage: {exc.args[0]}"
                else:
                    error = exc
            except BaseException as exc:  # noqa: BLE001 - re-raised by dispatcher
                error = exc
            self._account_physical(record, batches_before, dataplane_before, ctx, node)
            if error is None:
                self._node_done(node)
            with cond:
                done.add(node.name)
                if error is not None:
                    failures[node.name] = error
                cond.notify_all()

        with cond:
            while True:
                if not failures:
                    for node in graph.nodes:
                        if node.name in launched:
                            continue
                        if any(dep not in done for dep in deps[node.name]):
                            continue
                        record = records[node.name]
                        launched.add(node.name)
                        if not self._plan_node(node, record, ctx):
                            done.add(node.name)
                            self._node_done(node)
                            continue
                        thread = threading.Thread(
                            target=worker,
                            args=(node, record),
                            name=f"stage-{node.name}",
                            daemon=True,
                        )
                        threads.append(thread)
                        thread.start()
                in_flight = sum(1 for name in launched if name not in done)
                if failures and in_flight == 0:
                    break
                if len(done) == len(graph.nodes):
                    break
                cond.wait()
        for thread in threads:
            thread.join()
        if failures:
            for node in graph.nodes:  # never-dispatched nodes stay visible
                if node.name not in launched:
                    records[node.name].status = "skipped"
                    records[node.name].reason = "not dispatched: an earlier stage failed"
        schedule.finalize()
        if failures:
            for node in graph.nodes:  # earliest failure in declaration order
                if node.name in failures:
                    raise failures[node.name]
        return schedule

    def _account_physical(
        self,
        record: NodeRecord,
        batches_before: int,
        dataplane_before: float,
        ctx,
        node: StageNode,
    ) -> None:
        """Per-node accounting from stage-tagged batch records.

        Ledger deltas are meaningless when several stages charge one
        ledger concurrently; the executor's batch log carries each
        batch's stage tag (thread-local, set by the worker's ``stage()``
        scope) plus its call/cache/cost/latency totals, which sum to
        exactly what the ledger-delta path reports in sequential mode.
        """
        batches = [
            batch
            for batch in self.executor.batch_log[batches_before:]
            if batch.stage == node.name
        ]
        record.fm_calls = sum(batch.n_calls for batch in batches)
        record.cache_hits = sum(batch.n_cached for batch in batches)
        record.cost_usd = sum(batch.cost_usd for batch in batches)
        record.summed_latency_s = sum(batch.summed_latency_s for batch in batches)
        record.critical_path_s = sum(batch.critical_path_s for batch in batches)
        blocked = sum(batch.wall_s for batch in batches)
        record.dataplane_s = max(
            0.0, ctx.timer.seconds(node.timer_key) - dataplane_before - blocked
        )
        record.measured_window = ctx.timer.windows().get(node.timer_key)

    # ------------------------------------------------------------------
    # Budget-aware planning
    # ------------------------------------------------------------------
    def _plan_node(self, node: StageNode, record: NodeRecord, ctx) -> bool:
        """Decide whether/how large to dispatch *node*; False = skip."""
        if not self.plan_budget or not node.fm:
            return True
        assert self.budget is not None
        affordable = self._affordable_calls()
        if affordable <= 0:
            record.status = "skipped"
            record.reason = "budget exhausted before dispatch"
            return False
        if node.planned_calls <= affordable:
            return True
        if node.shrinkable and node.planned_draws > 0:
            granted = int(affordable / node.calls_per_draw)
            if granted >= 1:
                ctx.granted_draws[node.name] = granted
                record.status = "shrunk"
                record.granted_draws = granted
                record.reason = (
                    f"draw budget right-sized from {node.planned_draws} to "
                    f"{granted} to fit remaining FM budget"
                )
                return True
            record.status = "skipped"
            record.reason = "remaining FM budget affords no sampling draw"
            return False
        if node.optional:
            record.status = "skipped"
            record.reason = "optional stage dropped to preserve FM budget"
            return False
        # Mandatory, unshrinkable, and over the estimate: dispatch anyway;
        # the meter may truncate it, which execute() absorbs and records.
        record.reason = (
            f"estimated {node.planned_calls} calls exceed affordable "
            f"{affordable}; dispatched tight"
        )
        return True

    def _affordable_calls(self) -> int:
        """How many more FM calls the budget's headroom can pay for.

        The calls axis is exact; the cost and latency axes divide the
        headroom by the run's average per-call spend so far (a fixed
        prior before the first call).  Deterministic for seeded runs —
        every input is ledger state, never wall-clock.
        """
        assert self.budget is not None
        headroom = self.budget.headroom()
        snap = self.budget.snapshot()
        spent_calls = snap["spent_calls"]
        avg_cost = (
            snap["spent_cost_usd"] / spent_calls
            if spent_calls
            else _DEFAULT_CALL_COST_USD
        )
        avg_latency = (
            snap["spent_latency_s"] / spent_calls
            if spent_calls
            else _DEFAULT_CALL_LATENCY_S
        )
        limits: list[float] = []
        if headroom["calls"] is not None:
            limits.append(headroom["calls"])
        if headroom["cost_usd"] is not None:
            limits.append(headroom["cost_usd"] / max(avg_cost, 1e-9))
        if headroom["latency_s"] is not None:
            limits.append(headroom["latency_s"] / max(avg_latency, 1e-9))
        if not limits:
            return 1 << 30
        return int(min(limits))
