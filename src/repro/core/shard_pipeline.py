"""Pipelined shard execution: an ordered, bounded-prefetch parallel map.

The out-of-core paths (PR 9) are strictly sequential: CSV decode, feature
transform, and output write run one after another per shard, so the serve
loop uses one stage's worth of hardware at a time.  :func:`pipeline_map`
overlaps them as a three-stage pipeline:

* **stage 1 — produce**: a dedicated thread pulls shards off the source
  iterator (CSV decode, chunk generation, re-chunking) ahead of the
  consumer, up to a bounded prefetch window;
* **stage 2 — transform**: a pool of worker threads maps the shard
  function over in-flight shards concurrently;
* **stage 3 — emit**: the caller's thread drains a *re-sequencing
  buffer* that releases results strictly in input order, so downstream
  folds/writes observe exactly the sequence the sequential loop would
  have — and therefore identical bytes.

Backpressure is structural: at most ``workers + prefetch`` shards are
admitted past the producer before the consumer has emitted their
predecessors (a semaphore ticket per in-flight shard, released on emit),
so peak memory stays a small constant multiple of the shard size no
matter how slow the consumer is.  Errors preserve sequential semantics:
a shard whose production or transform raises re-raises on the caller's
thread *after* every earlier shard has been emitted — the same prefix a
sequential loop would have completed.

Per-stage wall-clock and queue-depth statistics accumulate into a
:class:`PipelineStats`, which the serve/CLI/benchmark report plumbing
surfaces next to the existing timing sections.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Iterator

__all__ = ["PipelineStats", "pipeline_map"]


class PipelineStats:
    """Thread-safe per-stage accounting for one (or more) pipeline runs.

    ``produce_s`` / ``transform_s`` / ``emit_wait_s`` are summed stage
    wall-clocks: time spent pulling the source iterator, total worker
    seconds inside the shard function (summed across workers, so it can
    exceed the run's wall time), and time the consumer spent blocked
    waiting for the next in-order result.  Queue depth is sampled at
    every hand-off: ``max``/``mean`` describe the task queue feeding the
    workers, ``resequence_max`` the out-of-order result buffer.  One
    instance may accumulate several runs (``runs`` counts them) — the
    server's stats surface reuses one across a stream of calls.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs = 0
        self.workers = 0
        self.prefetch = 0
        self.shards_in = 0
        self.shards_out = 0
        self.produce_s = 0.0
        self.transform_s = 0.0
        self.emit_wait_s = 0.0
        self.wall_s = 0.0
        self.max_queue_depth = 0
        self.max_resequence_depth = 0
        self._depth_samples = 0
        self._depth_total = 0

    # -- recording (called from pipeline threads) ----------------------
    def _configure(self, workers: int, prefetch: int) -> None:
        with self._lock:
            self.runs += 1
            self.workers = workers
            self.prefetch = prefetch

    def _add_produce(self, seconds: float, queue_depth: int) -> None:
        with self._lock:
            self.shards_in += 1
            self.produce_s += seconds
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)
            self._depth_samples += 1
            self._depth_total += queue_depth

    def _add_transform(self, seconds: float, resequence_depth: int) -> None:
        with self._lock:
            self.transform_s += seconds
            self.max_resequence_depth = max(
                self.max_resequence_depth, resequence_depth
            )

    def _add_emit(self, wait_s: float) -> None:
        with self._lock:
            self.shards_out += 1
            self.emit_wait_s += wait_s

    def _add_wall(self, seconds: float) -> None:
        with self._lock:
            self.wall_s += seconds

    # -- reporting -----------------------------------------------------
    @property
    def mean_queue_depth(self) -> float:
        with self._lock:
            if not self._depth_samples:
                return 0.0
            return self._depth_total / self._depth_samples

    def to_dict(self) -> dict:
        """The report payload the serve/CLI/benchmark plumbing embeds."""
        with self._lock:
            mean_depth = (
                self._depth_total / self._depth_samples
                if self._depth_samples
                else 0.0
            )
            return {
                "runs": self.runs,
                "workers": self.workers,
                "prefetch": self.prefetch,
                "shards_in": self.shards_in,
                "shards_out": self.shards_out,
                "wall_s": round(self.wall_s, 6),
                "stage_s": {
                    "produce": round(self.produce_s, 6),
                    "transform": round(self.transform_s, 6),
                    "emit_wait": round(self.emit_wait_s, 6),
                },
                "queue_depth": {
                    "max": self.max_queue_depth,
                    "mean": round(mean_depth, 3),
                    "resequence_max": self.max_resequence_depth,
                },
            }


class _Run:
    """Shared mutable state of one pipeline execution."""

    def __init__(self, capacity: int) -> None:
        self.cond = threading.Condition()
        self.tasks: deque[tuple[int, Any]] = deque()  # producer → workers
        self.results: dict[int, tuple[str, Any]] = {}  # re-sequencing buffer
        self.tickets = threading.Semaphore(capacity)  # in-flight bound
        self.cancel = threading.Event()
        self.produced = 0
        self.producer_done = False


def pipeline_map(
    source: Iterable,
    fn: Callable[[Any], Any],
    *,
    workers: int,
    prefetch: int | None = None,
    stats: PipelineStats | None = None,
) -> Iterator:
    """Map *fn* over *source* with overlapped stages; yield results in order.

    Results are re-sequenced so the generator yields ``fn(item)`` in
    exactly source order — byte-for-byte the sequence a plain ``for``
    loop would produce.  At most ``workers + prefetch`` items are in
    flight (produced but not yet emitted); *prefetch* defaults to
    ``workers``.  If producing or transforming item *i* raises, every
    result before *i* is still yielded, then the exception re-raises on
    the caller's thread; closing the generator early shuts the pipeline
    down and joins its threads.  Threads start on the first ``next()``.

    ``workers=1`` still overlaps stage 1 with stages 2+3 (one producer
    thread, one transform thread); callers in this package keep the
    plain sequential loop as the default and route here only on an
    explicit ``pipeline_workers`` opt-in.
    """
    if workers < 1:
        raise ValueError(f"pipeline workers must be >= 1, got {workers}")
    if prefetch is None:
        prefetch = workers
    if prefetch < 1:
        raise ValueError(f"pipeline prefetch must be >= 1, got {prefetch}")
    stats = stats if stats is not None else PipelineStats()
    capacity = workers + prefetch
    run = _Run(capacity)

    def produce() -> None:
        iterator = iter(source)
        seq = 0
        try:
            while True:
                run.tickets.acquire()
                if run.cancel.is_set():
                    return
                started = time.perf_counter()
                try:
                    item = next(iterator)
                except StopIteration:
                    run.tickets.release()
                    return
                elapsed = time.perf_counter() - started
                with run.cond:
                    run.tasks.append((seq, item))
                    run.produced = seq + 1
                    stats._add_produce(elapsed, len(run.tasks))
                    run.cond.notify_all()
                seq += 1
        except BaseException as exc:  # noqa: BLE001 - ferried to the caller
            with run.cond:
                run.results[seq] = ("error", exc)
                run.produced = seq + 1
                run.cond.notify_all()
        finally:
            with run.cond:
                run.producer_done = True
                run.cond.notify_all()

    def work() -> None:
        while True:
            with run.cond:
                while not run.tasks and not run.producer_done and not run.cancel.is_set():
                    run.cond.wait()
                if run.cancel.is_set() or (not run.tasks and run.producer_done):
                    return
                seq, item = run.tasks.popleft()
            started = time.perf_counter()
            try:
                outcome = ("ok", fn(item))
            except BaseException as exc:  # noqa: BLE001 - ferried to the caller
                outcome = ("error", exc)
            elapsed = time.perf_counter() - started
            with run.cond:
                run.results[seq] = outcome
                stats._add_transform(elapsed, len(run.results))
                run.cond.notify_all()

    producer = threading.Thread(
        target=produce, name="shard-pipeline-produce", daemon=True
    )
    pool = [
        threading.Thread(target=work, name=f"shard-pipeline-worker-{i}", daemon=True)
        for i in range(workers)
    ]

    def emit() -> Iterator:
        run_started = time.perf_counter()
        stats._configure(workers, prefetch)
        producer.start()
        for thread in pool:
            thread.start()
        try:
            next_seq = 0
            while True:
                wait_started = time.perf_counter()
                with run.cond:
                    while True:
                        if next_seq in run.results:
                            outcome = run.results.pop(next_seq)
                            break
                        if run.producer_done and next_seq >= run.produced:
                            return
                        run.cond.wait()
                stats._add_emit(time.perf_counter() - wait_started)
                status, payload = outcome
                if status == "error":
                    raise payload
                yield payload
                run.tickets.release()
                next_seq += 1
        finally:
            run.cancel.set()
            run.tickets.release()  # unblock a producer waiting for a ticket
            with run.cond:
                run.cond.notify_all()
            producer.join()
            for thread in pool:
                thread.join()
            stats._add_wall(time.perf_counter() - run_started)

    return emit()
