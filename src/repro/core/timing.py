"""Wall-clock accounting for the data plane.

The FM execution layer already reports modelled latency (summed vs
critical path) in ``result.fm_usage["execution"]``; :class:`StageTimer`
adds the *dataframe* side — how long each pipeline stage and the sandboxed
transform executions actually took — so FM time vs data-plane time is
visible in one report.

The timer is owned by one ``fit_transform`` call and passed explicitly to
everything that accounts against it (the scheduler wraps each stage, the
function generator receives it per ``realize_batch`` call); nothing is
parked on shared attributes, so two concurrent runs sharing a generator
or an executor can never cross their timers.  All mutation is
lock-protected and the ``time`` scopes nest and overlap safely, which is
what lets overlapped stages account on different threads against one
timer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["StageTimer"]


class StageTimer:
    """Thread-safe accumulator of named wall-clock durations.

    ``timer.time("unary_stage")`` is a context manager; :meth:`snapshot`
    returns ``{name: {"seconds": total, "calls": n}}``.  :meth:`windows`
    additionally exposes each stage's real-time span — first entry to
    last exit, as offsets from the timer's creation — which the stage
    scheduler uses to report measured (as opposed to modelled) overlap.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._windows: dict[str, tuple[float, float]] = {}

    @contextmanager
    def time(self, stage: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            with self._lock:
                self._seconds[stage] = self._seconds.get(stage, 0.0) + (end - start)
                self._calls[stage] = self._calls.get(stage, 0) + 1
                first, _ = self._windows.get(
                    stage, (start - self._origin, end - self._origin)
                )
                self._windows[stage] = (
                    min(first, start - self._origin),
                    end - self._origin,
                )

    def seconds(self, stage: str) -> float:
        """Accumulated seconds for one stage (0.0 when never entered)."""
        with self._lock:
            return self._seconds.get(stage, 0.0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Accumulated totals per stage (seconds rounded to microseconds)."""
        with self._lock:
            return {
                stage: {
                    "seconds": round(self._seconds[stage], 6),
                    "calls": self._calls[stage],
                }
                for stage in self._seconds
            }

    def windows(self) -> dict[str, tuple[float, float]]:
        """Per-stage ``(first_start, last_end)`` offsets in seconds."""
        with self._lock:
            return {
                stage: (round(first, 6), round(last, 6))
                for stage, (first, last) in self._windows.items()
            }
