"""Wall-clock accounting for the data plane.

The FM execution layer already reports modelled latency (summed vs
critical path) in ``result.fm_usage["execution"]``; :class:`StageTimer`
adds the *dataframe* side — how long each pipeline stage and the sandboxed
transform executions actually took — so FM time vs data-plane time is
visible in one report.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["StageTimer"]


class StageTimer:
    """Thread-safe accumulator of named wall-clock durations.

    ``timer.time("unary_stage")`` is a context manager; :meth:`snapshot`
    returns ``{name: {"seconds": total, "calls": n}}``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def time(self, stage: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._seconds[stage] = self._seconds.get(stage, 0.0) + elapsed
                self._calls[stage] = self._calls.get(stage, 0) + 1

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Accumulated totals per stage (seconds rounded to microseconds)."""
        with self._lock:
            return {
                stage: {
                    "seconds": round(self._seconds[stage], 6),
                    "calls": self._calls[stage],
                }
                for stage in self._seconds
            }
