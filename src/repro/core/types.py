"""Datatypes shared across the SMARTFEAT core."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "FeatureCandidate",
    "GeneratedFeature",
    "OperatorFamily",
    "RowCompletionPlan",
    "SourceSuggestion",
]


class OperatorFamily(enum.Enum):
    """The four operator families of Section 3.2."""

    UNARY = "unary"
    BINARY = "binary"
    HIGH_ORDER = "high_order"
    EXTRACTOR = "extractor"


@dataclass
class FeatureCandidate:
    """Operator-selector output: what feature to build, from what, and why.

    Mirrors the paper's three selector outputs — (i) the new feature name,
    (ii) the relevant columns, (iii) the feature description — plus the
    operator family and the realisation *kind* for extractors
    (``function`` / ``row_level`` / ``source``).
    """

    name: str
    columns: list[str]
    description: str
    family: OperatorFamily
    kind: str = "function"
    params: dict = field(default_factory=dict)


@dataclass
class GeneratedFeature:
    """A realised feature: provenance plus the executable transformation."""

    name: str
    family: OperatorFamily
    input_columns: list[str]
    description: str
    output_columns: list[str]
    source_code: str = ""
    fm_calls: int = 0


@dataclass
class SourceSuggestion:
    """Scenario 3 of Section 3.3: no function exists; suggest data sources."""

    name: str
    description: str
    sources: list[str]


@dataclass
class RowCompletionPlan:
    """Scenario 2 of Section 3.3 when the table is large: a preview of
    row-level completions plus the projected cost of completing every row,
    for the user to decide on.

    ``relevant_columns`` records which columns the selector deemed
    relevant, so executing the plan later does not have to re-infer them
    from the preview records."""

    name: str
    description: str
    preview: list[tuple[dict, str]]
    n_rows: int
    estimated_calls: int
    estimated_cost_usd: float
    estimated_latency_s: float
    relevant_columns: list[str] = field(default_factory=list)
