"""Feature-quality screens (Section 3.3, "Evaluating generated features").

After a transformation produces values, SMARTFEAT removes features that
are highly null, single-valued, or dummy expansions of high-cardinality
originals.  :func:`validate_output` applies those screens to a transform's
output and returns the surviving columns with per-column verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataframe import DataFrame, Series

__all__ = ["ValidationConfig", "ValidationReport", "validate_output"]


@dataclass(frozen=True)
class ValidationConfig:
    """Thresholds for the three screens.

    ``max_null_fraction``: reject columns with more missing than this.
    ``max_dummy_columns``: reject dummy expansions wider than this (the
    high-cardinality screen).
    ``reject_constant``: reject single-valued columns.
    """

    max_null_fraction: float = 0.3
    max_dummy_columns: int = 15
    reject_constant: bool = True


@dataclass
class ValidationReport:
    """Outcome of validating one transformation output."""

    accepted: dict[str, Series]
    rejected: dict[str, str]  # column -> reason

    @property
    def ok(self) -> bool:
        return bool(self.accepted)


def _check_column(series: Series, n_rows: int, config: ValidationConfig) -> str | None:
    """Return a rejection reason for one column, or None if it passes."""
    if len(series) != n_rows:
        return f"length {len(series)} does not match dataframe length {n_rows}"
    if n_rows == 0:
        return "empty dataframe"
    null_fraction = 1.0 - series.count() / n_rows
    if null_fraction > config.max_null_fraction:
        return f"highly null ({null_fraction:.0%} missing)"
    if config.reject_constant and series.nunique(dropna=False) <= 1:
        return "single-valued"
    return None


def validate_output(
    result: Series | DataFrame,
    n_rows: int,
    config: ValidationConfig | None = None,
    name_hint: str = "feature",
) -> ValidationReport:
    """Screen a transformation output (Series or multi-column DataFrame).

    DataFrame outputs wider than ``max_dummy_columns`` are rejected whole —
    the paper's screen against dummies of high-cardinality originals.
    Otherwise each column is screened independently, so a partially useful
    expansion keeps its good columns.
    """
    config = config or ValidationConfig()
    accepted: dict[str, Series] = {}
    rejected: dict[str, str] = {}
    if isinstance(result, Series):
        reason = _check_column(result, n_rows, config)
        if reason is None:
            accepted[result.name or name_hint] = result
        else:
            rejected[result.name or name_hint] = reason
        return ValidationReport(accepted, rejected)
    if len(result.columns) > config.max_dummy_columns:
        for column in result.columns:
            rejected[column] = (
                f"expansion of {len(result.columns)} columns exceeds the "
                f"high-cardinality limit ({config.max_dummy_columns})"
            )
        return ValidationReport(accepted, rejected)
    for column in result.columns:
        series = result[column]
        reason = _check_column(series, n_rows, config)
        if reason is None:
            accepted[column] = series
        else:
            rejected[column] = reason
    return ValidationReport(accepted, rejected)
