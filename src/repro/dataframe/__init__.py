"""Columnar dataframe substrate for the SMARTFEAT reproduction.

This package provides a small, pandas-compatible subset used by every other
layer of the repository.  The function generator (``repro.core``) emits
transformation code written against this API — ``df.apply(lambda row: ...,
axis=1)``, ``df.groupby(cols)[col].transform(func)``, ``get_dummies`` — so
the subset mirrors the pandas call signatures the paper's generated
functions rely on.

Design notes
------------
* Indexes are positional (``RangeIndex`` semantics).  Row-filtering
  operations such as :meth:`DataFrame.dropna` renumber rows; group-by
  ``transform`` re-aligns to the original row order internally.
* Numeric columns are ``float64``/``int64`` numpy arrays with ``NaN`` for
  missing values; everything else is stored as an ``object`` array with
  ``None`` for missing values.
"""

from repro.dataframe.series import Series
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import DataFrameGroupBy, SeriesGroupBy
from repro.dataframe.reshape import concat, cut, factorize, get_dummies, qcut
from repro.dataframe.io import read_csv

__all__ = [
    "DataFrame",
    "DataFrameGroupBy",
    "Series",
    "SeriesGroupBy",
    "concat",
    "cut",
    "factorize",
    "get_dummies",
    "qcut",
    "read_csv",
]
