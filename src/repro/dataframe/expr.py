"""Frozen transform expressions: the serving IR behind compiled FeaturePlans.

A fitted SMARTFEAT run's accepted features are generated ``def
transform(df)`` sources.  Serving replays them millions of times, where a
sandboxed ``exec`` per call is pure overhead — so each source form the
code generator emits (:mod:`repro.fm.codegen`) has a mirror here as a
JSON-safe expression node that evaluates through the same
Series/kernel operations the source would have hit, making replay
value- and dtype-identical to ``fit_transform``'s frame.

Two node families exist:

* **frozen** nodes (``col``/``add``/``cut``/``dict_map``/``group_lookup``
  …) are pure data — column references, constants, and frozen fit-time
  statistics — and are what a serialized plan contains;
* **fit** nodes (``fit_mean``/``fit_qcut``/``fit_group_table`` …) stand
  for statistics the source would recompute per call.  They exist only
  in compile-time templates: :func:`freeze_expr` resolves each one
  against the fitted frame into a frozen node, and
  :func:`validate_expr` rejects them in anything claiming to be a plan.

Evaluation deliberately routes through the public ``Series`` operations
(``where``/``map``/``fillna``/``apply`` on ufuncs, the ``cut``/``qcut``
reshape kernels, and the segmented group machinery) rather than raw
numpy — those carry the package's exact missingness and dtype-coercion
rules, which is what makes bit-identical replay provable.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dataframe import kernels as _kernels
from repro.dataframe import reshape as _reshape
from repro.dataframe.series import Series

__all__ = [
    "EXPR_OPS",
    "FIT_OPS",
    "ExprError",
    "evaluate_feature",
    "expr_columns",
    "freeze_expr",
    "is_frozen",
    "refreeze_group_table",
    "validate_expr",
]


class ExprError(Exception):
    """A transform expression cannot be frozen, validated, or evaluated."""


#: Unary ufuncs a frozen expression may apply.  Evaluation passes the
#: ufunc object itself to ``Series.apply`` — the same call shape the
#: generated ``.apply(np.log)`` source makes, so domain violations
#: (``log`` of a negative) produce the identical NaN/warning behaviour.
_UFUNCS: dict[str, np.ufunc] = {
    "log": np.log,
    "log1p": np.log1p,
    "log2": np.log2,
    "log10": np.log10,
    "exp": np.exp,
    "sqrt": np.sqrt,
    "abs": np.abs,
}

_ARITH = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "pow": lambda a, b: a ** b,
}

#: Frozen (serializable) node kinds.
EXPR_OPS = frozenset(
    {
        "col",
        "const",
        *_ARITH,
        "clip",
        "ufunc",
        "where_nonzero",
        "isna_int",
        "cut",
        "qcut_collapsed",
        "dict_map",
        "fillna",
        "str_len",
        "date_split",
        "dummies",
        "split_parts",
        "group_lookup",
    }
)

#: Compile-time-only node kinds; :func:`freeze_expr` resolves these.
FIT_OPS = frozenset(
    {
        "fit_mean",
        "fit_std_or1",
        "fit_min",
        "fit_span_or1",
        "fit_qcut",
        "fit_categories",
        "fit_group_table",
        "fit_split_outputs",
    }
)

#: Node kinds producing several named columns at once.
_MULTI_OUTPUT = frozenset({"date_split", "dummies", "split_parts"})

#: Child-expression slots a node may carry.
_CHILD_SLOTS = ("arg", "left", "right")


# ----------------------------------------------------------------------
# Validation / inspection
# ----------------------------------------------------------------------
def _walk(node: dict):
    yield node
    for slot in _CHILD_SLOTS:
        child = node.get(slot)
        if isinstance(child, dict):
            yield from _walk(child)


def validate_expr(node: Any) -> None:
    """Raise :class:`ExprError` unless *node* is a well-formed frozen tree."""
    if not isinstance(node, dict) or "op" not in node:
        raise ExprError(f"expression node must be a dict with an 'op' key, got {node!r}")
    for sub in _walk(node):
        if not isinstance(sub, dict) or "op" not in sub:
            raise ExprError(f"malformed expression node: {sub!r}")
        op = sub["op"]
        if op in FIT_OPS:
            raise ExprError(
                f"expression contains unfrozen fit-time node {op!r}; "
                f"plans must be frozen with freeze_expr() before serialization"
            )
        if op not in EXPR_OPS:
            raise ExprError(f"unknown expression op {op!r}")


def is_frozen(node: dict) -> bool:
    """True when no fit-time node remains anywhere in the tree."""
    return all(sub.get("op") not in FIT_OPS for sub in _walk(node))


def expr_columns(node: dict) -> list[str]:
    """Input columns the expression reads, in first-reference order."""
    seen: dict[str, None] = {}
    for sub in _walk(node):
        op = sub.get("op")
        if op == "col":
            seen.setdefault(sub["name"], None)
        elif op == "group_lookup" or op == "fit_group_table":
            for key in sub["keys"]:
                seen.setdefault(key, None)
            if "agg_col" in sub:
                seen.setdefault(sub["agg_col"], None)
        elif "column" in sub:
            seen.setdefault(sub["column"], None)
    return list(seen)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _col(frame, name: str) -> Series:
    """Column lookup that fails as :class:`ExprError`, not a bare KeyError.

    A serving frame missing a column a frozen expression reads must
    surface as a typed, per-feature failure the resilience layer can
    isolate — not as a ``KeyError`` thrown from deep inside a kernel.
    """
    if name not in frame:
        raise ExprError(f"expression reads column {name!r} absent from the frame")
    return frame[name]


def _operand(node: dict, frame) -> Any:
    """Evaluate an arithmetic operand: ``const`` → scalar, else Series.

    Scalar constants must stay plain Python numbers so the Series
    arithmetic takes the same scalar-broadcast path the generated source
    took with its literal/computed statistics.
    """
    if node["op"] == "const":
        return node["value"]
    return _evaluate(node, frame)


def _evaluate(node: dict, frame) -> Series:
    op = node["op"]
    if op == "col":
        return _col(frame, node["name"])
    if op in _ARITH:
        return _ARITH[op](_operand(node["left"], frame), _operand(node["right"], frame))
    if op == "clip":
        return _evaluate(node["arg"], frame).clip(node.get("lower"), node.get("upper"))
    if op == "ufunc":
        fn = node["fn"]
        if fn not in _UFUNCS:
            raise ExprError(f"unknown ufunc {fn!r}")
        return _evaluate(node["arg"], frame).apply(_UFUNCS[fn])
    if op == "where_nonzero":
        arg = _evaluate(node["arg"], frame)
        return arg.where(arg != 0)
    if op == "isna_int":
        return _col(frame, node["column"]).isna().astype(int)
    if op == "cut":
        return _reshape.cut(
            _col(frame, node["column"]),
            list(node["edges"]),
            labels=list(node["labels"]) if node.get("labels") is not None else None,
            right=node.get("right", True),
        )
    if op == "qcut_collapsed":
        return _eval_qcut_collapsed(_col(frame, node["column"]))
    if op == "dict_map":
        mapping = dict(zip(node["keys"], node["values"]))
        return _col(frame, node["column"]).map(mapping)
    if op == "fillna":
        return _evaluate(node["arg"], frame).fillna(node["value"])
    if op == "str_len":
        series = _col(frame, node["column"])
        fast = _kernels.str_lengths(series.values)
        if fast is not None:
            return Series._from_array(fast, series.name)
        return series.str.len()
    if op == "group_lookup":
        return _eval_group_lookup(node, frame)
    if op in _MULTI_OUTPUT:
        raise ExprError(f"multi-output op {op!r} must be evaluated via evaluate_feature()")
    if op == "const":
        raise ExprError("a bare constant is not a column expression")
    raise ExprError(f"unknown expression op {op!r}")


def _eval_qcut_collapsed(series: Series) -> Series:
    """Replay of degenerate ``qcut`` fits (all edges tied, or no data).

    Mirrors ``Series([0 if not isnan(v) else None])`` — present values
    collapse into the single bin, missing stays missing, and the
    all-missing case coerces to an object column of ``None``.
    """
    data = series._numeric()
    missing = np.isnan(data)
    if len(data) and missing.all():
        return Series._from_array(np.full(len(data), None, dtype=object), series.name)
    if not missing.any():
        return Series._from_array(np.zeros(len(data), dtype=np.int64), series.name)
    return Series._from_array(np.where(missing, np.nan, 0.0), series.name)


def _unbox(value: Any) -> Any:
    return value.item() if isinstance(value, np.generic) else value


def _eval_group_lookup(node: dict, frame) -> Series:
    """Broadcast a frozen per-group table along the batch's grouping.

    The fast path reuses the cached ``Series.grouping()`` encode through
    ``_GroupIndex`` — one stable sort (and, for string keys, one
    S-encode) per key column per batch, shared across every
    groupby-bearing feature in the plan — then looks each *segment* up
    once and broadcasts via the inverse permutation, exactly like the
    fitted ``transform`` did.  Unseen groups take ``fill``.
    """
    from repro.dataframe.groupby import _GroupIndex

    keys = node["keys"]
    single = len(keys) == 1
    table: dict = {}
    for row in node["table"]:
        table[row[0] if single else tuple(row[:-1])] = row[-1]
    fill = node.get("fill")
    if len(frame) == 0:
        return Series([])
    index = _GroupIndex(frame, keys)
    if index.fast:
        firsts, _ = index.first_last_positions()
        key_cols = [frame[k].values[firsts] for k in keys]
        if single:
            per = [table.get(_unbox(v), fill) for v in key_cols[0]]
        else:
            per = [
                table.get(tuple(_unbox(v) for v in tup), fill)
                for tup in zip(*key_cols)
            ]
        return _broadcast_per_group(per, index.inverse, node["value_kind"])
    # Hash-path grouping (missing/unorderable keys): per-row lookup keeps
    # the NaN-key semantics — NaN never equals a table key, so it fills.
    key_lists = [frame[k].tolist() for k in keys]
    values = [
        table.get(tup[0] if single else tup, fill) for tup in zip(*key_lists)
    ]
    return Series(values)


def _broadcast_per_group(per: list, inverse: np.ndarray, value_kind: str) -> Series:
    if value_kind == "object" or (
        value_kind == "int64" and any(v is None for v in per)
    ):
        arr = np.empty(len(per), dtype=object)
        for i, v in enumerate(per):
            arr[i] = v
        return Series(arr[inverse].tolist())
    if value_kind == "float64":
        arr = np.array(
            [np.nan if v is None else float(v) for v in per], dtype=np.float64
        )
        return Series._from_array(_kernels.match_coerce_float(arr[inverse]))
    arr = np.array(per, dtype=np.int64)
    return Series._from_array(arr[inverse])


def _eval_date_split(node: dict, frame) -> dict[str, Series]:
    series = _col(frame, node["column"])
    outputs = [(part, name) for part, name in node["outputs"]]
    parts = _kernels.iso_date_parts(series.values)
    if parts is not None and all(part in parts for part, _ in outputs):
        return {
            name: Series._from_array(parts[part].copy(), name)
            for part, name in outputs
        }
    accessor = series.dt
    return {name: getattr(accessor, part).rename(name) for part, name in outputs}


def _eval_dummies(node: dict, frame) -> dict[str, Series]:
    codes, uniques = _kernels.factorize_values(_col(frame, node["column"]).values)
    position = {u: j for j, u in enumerate(uniques)}
    out: dict[str, Series] = {}
    for category, name in zip(node["categories"], node["names"]):
        j = position.get(category, -2)  # -2 matches nothing, incl. missing (-1)
        out[name] = Series._from_array((codes == j).astype(np.int64), name)
    return out


def _split_parts_fast(values: np.ndarray, sep: str, names: list[str]):
    """Vectorized ``str.split`` via repeated ``np.char.partition``.

    Only the all-strings case (the common serve batch) qualifies; any
    missing value falls back to the per-row loop.  Each partition peels
    one piece: rows whose previous partition found no separator have no
    further pieces, matching ``pieces[i] if i < len(pieces) else None``.
    """
    if values.dtype != object or len(values) == 0:
        return None
    if not _kernels._all_strings(values):
        return None
    rest = values.astype("U")
    out: dict[str, Series] = {}
    has_piece = np.ones(len(rest), dtype=bool)
    for name in names:
        parts = np.char.partition(rest, sep)
        column = np.empty(len(rest), dtype=object)
        column[:] = np.char.strip(parts[:, 0]).tolist()
        if not has_piece.all():
            column[~has_piece] = None
        out[name] = Series._from_array(column, name)
        has_piece = has_piece & (parts[:, 1] != "")
        rest = parts[:, 2]
    return out


def _eval_split_parts(node: dict, frame) -> dict[str, Series]:
    sep, names = node["sep"], node["outputs"]
    fast = _split_parts_fast(_col(frame, node["column"]).values, sep, names)
    if fast is not None:
        return fast
    columns: list[list] = [[] for _ in names]
    for value in frame[node["column"]].tolist():
        if _kernels.is_missing_scalar(value):
            for lst in columns:
                lst.append(None)
            continue
        pieces = str(value).split(sep)
        for i, lst in enumerate(columns):
            lst.append(pieces[i].strip() if i < len(pieces) else None)
    return {name: Series(lst, name) for name, lst in zip(names, columns)}


def evaluate_feature(node: dict, frame) -> Series | dict[str, Series]:
    """Evaluate a frozen expression against *frame*.

    Single-column expressions return a :class:`Series`; the multi-output
    forms (``date_split``/``dummies``/``split_parts``) return an ordered
    ``{column name: Series}`` mapping.
    """
    op = node.get("op")
    if op == "date_split":
        return _eval_date_split(node, frame)
    if op == "dummies":
        return _eval_dummies(node, frame)
    if op == "split_parts":
        return _eval_split_parts(node, frame)
    return _evaluate(node, frame)


# ----------------------------------------------------------------------
# Freezing fit-time statistics
# ----------------------------------------------------------------------
def _const(value: Any) -> dict:
    if isinstance(value, np.generic):
        value = value.item()
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExprError(f"fit-time statistic is not numeric: {value!r}")
    return {"op": "const", "value": value}


def _freeze_qcut(node: dict, frame) -> dict:
    kind, edges = _reshape.qcut_params(frame[node["column"]], node["q"])
    if kind != "cut":
        return {"op": "qcut_collapsed", "column": node["column"]}
    labels = node.get("labels")
    if labels is not None:
        labels = list(labels)[: len(edges) - 1]
    return {
        "op": "cut",
        "column": node["column"],
        "edges": [float(e) for e in edges],
        "labels": labels,
        "right": True,
    }


def _freeze_categories(node: dict, frame) -> dict:
    _, uniques = _kernels.factorize_values(frame[node["column"]].values)
    prefix = node["prefix"]
    return {
        "op": "dummies",
        "column": node["column"],
        "categories": list(uniques),
        "names": [f"{prefix}_{cat}" for cat in uniques],
    }


def _freeze_group_table(node: dict, frame) -> dict:
    from repro.dataframe.groupby import (
        _GroupIndex,
        _segmented_name,
        _segmented_values,
    )

    keys, agg_col = node["keys"], node["agg_col"]
    op = _segmented_name(node["agg"])
    if op is None:
        raise ExprError(f"aggregate {node['agg']!r} has no segmented form")
    index = _GroupIndex(frame, keys)
    per = _segmented_values(
        index, frame[agg_col] if op != "size" else None, op, first_seen=True
    )
    if per is None:
        raise ExprError(
            f"groupby over {keys!r} needs the hash path at fit time; cannot freeze"
        )
    kind = per.dtype.kind
    value_kind = "int64" if kind in "iu" else "float64" if kind == "f" else "object"
    single = len(keys) == 1
    table = []
    for label, value in zip(index.labels(), per):
        parts = [label] if single else list(label)
        table.append([*(_unbox(p) for p in parts), _unbox(value)])
    return {
        "op": "group_lookup",
        "keys": list(keys),
        "agg": node["agg"],
        # The aggregated column is not needed to replay the frozen table,
        # but an out-of-core refresh pass re-aggregates from it — keep it.
        "agg_col": agg_col,
        "table": table,
        "value_kind": value_kind,
        "fill": None,
    }


def refreeze_group_table(node: dict, labels: list, per: np.ndarray) -> None:
    """Replace a frozen ``group_lookup`` table in place from per-group values.

    *labels*/*per* come from an out-of-core aggregation over the full
    shard stream (:class:`repro.dataframe.groupby.StreamingGroupAgg` in
    first-seen order); the rebuilt ``table``/``value_kind`` follow the
    same encoding rules as the fit-time freeze, so the node replays
    through the identical broadcast path.
    """
    if node.get("op") != "group_lookup":
        raise ExprError(f"cannot refreeze node op {node.get('op')!r}")
    kind = per.dtype.kind
    node["value_kind"] = (
        "int64" if kind in "iu" else "float64" if kind == "f" else "object"
    )
    single = len(node["keys"]) == 1
    table = []
    for label, value in zip(labels, per):
        parts = [label] if single else list(label)
        table.append([*(_unbox(p) for p in parts), _unbox(value)])
    node["table"] = table


def _freeze_split_outputs(node: dict, frame) -> dict:
    column, sep = node["column"], node["sep"]
    width = 0
    for value in frame[column].tolist():
        if not _kernels.is_missing_scalar(value):
            width = max(width, len(str(value).split(sep)))
    if width == 0:
        raise ExprError(f"split_parts saw no present values in {column!r} at fit time")
    names = []
    for i in range(width):
        # Mirrors the generated rename: parts 0/1 get friendly names, the
        # rest keep the stringified positional name the frame gave them.
        names.append(f"{column}_part{i}" if i < 2 else str(i))
    return {"op": "split_parts", "column": column, "sep": sep, "outputs": names}


def _freeze_stat(node: dict, frame) -> dict:
    series = frame[node["column"]]
    op = node["op"]
    if op == "fit_mean":
        return _const(series.mean())
    if op == "fit_std_or1":
        return _const(series.std() or 1.0)
    if op == "fit_min":
        return _const(series.min())
    lo, hi = series.min(), series.max()
    if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
        raise ExprError(f"column {node['column']!r} has no numeric range to freeze")
    return _const((hi - lo) or 1.0)


_FIT_FREEZERS = {
    "fit_mean": _freeze_stat,
    "fit_std_or1": _freeze_stat,
    "fit_min": _freeze_stat,
    "fit_span_or1": _freeze_stat,
    "fit_qcut": _freeze_qcut,
    "fit_categories": _freeze_categories,
    "fit_group_table": _freeze_group_table,
    "fit_split_outputs": _freeze_split_outputs,
}


def freeze_expr(node: dict, frame) -> dict:
    """Resolve every fit-time node against the fitted *frame*.

    Returns a frozen tree safe to serialize; raises :class:`ExprError`
    when a statistic cannot be captured (the compiler then falls back to
    carrying the sandbox source).
    """
    op = node.get("op")
    if op in _FIT_FREEZERS:
        return _FIT_FREEZERS[op](node, frame)
    out = dict(node)
    for slot in _CHILD_SLOTS:
        child = out.get(slot)
        if isinstance(child, dict):
            out[slot] = freeze_expr(child, frame)
    return out
