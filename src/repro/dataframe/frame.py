"""Two-dimensional column store: the :class:`DataFrame` type.

The subset implemented here matches the call surface that SMARTFEAT's
function generator emits (``df.apply(..., axis=1)``, boolean masking,
``df.groupby``, column assignment) plus what the evaluation harness needs
(``describe``, ``select_dtypes``, ``corr``, sampling, splitting).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.dataframe.series import Series, _is_missing_scalar

__all__ = ["DataFrame", "Row"]


class Row(Mapping):
    """A single row view used by ``DataFrame.apply(..., axis=1)``.

    Supports both mapping access (``row['Age']``) and attribute access
    (``row.Age``), mirroring how generated lambdas address columns.
    """

    __slots__ = ("_data",)

    def __init__(self, data: dict[str, Any]) -> None:
        object.__setattr__(self, "_data", data)

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __getattr__(self, key: str) -> Any:
        try:
            return self._data[key]
        except KeyError as exc:  # pragma: no cover - defensive
            raise AttributeError(key) from exc

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def to_dict(self) -> dict[str, Any]:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Row({self._data!r})"


class _ILocIndexer:
    """Positional row indexer (``df.iloc[3]``, ``df.iloc[1:4]``, ``df.iloc[[0, 2]]``)."""

    def __init__(self, frame: "DataFrame") -> None:
        self._frame = frame

    def __getitem__(self, key: Any):
        if isinstance(key, int):
            return Row({c: self._frame[c][key] for c in self._frame.columns})
        if isinstance(key, slice):
            return self._frame._take_positions(range(*key.indices(len(self._frame))))
        return self._frame._take_positions(list(key))


class DataFrame:
    """An ordered mapping of column name → :class:`Series`, all equal length.

    Parameters
    ----------
    data:
        A mapping of column name to 1-D data, a list of row dicts, or
        another DataFrame (copied).
    columns:
        Optional column ordering / selection applied after construction.
    """

    def __init__(self, data: Any = None, columns: Sequence[str] | None = None) -> None:
        self._columns: dict[str, Series] = {}
        if data is None:
            data = {}
        if isinstance(data, DataFrame):
            for name in data.columns:
                self._columns[name] = data[name].copy()
        elif isinstance(data, Mapping):
            for name, values in data.items():
                self._columns[str(name)] = (
                    values.rename(str(name)) if isinstance(values, Series) else Series(values, str(name))
                )
        elif isinstance(data, list) and data and isinstance(data[0], Mapping):
            keys: dict[str, None] = {}
            for row in data:
                for k in row:
                    keys.setdefault(str(k), None)
            for k in keys:
                self._columns[k] = Series([row.get(k) for row in data], k)
        elif isinstance(data, list) and not data:
            pass
        else:
            raise TypeError(f"cannot construct DataFrame from {type(data).__name__}")
        self._check_lengths()
        if columns is not None:
            missing = [c for c in columns if c not in self._columns]
            if missing:
                raise KeyError(f"columns not found: {missing}")
            self._columns = {c: self._columns[c] for c in columns}

    def _check_lengths(self) -> None:
        lengths = {name: len(s) for name, s in self._columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"column length mismatch: {lengths}")

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names in order."""
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    @property
    def empty(self) -> bool:
        return len(self) == 0 or not self._columns

    @property
    def dtypes(self) -> dict[str, np.dtype]:
        return {name: s.dtype for name, s in self._columns.items()}

    @property
    def iloc(self) -> _ILocIndexer:
        return _ILocIndexer(self)

    @property
    def index(self) -> range:
        return range(len(self))

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self):
        return iter(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataFrame(shape={self.shape}, columns={self.columns})"

    def __getitem__(self, key: Any):
        if isinstance(key, str):
            if key not in self._columns:
                raise KeyError(key)
            return self._columns[key]
        if isinstance(key, list):
            return DataFrame({name: self._columns[name] for name in key})
        if isinstance(key, Series) and key.dtype == np.dtype(bool):
            return self._take_mask(key.to_numpy())
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return self._take_mask(key)
        if isinstance(key, slice):
            return self._take_positions(range(*key.indices(len(self))))
        raise TypeError(f"invalid DataFrame index: {key!r}")

    def __setitem__(self, key: str, value: Any) -> None:
        if not isinstance(key, str):
            raise TypeError("column names must be strings")
        if isinstance(value, Series):
            series = value.rename(key)
        elif np.isscalar(value) or value is None:
            series = Series.full(max(len(self), 0) or 0, value, key)
            if len(self) and len(series) != len(self):
                series = Series.full(len(self), value, key)
        else:
            series = Series(value, key)
        if self._columns and len(series) != len(self):
            raise ValueError(
                f"cannot assign column of length {len(series)} to DataFrame of length {len(self)}"
            )
        self._columns[key] = series

    def _take_mask(self, mask: np.ndarray) -> "DataFrame":
        if len(mask) != len(self):
            raise ValueError("boolean mask length mismatch")
        return DataFrame({name: Series._from_array(s.values[mask], name) for name, s in self._columns.items()})

    def _take_positions(self, positions: Iterable[int]) -> "DataFrame":
        idx = np.fromiter(positions, dtype=np.int64)
        return DataFrame(
            {name: Series._from_array(s.values[idx], name) for name, s in self._columns.items()}
        )

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------
    def copy(self) -> "DataFrame":
        return DataFrame(self)

    def column_view(self, columns: Sequence[str]) -> "DataFrame":
        """A frame over the *same* :class:`Series` objects, zero copies.

        The stage scheduler uses this to hand each pipeline stage the
        column subset its declared reads cover: building the view costs
        one dict, not one array copy per column.  The view shares data
        with this frame — treat it as read-only (adding columns to the
        view is safe and does not affect this frame; mutating shared
        Series values would).
        """
        missing = [c for c in columns if c not in self._columns]
        if missing:
            raise KeyError(f"columns not found: {missing}")
        out = DataFrame()
        for name in columns:
            out._columns[name] = self._columns[name]
        return out

    def drop(
        self,
        columns: str | Sequence[str] | None = None,
        errors: str = "raise",
        inplace: bool = False,
    ) -> "DataFrame | None":
        """Remove *columns* (a name or list of names).

        Returns a copy without the columns, or — with ``inplace=True`` —
        removes them from this frame without copying the others and
        returns None (matching pandas).
        """
        if columns is None:
            return None if inplace else self.copy()
        names = [columns] if isinstance(columns, str) else list(columns)
        missing = [n for n in names if n not in self._columns]
        if missing and errors == "raise":
            raise KeyError(f"columns not found: {missing}")
        if inplace:
            for name in names:
                self._columns.pop(name, None)
            return None
        keep = [c for c in self.columns if c not in set(names)]
        return self[keep].copy()

    def rename(self, columns: Mapping[str, str]) -> "DataFrame":
        """Return a copy with columns renamed per the *columns* mapping."""
        return DataFrame(
            {columns.get(name, name): s.copy() for name, s in self._columns.items()}
        )

    def assign(self, **new_columns: Any) -> "DataFrame":
        """Return a copy with new/updated columns.

        Callables receive the intermediate DataFrame, matching pandas.
        """
        out = self.copy()
        for name, value in new_columns.items():
            out[name] = value(out) if callable(value) else value
        return out

    def head(self, n: int = 5) -> "DataFrame":
        return self._take_positions(range(min(n, len(self))))

    def tail(self, n: int = 5) -> "DataFrame":
        return self._take_positions(range(max(len(self) - n, 0), len(self)))

    def sample(self, n: int | None = None, frac: float | None = None, seed: int = 0) -> "DataFrame":
        """Sample rows without replacement, deterministically under *seed*."""
        if n is None:
            n = int(round((frac or 1.0) * len(self)))
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=min(n, len(self)), replace=False)
        return self._take_positions(np.sort(idx))

    def reset_index(self, drop: bool = True) -> "DataFrame":
        """Positional indexes make this a copy; kept for pandas compatibility."""
        return self.copy()

    def sort_values(self, by: str | Sequence[str], ascending: bool = True) -> "DataFrame":
        """Return a copy sorted by one or more columns (stable)."""
        names = [by] if isinstance(by, str) else list(by)
        order = np.arange(len(self))
        for name in reversed(names):
            series = self._columns[name]
            keys = series.values[order]
            if series.dtype == object:
                keys = np.array([("" if v is None else str(v)) for v in keys])
            order = order[np.argsort(keys, kind="stable")]
        if not ascending:
            order = order[::-1]
        return self._take_positions(order)

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def isna(self) -> "DataFrame":
        return DataFrame({name: s.isna() for name, s in self._columns.items()})

    def dropna(self, subset: Sequence[str] | None = None) -> "DataFrame":
        """Drop rows containing any missing value (optionally only in *subset*)."""
        names = list(subset) if subset is not None else self.columns
        mask = np.zeros(len(self), dtype=bool)
        for name in names:
            mask |= self._columns[name].isna().to_numpy()
        return self._take_mask(~mask)

    def fillna(self, value: Any) -> "DataFrame":
        """Fill missing values: scalar fills all columns, dict per column."""
        if isinstance(value, Mapping):
            out = self.copy()
            for name, fill in value.items():
                if name in out._columns:
                    out._columns[name] = out._columns[name].fillna(fill)
            return out
        return DataFrame({name: s.fillna(value) for name, s in self._columns.items()})

    # ------------------------------------------------------------------
    # Row-wise application and iteration
    # ------------------------------------------------------------------
    def row_tuples(self, columns: Sequence[str] | None = None):
        """Iterate row value tuples over *columns* (default: all columns).

        Each column is materialised once up front; the per-row cost is one
        ``zip`` step — no dict, no per-row indexing.  This is the substrate
        for :meth:`iterrows`/:meth:`itertuples` and the batched row-prompt
        builders in the core pipeline.
        """
        names = list(columns) if columns is not None else self.columns
        return names, zip(*[self._columns[n].tolist() for n in names])

    def apply(self, func: Callable, axis: int = 0) -> Series:
        """Apply *func* along an axis.

        ``axis=1`` calls *func* once per :class:`Row` and returns a Series —
        the form used by generated ``df.apply(lambda row: ..., axis=1)``
        transformations.  ``axis=0`` applies to each column Series and
        returns a dict of results.
        """
        if axis == 1:
            names, rows = self.row_tuples()
            out = [func(Row(dict(zip(names, vals)))) for vals in rows]
            return Series(out)
        return {name: func(s) for name, s in self._columns.items()}  # type: ignore[return-value]

    def iterrows(self):
        """Yield ``(position, Row)`` pairs."""
        names, rows = self.row_tuples()
        for i, vals in enumerate(rows):
            yield i, Row(dict(zip(names, vals)))

    def itertuples(self):
        """Yield plain dicts per row (positional stand-in for namedtuples)."""
        names, rows = self.row_tuples()
        for vals in rows:
            yield dict(zip(names, vals))

    def to_dict(self, orient: str = "list") -> Any:
        """Export as ``{col: [values]}`` (``orient='list'``) or list of dicts."""
        if orient == "list":
            return {name: s.tolist() for name, s in self._columns.items()}
        if orient == "records":
            names, rows = self.row_tuples()
            return [dict(zip(names, vals)) for vals in rows]
        raise ValueError(f"unsupported orient: {orient!r}")

    def to_numpy(self, dtype: Any = np.float64) -> np.ndarray:
        """Stack all columns into a 2-D array (numeric cast by default)."""
        if not self._columns:
            return np.empty((0, 0), dtype=dtype)
        cols = [s._numeric() if dtype in (float, np.float64) else s.to_numpy(dtype) for s in self._columns.values()]
        return np.column_stack(cols).astype(dtype)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def select_dtypes(self, include: str) -> "DataFrame":
        """Select columns by kind: ``'number'``, ``'object'`` or ``'bool'``."""
        if include == "number":
            names = [n for n, s in self._columns.items() if s.dtype.kind in "if"]
        elif include == "object":
            names = [n for n, s in self._columns.items() if s.dtype == object]
        elif include == "bool":
            names = [n for n, s in self._columns.items() if s.dtype.kind == "b"]
        else:
            raise ValueError(f"unsupported dtype selector: {include!r}")
        return self[names]

    def numeric_columns(self) -> list[str]:
        """Names of int/float/bool columns."""
        return [n for n, s in self._columns.items() if s.dtype.kind in "ifb"]

    def categorical_columns(self) -> list[str]:
        """Names of object-dtype columns."""
        return [n for n, s in self._columns.items() if s.dtype == object]

    def nunique(self) -> dict[str, int]:
        return {name: s.nunique() for name, s in self._columns.items()}

    def describe(self) -> "DataFrame":
        """Summary statistics for numeric columns (count/mean/std/min/quartiles/max)."""
        stats = ["count", "mean", "std", "min", "25%", "50%", "75%", "max"]
        out: dict[str, list[float]] = {"stat": stats}
        for name in self.numeric_columns():
            s = self._columns[name]
            out[name] = [
                float(s.count()),
                s.mean(),
                s.std(),
                s.min(),
                s.quantile(0.25),
                s.quantile(0.50),
                s.quantile(0.75),
                s.max(),
            ]
        return DataFrame(out)

    def corr(self) -> "DataFrame":
        """Pearson correlation matrix over numeric columns."""
        names = self.numeric_columns()
        out: dict[str, list[float]] = {"column": list(names)}
        for a in names:
            out[a] = [self._columns[a].corr(self._columns[b]) for b in names]
        return DataFrame(out)

    def mean(self) -> dict[str, float]:
        return {name: self._columns[name].mean() for name in self.numeric_columns()}

    # ------------------------------------------------------------------
    # Grouping and merging
    # ------------------------------------------------------------------
    def groupby(self, by: str | Sequence[str]):
        """Group rows by one or more key columns; see :class:`DataFrameGroupBy`."""
        from repro.dataframe.groupby import DataFrameGroupBy

        keys = [by] if isinstance(by, str) else list(by)
        missing = [k for k in keys if k not in self._columns]
        if missing:
            raise KeyError(f"groupby columns not found: {missing}")
        return DataFrameGroupBy(self, keys)

    def merge(self, other: "DataFrame", on: str, how: str = "left") -> "DataFrame":
        """Hash join with *other* on column *on* (``left`` or ``inner``)."""
        if how not in ("left", "inner"):
            raise ValueError(f"unsupported join type: {how!r}")
        right_rows: dict[Any, list[int]] = {}
        right_key = other[on].tolist()
        for j, key in enumerate(right_key):
            right_rows.setdefault(key, []).append(j)
        right_cols = [c for c in other.columns if c != on]
        left_idx: list[int] = []
        right_idx: list[int | None] = []
        for i, key in enumerate(self[on].tolist()):
            matches = right_rows.get(key, [])
            if matches:
                for j in matches:
                    left_idx.append(i)
                    right_idx.append(j)
            elif how == "left":
                left_idx.append(i)
                right_idx.append(None)
        data: dict[str, list] = {}
        for name in self.columns:
            values = self._columns[name].tolist()
            data[name] = [values[i] for i in left_idx]
        for name in right_cols:
            values = other[name].tolist()
            data[name] = [None if j is None else values[j] for j in right_idx]
        return DataFrame(data)

    # ------------------------------------------------------------------
    # Comparison helpers (used in tests)
    # ------------------------------------------------------------------
    def equals(self, other: "DataFrame") -> bool:
        """Structural equality: same columns, same values (NaN == NaN)."""
        if self.columns != other.columns or len(self) != len(other):
            return False
        for name in self.columns:
            for a, b in zip(self._columns[name].tolist(), other[name].tolist()):
                if _is_missing_scalar(a) and _is_missing_scalar(b):
                    continue
                if a != b:
                    return False
        return True

    def to_string(self, max_rows: int = 10) -> str:
        """Render a fixed-width text preview of the frame."""
        names = self.columns
        rows = [[str(v) for v in row.to_dict().values()] for _, row in self.head(max_rows).iterrows()]
        widths = [
            max(len(name), *(len(r[i]) for r in rows)) if rows else len(name)
            for i, name in enumerate(names)
        ]
        header = "  ".join(name.ljust(w) for name, w in zip(names, widths))
        lines = [header, "  ".join("-" * w for w in widths)]
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if len(self) > max_rows:
            lines.append(f"... ({len(self)} rows total)")
        return "\n".join(lines)
