"""Group-by machinery: ``df.groupby(keys)[col].transform(func)`` and friends.

The high-order operator in SMARTFEAT emits exactly the pandas idiom
``df.groupby(groupby_col)[agg_col].transform(function)``; this module
implements that surface plus the aggregate forms the baselines use.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.dataframe.series import Series

__all__ = ["DataFrameGroupBy", "SeriesGroupBy"]

_NAMED_AGGS: dict[str, Callable[[Series], Any]] = {
    "mean": lambda s: s.mean(),
    "avg": lambda s: s.mean(),
    "average": lambda s: s.mean(),
    "sum": lambda s: s.sum(),
    "min": lambda s: s.min(),
    "max": lambda s: s.max(),
    "median": lambda s: s.median(),
    "std": lambda s: s.std(),
    "var": lambda s: s.var(),
    "count": lambda s: s.count(),
    "size": lambda s: len(s),
    "nunique": lambda s: s.nunique(),
    "mode": lambda s: s.mode(),
    "first": lambda s: s[0] if len(s) else None,
    "last": lambda s: s[len(s) - 1] if len(s) else None,
}


def resolve_aggregator(func: str | Callable) -> Callable[[Series], Any]:
    """Translate a pandas-style aggregate name or callable into a reducer.

    Callables are wrapped so they may accept either a :class:`Series` or a
    plain numpy array — generated code uses both styles.
    """
    if isinstance(func, str):
        name = func.strip().lower()
        if name not in _NAMED_AGGS:
            raise ValueError(
                f"unknown aggregate function {func!r}; expected one of {sorted(_NAMED_AGGS)}"
            )
        return _NAMED_AGGS[name]

    def _call(series: Series) -> Any:
        try:
            return func(series)
        except TypeError:
            return func(series.to_numpy())

    return _call


class _GroupIndex:
    """Shared grouping of row positions by key tuple."""

    def __init__(self, frame, keys: Sequence[str]) -> None:
        self.keys = list(keys)
        key_lists = [frame[k].tolist() for k in self.keys]
        groups: dict[Any, list[int]] = {}
        for i, key in enumerate(zip(*key_lists)):
            label = key[0] if len(key) == 1 else key
            groups.setdefault(label, []).append(i)
        self.groups = groups
        self.n_rows = len(frame)


class DataFrameGroupBy:
    """Result of ``df.groupby(keys)``; index with a column to aggregate it."""

    def __init__(self, frame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._index = _GroupIndex(frame, keys)

    @property
    def groups(self) -> dict[Any, list[int]]:
        """Mapping of group label → list of row positions."""
        return self._index.groups

    def __len__(self) -> int:
        return len(self._index.groups)

    def __getitem__(self, column: str) -> "SeriesGroupBy":
        if column not in self._frame.columns:
            raise KeyError(column)
        return SeriesGroupBy(self._frame[column], self._index)

    def size(self):
        """Per-group row counts as a DataFrame of keys + ``size``."""
        return self._agg_frame({"size": lambda rows, col=None: len(rows)}, None)

    def agg(self, spec: dict[str, str | Callable]):
        """Aggregate several columns at once: ``{column: func}`` → DataFrame."""
        from repro.dataframe.frame import DataFrame

        out: dict[str, list] = {k: [] for k in self._index.keys}
        for col in spec:
            out[col] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            for col, func in spec.items():
                reducer = resolve_aggregator(func)
                sub = Series._from_array(self._frame[col].values[np.asarray(rows)], col)
                out[col].append(reducer(sub))
        return DataFrame(out)

    def _agg_frame(self, spec: dict[str, Callable], column: str | None):
        from repro.dataframe.frame import DataFrame

        out: dict[str, list] = {k: [] for k in self._index.keys}
        for name in spec:
            out[name] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            for name, func in spec.items():
                out[name].append(func(rows))
        return DataFrame(out)


class SeriesGroupBy:
    """A single column grouped by the parent frame's keys."""

    def __init__(self, series: Series, index: _GroupIndex) -> None:
        self._series = series
        self._index = index

    def transform(self, func: str | Callable) -> Series:
        """Per-group reduce then broadcast back to original row order.

        This is the exact call emitted by the high-order operator:
        ``df.groupby(gcols)[acol].transform('mean')``.
        """
        reducer = resolve_aggregator(func)
        out = np.empty(self._index.n_rows, dtype=object)
        for rows in self._index.groups.values():
            idx = np.asarray(rows)
            sub = Series._from_array(self._series.values[idx], self._series.name)
            out[idx] = reducer(sub)
        return Series(out.tolist(), self._series.name)

    def agg(self, func: str | Callable):
        """Per-group reduce; returns a DataFrame of keys + aggregated value."""
        from repro.dataframe.frame import DataFrame

        reducer = resolve_aggregator(func)
        out: dict[str, list] = {k: [] for k in self._index.keys}
        name = self._series.name or "value"
        out[name] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            idx = np.asarray(rows)
            sub = Series._from_array(self._series.values[idx], self._series.name)
            out[name].append(reducer(sub))
        return DataFrame(out)

    def mean(self):
        return self.agg("mean")

    def sum(self):
        return self.agg("sum")

    def max(self):
        return self.agg("max")

    def min(self):
        return self.agg("min")

    def count(self):
        return self.agg("count")
