"""Group-by machinery: ``df.groupby(keys)[col].transform(func)`` and friends.

The high-order operator in SMARTFEAT emits exactly the pandas idiom
``df.groupby(groupby_col)[agg_col].transform(function)``; this module
implements that surface plus the aggregate forms the baselines use.

Grouping is vectorised: key columns are factorised
(:func:`repro.dataframe.kernels.factorize_values`), multi-key groups are
combined by mixed-radix coding, and the built-in aggregations (``sum`` /
``mean`` / ``min`` / ``max`` / ``count`` / ``size`` / ``first`` /
``last``) run as sort-based segmented reductions
(:func:`repro.dataframe.kernels.segmented_agg`) instead of per-group
Python loops.  Callable specs, non-numeric reductions, and frames with
missing key values keep the original per-group path — whose semantics
(first-seen group order, every NaN key its own group) the fast path
reproduces exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.dataframe import kernels as _kernels
from repro.dataframe.series import Series

__all__ = ["DataFrameGroupBy", "SeriesGroupBy"]

_NAMED_AGGS: dict[str, Callable[[Series], Any]] = {
    "mean": lambda s: s.mean(),
    "avg": lambda s: s.mean(),
    "average": lambda s: s.mean(),
    "sum": lambda s: s.sum(),
    "min": lambda s: s.min(),
    "max": lambda s: s.max(),
    "median": lambda s: s.median(),
    "std": lambda s: s.std(),
    "var": lambda s: s.var(),
    "count": lambda s: s.count(),
    "size": lambda s: len(s),
    "nunique": lambda s: s.nunique(),
    "mode": lambda s: s.mode(),
    "first": lambda s: s[0] if len(s) else None,
    "last": lambda s: s[len(s) - 1] if len(s) else None,
}

#: Canonical segmented-reduction name per aggregate alias, where one exists.
_SEGMENTED_NAMES = {
    "mean": "mean",
    "avg": "mean",
    "average": "mean",
    "sum": "sum",
    "min": "min",
    "max": "max",
    "count": "count",
    "size": "size",
    "first": "first",
    "last": "last",
}


def resolve_aggregator(func: str | Callable) -> Callable[[Series], Any]:
    """Translate a pandas-style aggregate name or callable into a reducer.

    Callables are wrapped so they may accept either a :class:`Series` or a
    plain numpy array — generated code uses both styles.
    """
    if isinstance(func, str):
        name = func.strip().lower()
        if name not in _NAMED_AGGS:
            raise ValueError(
                f"unknown aggregate function {func!r}; expected one of {sorted(_NAMED_AGGS)}"
            )
        return _NAMED_AGGS[name]

    def _call(series: Series) -> Any:
        try:
            return func(series)
        except TypeError:
            return func(series.to_numpy())

    return _call


def _segmented_name(func: str | Callable) -> str | None:
    """The segmented-reduction name for *func*, or ``None`` for the loop path."""
    if not isinstance(func, str):
        return None
    return _SEGMENTED_NAMES.get(func.strip().lower())


class _GroupIndex:
    """Shared grouping of row positions by key tuple.

    The fast path holds one stable sort of the key column(s): ``inverse``
    maps each row to its group segment (sort order), ``order``/``starts``
    delimit the segments.  First-seen group order — the hash path's
    observable ordering for labels, ``agg`` rows, and :attr:`groups` — is
    recovered lazily from each segment's first row position.  Frames with
    missing or unorderable key values build the legacy hash grouping
    directly, which also defines the semantics (each NaN key its own
    group, ``None`` a single group).
    """

    def __init__(self, frame, keys: Sequence[str]) -> None:
        self.keys = list(keys)
        self.n_rows = len(frame)
        self._frame = frame
        self._groups: dict[Any, list[int]] | None = None
        self._labels: list | None = None
        self._first_to_sorted: np.ndarray | None = None
        self.fast = False
        self.n_groups = 0
        self._build()

    def _build(self) -> None:
        # Per-column groupings come from Series.grouping(), which caches
        # the stable sort (and the string S-encode step feeding it) on
        # the column — repeated group-bys over the same key, the
        # high-order operator's hot pattern, skip straight to the
        # segment arrays.  Only the multi-key radix combine below is
        # recomputed per group-by.
        grouped = self._frame[self.keys[0]].grouping()
        if grouped is None:
            self._build_legacy()
            return
        for key in self.keys[1:]:
            nxt = self._frame[key].grouping()
            if nxt is None:
                self._build_legacy()
                return
            # Pairwise mixed-radix combine, re-grouped each step so the
            # codes stay < n_rows² regardless of the key count.
            combined = grouped[2] * np.int64(len(nxt[1])) + nxt[2]
            grouped = _kernels.sorted_grouping(combined)
        self.order, self.starts, self.inverse = grouped
        self.n_groups = len(self.starts)
        self.fast = True

    def _build_legacy(self) -> None:
        key_lists = [self._frame[k].tolist() for k in self.keys]
        groups: dict[Any, list[int]] = {}
        for i, key in enumerate(zip(*key_lists)):
            label = key[0] if len(key) == 1 else key
            groups.setdefault(label, []).append(i)
        self._groups = groups

    def first_last_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Row position of each segment's first and last member (sort order)."""
        if self.n_groups == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        ends = np.append(self.starts[1:], self.n_rows) - 1
        # The sort is stable, so segment starts are first occurrences.
        return self.order[self.starts], self.order[ends]

    def first_seen_order(self) -> np.ndarray:
        """Segment ids ordered by first occurrence (the hash-path order)."""
        if self._first_to_sorted is None:
            firsts, _ = self.first_last_positions()
            self._first_to_sorted = np.argsort(firsts, kind="stable")
        return self._first_to_sorted

    def labels(self) -> list:
        """Group labels (scalars, or key tuples) in first-seen order."""
        if self._labels is None:
            if not self.fast:
                self._labels = list(self.groups)
            else:
                firsts, _ = self.first_last_positions()
                rows = firsts[self.first_seen_order()]
                columns = []
                for key in self.keys:
                    values = self._frame[key].values[rows]
                    columns.append(
                        [v.item() if isinstance(v, np.generic) else v for v in values]
                    )
                if len(columns) == 1:
                    self._labels = columns[0]
                else:
                    self._labels = [tuple(vals) for vals in zip(*columns)]
        return self._labels

    @property
    def groups(self) -> dict[Any, list[int]]:
        """Mapping of group label → list of row positions (lazy on fast path)."""
        if self._groups is None:
            chunks = np.split(self.order, self.starts[1:])
            first_seen = self.first_seen_order()
            self._groups = {
                label: chunks[seg].tolist()
                for label, seg in zip(self.labels(), first_seen)
            }
        return self._groups


def _segmented_transform(
    index: _GroupIndex, series: Series, op: str
) -> Series | None:
    """Vectorised per-group reduce + broadcast, or ``None`` for the loop path."""
    per_segment = _segmented_values(index, series, op, first_seen=False)
    if per_segment is None:
        return None
    out = per_segment[index.inverse]
    if out.dtype == object:
        # first/last of an object column can be all-numeric: re-coerce
        # exactly like the loop path's Series(out.tolist()).
        return Series(out.tolist(), series.name)
    return Series._from_array(_kernels.match_coerce_float(out), series.name)


#: Placeholder for ops (``size``) that reduce positions, not values.
_NO_VALUES = np.empty(0, dtype=np.float64)


def _segmented_values(
    index: _GroupIndex, series: Series | None, op: str, first_seen: bool = True
) -> np.ndarray | None:
    """One value per group for a built-in aggregation, or ``None``.

    ``first_seen=True`` orders the result like the hash path's group
    iteration (what ``agg`` rows need); ``False`` keeps sort-segment
    order (what a broadcast through ``inverse`` needs).
    """
    if not index.fast or index.n_rows == 0:
        return None
    out = _segmented_sorted(index, series, op)
    if out is None or not first_seen:
        return out
    return out[index.first_seen_order()]


def _segmented_sorted(
    index: _GroupIndex, series: Series | None, op: str
) -> np.ndarray | None:
    """Per-segment aggregation in sort order (*series* unused for ``size``)."""
    if op == "size":
        return _kernels.segmented_agg(
            "size", _NO_VALUES, index.order, index.starts
        )
    if op in ("first", "last"):
        firsts, lasts = index.first_last_positions()
        return series.values[firsts if op == "first" else lasts]
    if op == "count":
        from repro.dataframe.series import _isna_array

        present = (~_isna_array(series.values)).astype(np.int64)
        return np.add.reduceat(present[index.order], index.starts)
    if series.dtype.kind not in "ifb":
        return None
    return _kernels.segmented_agg(op, series._numeric(), index.order, index.starts)


class DataFrameGroupBy:
    """Result of ``df.groupby(keys)``; index with a column to aggregate it."""

    def __init__(self, frame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._index = _GroupIndex(frame, keys)

    @property
    def groups(self) -> dict[Any, list[int]]:
        """Mapping of group label → list of row positions."""
        return self._index.groups

    def __len__(self) -> int:
        return self._index.n_groups if self._index.fast else len(self._index.groups)

    def __getitem__(self, column: str) -> "SeriesGroupBy":
        if column not in self._frame.columns:
            raise KeyError(column)
        return SeriesGroupBy(self._frame[column], self._index)

    def size(self):
        """Per-group row counts as a DataFrame of keys + ``size``."""
        from repro.dataframe.frame import DataFrame

        sizes = _segmented_values(self._index, None, "size")
        if sizes is not None:
            out = _key_columns(self._index)
            out["size"] = sizes
            return DataFrame(out)
        return self._agg_frame({"size": lambda rows, col=None: len(rows)}, None)

    def agg(self, spec: dict[str, str | Callable]):
        """Aggregate several columns at once: ``{column: func}`` → DataFrame."""
        from repro.dataframe.frame import DataFrame

        out: dict[str, Any] = _key_columns(self._index)
        for col, func in spec.items():
            series = self._frame[col]
            op = _segmented_name(func)
            fast = (
                _segmented_values(self._index, series, op) if op is not None else None
            )
            if fast is not None:
                out[col] = _agg_series(fast, col)
            else:
                reducer = resolve_aggregator(func)
                values = []
                for rows in self._index.groups.values():
                    sub = Series._from_array(series.values[np.asarray(rows)], col)
                    values.append(reducer(sub))
                out[col] = values
        return DataFrame(out)

    def _agg_frame(self, spec: dict[str, Callable], column: str | None):
        from repro.dataframe.frame import DataFrame

        out: dict[str, list] = {k: [] for k in self._index.keys}
        for name in spec:
            out[name] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            for name, func in spec.items():
                out[name].append(func(rows))
        return DataFrame(out)


def _key_columns(index: _GroupIndex) -> dict[str, list]:
    """Key-column lists (one entry per group, first-seen order)."""
    labels = index.labels()
    if len(index.keys) == 1:
        return {index.keys[0]: list(labels)}
    return {
        k: [label[j] for label in labels] for j, k in enumerate(index.keys)
    }


def _agg_series(per_group: np.ndarray, name: str | None) -> Series:
    """Wrap per-group aggregate values, matching list-coercion dtypes."""
    if per_group.dtype == object:
        return Series([v.item() if isinstance(v, np.generic) else v for v in per_group], name)
    return Series._from_array(_kernels.match_coerce_float(per_group), name)


class SeriesGroupBy:
    """A single column grouped by the parent frame's keys."""

    def __init__(self, series: Series, index: _GroupIndex) -> None:
        self._series = series
        self._index = index

    def transform(self, func: str | Callable) -> Series:
        """Per-group reduce then broadcast back to original row order.

        This is the exact call emitted by the high-order operator:
        ``df.groupby(gcols)[acol].transform('mean')``.
        """
        op = _segmented_name(func)
        if op is not None:
            fast = _segmented_transform(self._index, self._series, op)
            if fast is not None:
                return fast
        reducer = resolve_aggregator(func)
        out = np.empty(self._index.n_rows, dtype=object)
        for rows in self._index.groups.values():
            idx = np.asarray(rows)
            sub = Series._from_array(self._series.values[idx], self._series.name)
            out[idx] = reducer(sub)
        return Series(out.tolist(), self._series.name)

    def agg(self, func: str | Callable):
        """Per-group reduce; returns a DataFrame of keys + aggregated value."""
        from repro.dataframe.frame import DataFrame

        name = self._series.name or "value"
        op = _segmented_name(func)
        fast = (
            _segmented_values(self._index, self._series, op)
            if op is not None and self._index.fast
            else None
        )
        if fast is not None:
            out: dict[str, Any] = _key_columns(self._index)
            out[name] = _agg_series(fast, name)
            return DataFrame(out)
        reducer = resolve_aggregator(func)
        out = {k: [] for k in self._index.keys}
        out[name] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            idx = np.asarray(rows)
            sub = Series._from_array(self._series.values[idx], self._series.name)
            out[name].append(reducer(sub))
        return DataFrame(out)

    def mean(self):
        return self.agg("mean")

    def sum(self):
        return self.agg("sum")

    def max(self):
        return self.agg("max")

    def min(self):
        return self.agg("min")

    def count(self):
        return self.agg("count")
