"""Group-by machinery: ``df.groupby(keys)[col].transform(func)`` and friends.

The high-order operator in SMARTFEAT emits exactly the pandas idiom
``df.groupby(groupby_col)[agg_col].transform(function)``; this module
implements that surface plus the aggregate forms the baselines use.

Grouping is vectorised: key columns are factorised
(:func:`repro.dataframe.kernels.factorize_values`), multi-key groups are
combined by mixed-radix coding, and the built-in aggregations (``sum`` /
``mean`` / ``min`` / ``max`` / ``count`` / ``size`` / ``first`` /
``last``) run as sort-based segmented reductions
(:func:`repro.dataframe.kernels.segmented_agg`) instead of per-group
Python loops.  Callable specs, non-numeric reductions, and frames with
missing key values keep the original per-group path — whose semantics
(first-seen group order, every NaN key its own group) the fast path
reproduces exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.dataframe import kernels as _kernels
from repro.dataframe.series import Series

__all__ = ["DataFrameGroupBy", "SeriesGroupBy", "StreamingGroupAgg"]

_NAMED_AGGS: dict[str, Callable[[Series], Any]] = {
    "mean": lambda s: s.mean(),
    "avg": lambda s: s.mean(),
    "average": lambda s: s.mean(),
    "sum": lambda s: s.sum(),
    "min": lambda s: s.min(),
    "max": lambda s: s.max(),
    "median": lambda s: s.median(),
    "std": lambda s: s.std(),
    "var": lambda s: s.var(),
    "count": lambda s: s.count(),
    "size": lambda s: len(s),
    "nunique": lambda s: s.nunique(),
    "mode": lambda s: s.mode(),
    "first": lambda s: s[0] if len(s) else None,
    "last": lambda s: s[len(s) - 1] if len(s) else None,
}

#: Canonical segmented-reduction name per aggregate alias, where one exists.
_SEGMENTED_NAMES = {
    "mean": "mean",
    "avg": "mean",
    "average": "mean",
    "sum": "sum",
    "min": "min",
    "max": "max",
    "count": "count",
    "size": "size",
    "first": "first",
    "last": "last",
}


def resolve_aggregator(func: str | Callable) -> Callable[[Series], Any]:
    """Translate a pandas-style aggregate name or callable into a reducer.

    Callables are wrapped so they may accept either a :class:`Series` or a
    plain numpy array — generated code uses both styles.
    """
    if isinstance(func, str):
        name = func.strip().lower()
        if name not in _NAMED_AGGS:
            raise ValueError(
                f"unknown aggregate function {func!r}; expected one of {sorted(_NAMED_AGGS)}"
            )
        return _NAMED_AGGS[name]

    def _call(series: Series) -> Any:
        try:
            return func(series)
        except TypeError:
            return func(series.to_numpy())

    return _call


def _segmented_name(func: str | Callable) -> str | None:
    """The segmented-reduction name for *func*, or ``None`` for the loop path."""
    if not isinstance(func, str):
        return None
    return _SEGMENTED_NAMES.get(func.strip().lower())


class _GroupIndex:
    """Shared grouping of row positions by key tuple.

    The fast path holds one stable sort of the key column(s): ``inverse``
    maps each row to its group segment (sort order), ``order``/``starts``
    delimit the segments.  First-seen group order — the hash path's
    observable ordering for labels, ``agg`` rows, and :attr:`groups` — is
    recovered lazily from each segment's first row position.  Frames with
    missing or unorderable key values build the legacy hash grouping
    directly, which also defines the semantics (each NaN key its own
    group, ``None`` a single group).
    """

    def __init__(self, frame, keys: Sequence[str]) -> None:
        self.keys = list(keys)
        self.n_rows = len(frame)
        self._frame = frame
        self._groups: dict[Any, list[int]] | None = None
        self._labels: list | None = None
        self._first_to_sorted: np.ndarray | None = None
        self.fast = False
        self.n_groups = 0
        self._build()

    def _build(self) -> None:
        # Per-column groupings come from Series.grouping(), which caches
        # the stable sort (and the string S-encode step feeding it) on
        # the column — repeated group-bys over the same key, the
        # high-order operator's hot pattern, skip straight to the
        # segment arrays.  Only the multi-key radix combine below is
        # recomputed per group-by.
        grouped = self._frame[self.keys[0]].grouping()
        if grouped is None:
            self._build_legacy()
            return
        for key in self.keys[1:]:
            nxt = self._frame[key].grouping()
            if nxt is None:
                self._build_legacy()
                return
            # Pairwise mixed-radix combine, re-grouped each step so the
            # codes stay < n_rows² regardless of the key count.
            combined = grouped[2] * np.int64(len(nxt[1])) + nxt[2]
            grouped = _kernels.sorted_grouping(combined)
        self.order, self.starts, self.inverse = grouped
        self.n_groups = len(self.starts)
        self.fast = True

    def _build_legacy(self) -> None:
        key_lists = [self._frame[k].tolist() for k in self.keys]
        groups: dict[Any, list[int]] = {}
        for i, key in enumerate(zip(*key_lists)):
            label = key[0] if len(key) == 1 else key
            groups.setdefault(label, []).append(i)
        self._groups = groups

    def first_last_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Row position of each segment's first and last member (sort order)."""
        if self.n_groups == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        ends = np.append(self.starts[1:], self.n_rows) - 1
        # The sort is stable, so segment starts are first occurrences.
        return self.order[self.starts], self.order[ends]

    def first_seen_order(self) -> np.ndarray:
        """Segment ids ordered by first occurrence (the hash-path order)."""
        if self._first_to_sorted is None:
            firsts, _ = self.first_last_positions()
            self._first_to_sorted = np.argsort(firsts, kind="stable")
        return self._first_to_sorted

    def labels(self) -> list:
        """Group labels (scalars, or key tuples) in first-seen order."""
        if self._labels is None:
            if not self.fast:
                self._labels = list(self.groups)
            else:
                firsts, _ = self.first_last_positions()
                rows = firsts[self.first_seen_order()]
                columns = []
                for key in self.keys:
                    values = self._frame[key].values[rows]
                    columns.append(
                        [v.item() if isinstance(v, np.generic) else v for v in values]
                    )
                if len(columns) == 1:
                    self._labels = columns[0]
                else:
                    self._labels = [tuple(vals) for vals in zip(*columns)]
        return self._labels

    @property
    def groups(self) -> dict[Any, list[int]]:
        """Mapping of group label → list of row positions (lazy on fast path)."""
        if self._groups is None:
            chunks = np.split(self.order, self.starts[1:])
            first_seen = self.first_seen_order()
            self._groups = {
                label: chunks[seg].tolist()
                for label, seg in zip(self.labels(), first_seen)
            }
        return self._groups


def _segmented_transform(
    index: _GroupIndex, series: Series, op: str
) -> Series | None:
    """Vectorised per-group reduce + broadcast, or ``None`` for the loop path."""
    per_segment = _segmented_values(index, series, op, first_seen=False)
    if per_segment is None:
        return None
    out = per_segment[index.inverse]
    if out.dtype == object:
        # first/last of an object column can be all-numeric: re-coerce
        # exactly like the loop path's Series(out.tolist()).
        return Series(out.tolist(), series.name)
    return Series._from_array(_kernels.match_coerce_float(out), series.name)


#: Placeholder for ops (``size``) that reduce positions, not values.
_NO_VALUES = np.empty(0, dtype=np.float64)


def _segmented_values(
    index: _GroupIndex, series: Series | None, op: str, first_seen: bool = True
) -> np.ndarray | None:
    """One value per group for a built-in aggregation, or ``None``.

    ``first_seen=True`` orders the result like the hash path's group
    iteration (what ``agg`` rows need); ``False`` keeps sort-segment
    order (what a broadcast through ``inverse`` needs).
    """
    if not index.fast or index.n_rows == 0:
        return None
    out = _segmented_sorted(index, series, op)
    if out is None or not first_seen:
        return out
    return out[index.first_seen_order()]


def _segmented_sorted(
    index: _GroupIndex, series: Series | None, op: str
) -> np.ndarray | None:
    """Per-segment aggregation in sort order (*series* unused for ``size``)."""
    if op == "size":
        return _kernels.segmented_agg(
            "size", _NO_VALUES, index.order, index.starts
        )
    if op in ("first", "last"):
        firsts, lasts = index.first_last_positions()
        return series.values[firsts if op == "first" else lasts]
    if op == "count":
        from repro.dataframe.series import _isna_array

        present = (~_isna_array(series.values)).astype(np.int64)
        return np.add.reduceat(present[index.order], index.starts)
    if series.dtype.kind not in "ifb":
        return None
    return _kernels.segmented_agg(op, series._numeric(), index.order, index.starts)


#: Sentinel marking a first/last slot not yet populated.
_UNSET = object()


class StreamingGroupAgg:
    """Out-of-core grouped aggregation: exact per-shard partials + merge.

    Feed row shards through :meth:`update` in stream order; the final
    per-group values from :meth:`result` are **invariant to shard
    boundaries** — any chunking of the same table, one big shard
    included, produces the identical bit pattern.  The merge rules live
    in :func:`repro.dataframe.kernels.segmented_sum_carry`: ``sum``
    folds sequentially through carried accumulators, ``mean`` is derived
    from the merged sum/count at finalize (the mean-from-sums rule),
    ``min``/``max`` merge associatively via ``fmin``/``fmax``,
    ``count``/``size`` add integer partials, and ``first``/``last``
    keep/overwrite positionally.  Every op except ``sum``/``mean`` is
    additionally bit-exact against the one-shot segmented kernels;
    ``sum``/``mean`` agree with the one-shot (pairwise-summing) kernel
    to within float64 round-off (a few ulps).

    Group labels accumulate in *global* first-seen order — the hash
    path's observable ordering, and the order a frozen group table uses.
    Shards must group on the fast (sort) path: missing or unorderable key
    values raise, the same contract as freezing a group table at fit
    time.
    """

    def __init__(self, keys: Sequence[str], agg_col: str | None, agg: str) -> None:
        op = _segmented_name(agg)
        if op is None:
            raise ValueError(
                f"aggregate {agg!r} has no segmented form; "
                f"expected one of {sorted(_SEGMENTED_NAMES)}"
            )
        if op != "size" and agg_col is None:
            raise ValueError(f"aggregate {agg!r} needs an agg_col")
        self.keys = list(keys)
        self.agg_col = agg_col
        self.op = op
        self._slots: dict[Any, int] = {}
        self._sums = np.empty(0, dtype=np.float64)
        self._counts = np.empty(0, dtype=np.int64)
        self._minmax = np.empty(0, dtype=np.float64)
        self._sizes = np.empty(0, dtype=np.int64)
        self._positional: list = []
        self._value_kinds: set[str] = set()
        self.rows_seen = 0

    @property
    def n_groups(self) -> int:
        return len(self._slots)

    def _grow(self, n: int) -> None:
        have = len(self._sums)
        if have >= n:
            return
        pad = n - have
        self._sums = np.concatenate([self._sums, np.zeros(pad)])
        self._counts = np.concatenate(
            [self._counts, np.zeros(pad, dtype=np.int64)]
        )
        self._minmax = np.concatenate([self._minmax, np.full(pad, np.nan)])
        self._sizes = np.concatenate([self._sizes, np.zeros(pad, dtype=np.int64)])
        self._positional.extend([_UNSET] * pad)

    def update(self, frame) -> None:
        """Fold one shard (the next *chunk_rows* of the logical table) in."""
        n = len(frame)
        if n == 0:
            return
        index = _GroupIndex(frame, self.keys)
        if not index.fast:
            raise ValueError(
                f"streaming groupby over {self.keys!r} needs orderable, "
                "non-missing key values in every shard (the hash path "
                "cannot stream)"
            )
        self.rows_seen += n
        # Register unseen labels in first-seen order — across the whole
        # stream this reproduces the hash path's global group ordering.
        first_seen = index.first_seen_order()
        slots_first_seen = np.empty(index.n_groups, dtype=np.int64)
        for j, label in enumerate(index.labels()):
            slot = self._slots.get(label)
            if slot is None:
                slot = len(self._slots)
                self._slots[label] = slot
            slots_first_seen[j] = slot
        self._grow(len(self._slots))
        # Slot id per *sorted* segment, to line up with segmented kernels.
        slots = np.empty(index.n_groups, dtype=np.int64)
        slots[first_seen] = slots_first_seen
        op = self.op
        if op == "size":
            self._sizes[slots] += _kernels.segmented_agg(
                "size", _NO_VALUES, index.order, index.starts
            )
            return
        series = frame[self.agg_col]
        if op in ("first", "last"):
            firsts, lasts = index.first_last_positions()
            values = series.values[firsts if op == "first" else lasts]
            self._value_kinds.add(series.dtype.kind)
            if op == "last":
                for slot, value in zip(slots, values):
                    self._positional[slot] = value
            else:
                for slot, value in zip(slots, values):
                    if self._positional[slot] is _UNSET:
                        self._positional[slot] = value
            return
        # Same coercion contract as the in-memory groupby kernels:
        # _numeric() accepts numeric and missing-heavy object columns
        # (None/NaN become NaN) and raises for genuinely non-numeric data.
        try:
            values = series._numeric()
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"aggregate {op!r} over non-numeric column {self.agg_col!r} "
                f"has no segmented form: {exc}"
            ) from None
        if op in ("sum", "mean"):
            self._sums[slots] = _kernels.segmented_sum_carry(
                values, index.order, index.starts, self._sums[slots]
            )
        if op in ("count", "mean"):
            self._counts[slots] += _kernels.segmented_agg(
                "count", values, index.order, index.starts
            )
        if op in ("min", "max"):
            part = _kernels.segmented_agg(op, values, index.order, index.starts)
            fold = np.fmin if op == "min" else np.fmax
            self._minmax[slots] = fold(self._minmax[slots], part)

    def result(self) -> tuple[list, np.ndarray]:
        """``(labels, per_group_values)`` in global first-seen order."""
        labels = list(self._slots)
        n = len(labels)
        op = self.op
        if op == "size":
            return labels, self._sizes[:n].copy()
        if op == "count":
            return labels, self._counts[:n].copy()
        if op == "sum":
            return labels, self._sums[:n].copy()
        if op == "mean":
            # Mean-from-sums: the division's operands are bit-identical
            # to the one-shot kernel's, so the quotient is too.
            counts = self._counts[:n].astype(np.float64)
            with np.errstate(invalid="ignore", divide="ignore"):
                out = self._sums[:n] / counts
            out[counts == 0] = np.nan
            return labels, out
        if op in ("min", "max"):
            return labels, self._minmax[:n].copy()
        raw = [
            v.item() if isinstance(v, np.generic) else v
            for v in self._positional[:n]
        ]
        kinds = self._value_kinds
        if kinds in ({"i"}, {"u"}):
            return labels, np.array(raw, dtype=np.int64)
        if kinds and kinds <= {"i", "u", "f"}:
            return labels, np.array(raw, dtype=np.float64)
        if kinds == {"b"}:
            return labels, np.array(raw, dtype=bool)
        # Mixed shard dtypes (schema-less CSV streams): fall back to list
        # coercion, the same authority concat_shards uses.
        return labels, _kernels.coerce_listlike(raw)


class DataFrameGroupBy:
    """Result of ``df.groupby(keys)``; index with a column to aggregate it."""

    def __init__(self, frame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._index = _GroupIndex(frame, keys)

    @property
    def groups(self) -> dict[Any, list[int]]:
        """Mapping of group label → list of row positions."""
        return self._index.groups

    def __len__(self) -> int:
        return self._index.n_groups if self._index.fast else len(self._index.groups)

    def __getitem__(self, column: str) -> "SeriesGroupBy":
        if column not in self._frame.columns:
            raise KeyError(column)
        return SeriesGroupBy(self._frame[column], self._index)

    def size(self):
        """Per-group row counts as a DataFrame of keys + ``size``."""
        from repro.dataframe.frame import DataFrame

        sizes = _segmented_values(self._index, None, "size")
        if sizes is not None:
            out = _key_columns(self._index)
            out["size"] = sizes
            return DataFrame(out)
        return self._agg_frame({"size": lambda rows, col=None: len(rows)}, None)

    def agg(self, spec: dict[str, str | Callable]):
        """Aggregate several columns at once: ``{column: func}`` → DataFrame."""
        from repro.dataframe.frame import DataFrame

        out: dict[str, Any] = _key_columns(self._index)
        for col, func in spec.items():
            series = self._frame[col]
            op = _segmented_name(func)
            fast = (
                _segmented_values(self._index, series, op) if op is not None else None
            )
            if fast is not None:
                out[col] = _agg_series(fast, col)
            else:
                reducer = resolve_aggregator(func)
                values = []
                for rows in self._index.groups.values():
                    sub = Series._from_array(series.values[np.asarray(rows)], col)
                    values.append(reducer(sub))
                out[col] = values
        return DataFrame(out)

    def _agg_frame(self, spec: dict[str, Callable], column: str | None):
        from repro.dataframe.frame import DataFrame

        out: dict[str, list] = {k: [] for k in self._index.keys}
        for name in spec:
            out[name] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            for name, func in spec.items():
                out[name].append(func(rows))
        return DataFrame(out)


def _key_columns(index: _GroupIndex) -> dict[str, list]:
    """Key-column lists (one entry per group, first-seen order)."""
    labels = index.labels()
    if len(index.keys) == 1:
        return {index.keys[0]: list(labels)}
    return {
        k: [label[j] for label in labels] for j, k in enumerate(index.keys)
    }


def _agg_series(per_group: np.ndarray, name: str | None) -> Series:
    """Wrap per-group aggregate values, matching list-coercion dtypes."""
    if per_group.dtype == object:
        return Series([v.item() if isinstance(v, np.generic) else v for v in per_group], name)
    return Series._from_array(_kernels.match_coerce_float(per_group), name)


class SeriesGroupBy:
    """A single column grouped by the parent frame's keys."""

    def __init__(self, series: Series, index: _GroupIndex) -> None:
        self._series = series
        self._index = index

    def transform(self, func: str | Callable) -> Series:
        """Per-group reduce then broadcast back to original row order.

        This is the exact call emitted by the high-order operator:
        ``df.groupby(gcols)[acol].transform('mean')``.
        """
        op = _segmented_name(func)
        if op is not None:
            fast = _segmented_transform(self._index, self._series, op)
            if fast is not None:
                return fast
        reducer = resolve_aggregator(func)
        out = np.empty(self._index.n_rows, dtype=object)
        for rows in self._index.groups.values():
            idx = np.asarray(rows)
            sub = Series._from_array(self._series.values[idx], self._series.name)
            out[idx] = reducer(sub)
        return Series(out.tolist(), self._series.name)

    def agg(self, func: str | Callable):
        """Per-group reduce; returns a DataFrame of keys + aggregated value."""
        from repro.dataframe.frame import DataFrame

        name = self._series.name or "value"
        op = _segmented_name(func)
        fast = (
            _segmented_values(self._index, self._series, op)
            if op is not None and self._index.fast
            else None
        )
        if fast is not None:
            out: dict[str, Any] = _key_columns(self._index)
            out[name] = _agg_series(fast, name)
            return DataFrame(out)
        reducer = resolve_aggregator(func)
        out = {k: [] for k in self._index.keys}
        out[name] = []
        for label, rows in self._index.groups.items():
            key = (label,) if len(self._index.keys) == 1 else label
            for k, v in zip(self._index.keys, key):
                out[k].append(v)
            idx = np.asarray(rows)
            sub = Series._from_array(self._series.values[idx], self._series.name)
            out[name].append(reducer(sub))
        return DataFrame(out)

    def mean(self):
        return self.agg("mean")

    def sum(self):
        return self.agg("sum")

    def max(self):
        return self.agg("max")

    def min(self):
        return self.agg("min")

    def count(self):
        return self.agg("count")
