"""CSV input/output and the row-shard substrate for out-of-core execution.

Besides the one-shot :func:`read_csv`/:func:`to_csv` pair, this module
provides the streaming primitives the sharded fit/serve paths build on:

* :class:`Shard` — a bounded, contiguous row window of a larger table;
* :func:`iter_frame_shards` / :func:`read_csv_shards` — shard streams over
  an in-memory frame (zero-copy views) or a CSV file (bounded buffers);
* :func:`scan_csv_kinds` — a cheap schema pass so every CSV shard coerces
  to the whole-file dtypes (cell values bit-identical to ``read_csv``);
* :func:`concat_shards` — re-joins per-shard results under Series
  list-coercion semantics, the package-wide dtype authority, so a
  shard-wise pipeline lands on exactly the frame the in-memory path
  would have produced;
* :func:`reservoir_sample` — a seeded bounded row sample whose output is
  a pure function of ``(seed, row stream)``, never of shard boundaries.
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.dataframe.frame import DataFrame
from repro.dataframe.kernels import is_missing_scalar
from repro.dataframe.series import Series

__all__ = [
    "Shard",
    "concat_shards",
    "iter_frame_shards",
    "read_csv",
    "read_csv_shards",
    "reservoir_sample",
    "scan_csv_kinds",
    "to_csv",
]


#: Strict numeric grammar for CSV cells.  Deliberately narrower than
#: Python's ``int()``/``float()``: no underscore separators (``"1_000"``
#: is data, not a number), no NaN/inf spellings (``"nan"`` must stay the
#: string ``"nan"`` — parsing it to a non-finite float made it serialize
#: back as an *empty* cell, silent data loss), and no surrounding
#: whitespace (``" 3 "`` is a padded string, not the number 3).
_INT_CELL = re.compile(r"[+-]?[0-9]+\Z")
_FLOAT_CELL = re.compile(
    r"[+-]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)(?:[eE][+-]?[0-9]+)?\Z"
)


def _parse_cell(text: str):
    """Interpret a CSV cell: empty → missing, else bool, int, float, or string.

    Numeric parsing follows the strict grammar above; ``"True"`` and
    ``"False"`` (exactly — the spelling :func:`to_csv` writes) parse as
    booleans so boolean columns survive a CSV round trip.  Everything
    else is kept verbatim as a string.
    """
    if text == "":
        return None
    if _INT_CELL.match(text):
        return int(text)
    if _FLOAT_CELL.match(text):
        return float(text)
    if text == "True":
        return True
    if text == "False":
        return False
    return text


def read_csv(path: str | Path) -> DataFrame:
    """Read a headered CSV file into a :class:`DataFrame` with inferred dtypes."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return DataFrame()
        data: dict[str, list] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                data[name].append(_parse_cell(cell))
            for name in header[len(row):]:
                data[name].append(None)
    return DataFrame(data)


def to_csv(
    frame: DataFrame,
    path: str | Path,
    *,
    append: bool = False,
    header: bool | None = None,
) -> None:
    """Write *frame* to a headered CSV file (missing values become empty cells).

    ``append=True`` adds rows to an existing file; *header* defaults to
    ``not append`` so a shard stream writes the header exactly once
    (first shard ``append=False``, the rest ``append=True``).
    """
    write_header = (not append) if header is None else header
    with open(path, "a" if append else "w", newline="") as handle:
        writer = csv.writer(handle)
        if write_header:
            writer.writerow(frame.columns)
        for _, row in frame.iterrows():
            writer.writerow(
                ["" if value is None or value != value else value for value in row.to_dict().values()]
            )


# ----------------------------------------------------------------------
# Row shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """A bounded, contiguous row window of a larger logical table.

    ``frame`` may share storage with the source table (the frame-shard
    iterator yields zero-copy views) — treat it as read-only.
    """

    frame: DataFrame
    index: int  # shard ordinal in the stream, 0-based
    start: int  # global row offset of the shard's first row

    def __len__(self) -> int:
        return len(self.frame)


def _as_frame(piece: "Shard | DataFrame") -> DataFrame:
    return piece.frame if isinstance(piece, Shard) else piece


def iter_frame_shards(frame: DataFrame, chunk_rows: int) -> Iterator[Shard]:
    """Yield *frame* as contiguous :class:`Shard` views of ≤ *chunk_rows* rows.

    Shards are numpy slice views — zero array copies — so iterating costs
    one dict per shard.  An empty frame yields nothing.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    n = len(frame)
    names = frame.columns
    arrays = [frame[c].values for c in names]
    for index, start in enumerate(range(0, n, chunk_rows)):
        stop = min(start + chunk_rows, n)
        piece = DataFrame()
        for name, values in zip(names, arrays):
            piece._columns[name] = Series._from_array(values[start:stop], name)
        yield Shard(piece, index, start)


# ----------------------------------------------------------------------
# Streaming CSV: schema scan + bounded shard reader
# ----------------------------------------------------------------------
def scan_csv_kinds(path: str | Path) -> dict[str, str]:
    """One streaming pass over a CSV → per-column coercion kind.

    Kinds mirror Series list coercion (``kernels._classify``) over
    :func:`_parse_cell` values: ``"bool"`` (all-boolean, no missing),
    ``"bool_missing"`` (boolean with missing cells — the object
    None/bool path), ``"int"``, ``"float"`` (numeric with any float or
    missing cell), ``"object"`` (any string cell), or ``"empty"`` (no
    present values).  Feeding the result to :func:`read_csv_shards` pins
    every shard to the whole-file dtypes.  The parser's strict grammar
    guarantees cells are never non-finite floats, so a parsed cell is
    exactly one of None/bool/int/float/str.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return {}
        n = len(header)
        forced = [False] * n  # a string cell forces the object path
        missing = [False] * n
        present = [False] * n
        floaty = [False] * n
        nonbool = [False] * n
        for row in reader:
            for i in range(n):
                if forced[i]:
                    continue
                cell = _parse_cell(row[i]) if i < len(row) else None
                if cell is None:
                    missing[i] = True
                elif isinstance(cell, bool):
                    present[i] = True
                elif isinstance(cell, int):
                    present[i] = True
                    nonbool[i] = True
                elif isinstance(cell, float):
                    present[i] = True
                    floaty[i] = True
                    nonbool[i] = True
                else:
                    forced[i] = True
    kinds = {}
    for i, name in enumerate(header):
        if forced[i]:
            kinds[name] = "object"
        elif not present[i]:
            kinds[name] = "empty"
        elif not nonbool[i]:
            kinds[name] = "bool_missing" if missing[i] else "bool"
        elif floaty[i] or missing[i]:
            kinds[name] = "float"
        else:
            kinds[name] = "int"
    return kinds


def _coerce_kind(values: list, kind: str) -> Series:
    """Coerce one shard's cell values to a whole-file column kind."""
    if kind == "float":
        return Series._from_array(np.array(values, dtype=np.float64))
    if kind == "int":
        return Series._from_array(np.array(values, dtype=np.int64))
    if kind == "bool":
        return Series._from_array(np.array([bool(v) for v in values], dtype=bool))
    if kind == "bool_missing":
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = None if is_missing_scalar(v) else bool(v)
        return Series._from_array(arr)
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = None if is_missing_scalar(v) else v
    return Series._from_array(arr)


def read_csv_shards(
    path: str | Path,
    chunk_rows: int,
    schema: dict[str, str] | None = None,
) -> Iterator[Shard]:
    """Stream a headered CSV as :class:`Shard`\\ s of ≤ *chunk_rows* rows.

    With *schema* (from :func:`scan_csv_kinds`) every shard coerces to
    the whole-file dtypes, so each shard is bit-identical to the matching
    row slice of ``read_csv(path)`` regardless of where the boundaries
    fall.  Without a schema each shard infers dtypes independently —
    cheaper (no scan pass), but downstream consumers must tolerate dtype
    drift between shards (:func:`concat_shards` re-coerces).
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return
        buffers: list[list] = [[] for _ in header]
        index = 0
        start = 0
        for row in reader:
            for i, name in enumerate(header):
                buffers[i].append(_parse_cell(row[i]) if i < len(row) else None)
            if len(buffers[0]) >= chunk_rows:
                yield Shard(_csv_shard_frame(header, buffers, schema), index, start)
                start += len(buffers[0])
                index += 1
                buffers = [[] for _ in header]
        if buffers and buffers[0]:
            yield Shard(_csv_shard_frame(header, buffers, schema), index, start)


def _csv_shard_frame(
    header: list[str], buffers: list[list], schema: dict[str, str] | None
) -> DataFrame:
    if schema is None:
        return DataFrame({name: cells for name, cells in zip(header, buffers)})
    out = DataFrame()
    for name, cells in zip(header, buffers):
        series = _coerce_kind(cells, schema.get(name, "object"))
        series.name = name
        out._columns[name] = series
    return out


# ----------------------------------------------------------------------
# Concat with list-coercion semantics
# ----------------------------------------------------------------------
def concat_shards(parts: Iterable["Shard | DataFrame"]) -> DataFrame:
    """Concatenate per-shard frames row-wise into one frame.

    When every piece agrees on a column's dtype the arrays concatenate
    directly (this is exact: if every shard of a column is e.g. int64,
    the in-memory column could only have been int64).  Mixed dtypes —
    an all-NaN shard that degraded to object ``None`` rejoining a float
    column, an int shard meeting a missing value — rebuild through
    Series list coercion, the same rule the in-memory element paths
    follow, so the result is bit-identical to the unsharded computation.
    """
    frames = [_as_frame(p) for p in parts]
    if not frames:
        return DataFrame()
    columns = frames[0].columns
    for frame in frames[1:]:
        if frame.columns != columns:
            raise ValueError(
                f"shard column mismatch: {frame.columns} != {columns}"
            )
    out = DataFrame()
    for name in columns:
        arrays = [frame[name].values for frame in frames]
        if len({a.dtype for a in arrays}) == 1:
            out._columns[name] = Series._from_array(np.concatenate(arrays), name)
        else:
            merged: list = []
            for frame in frames:
                merged.extend(frame[name].tolist())
            out._columns[name] = Series(merged, name)
    out._check_lengths()
    return out


# ----------------------------------------------------------------------
# Seeded reservoir sampling (chunk-invariant)
# ----------------------------------------------------------------------
_U64 = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finalizer over uint64 (wrap-around arithmetic)."""
    with np.errstate(over="ignore"):
        z = x + _U64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        return z ^ (z >> _U64(31))


def reservoir_sample(
    shards: Iterable["Shard | DataFrame"], k: int, seed: int = 0
) -> tuple[DataFrame, int]:
    """Uniform bounded row sample over a shard stream (Algorithm R).

    The replacement draw for global row *i* is a pure hash of
    ``(seed, i)`` — never a stateful RNG — so the selected rows depend
    only on the logical row stream: any chunking of the same table, or
    the table materialised whole, yields the bit-identical sample.
    Sampled rows come back in original row order and columns re-coerce
    through Series list coercion (the dtypes a direct row-subset of the
    source would have).  Returns ``(sample_frame, total_rows_seen)``.
    """
    if k < 1:
        raise ValueError(f"reservoir size must be >= 1, got {k}")
    seed_base = _splitmix64(np.array([seed], dtype=_U64))[0]
    columns: list[str] | None = None
    slot_rows: list[tuple] = []
    slot_orig: list[int] = []
    total = 0
    for piece in shards:
        frame = _as_frame(piece)
        n = len(frame)
        if columns is None:
            columns = frame.columns
        elif frame.columns != columns:
            raise ValueError(
                f"shard column mismatch: {frame.columns} != {columns}"
            )
        if n == 0:
            continue
        arrays = [frame[c].values for c in columns]
        start, end = total, total + n
        if start < k:  # fill phase: rows 0..k-1 enter unconditionally
            take = min(k, end) - start
            taken = [a[:take].tolist() for a in arrays]
            for offset, row in enumerate(zip(*taken)):
                slot_rows.append(row)
                slot_orig.append(start + offset)
        tail_lo = max(start, k)
        if tail_lo < end:
            idx = np.arange(tail_lo, end, dtype=np.int64)
            hashes = _splitmix64(idx.astype(_U64) ^ seed_base)
            with np.errstate(over="ignore"):
                draws = (hashes % (idx + 1).astype(_U64)).astype(np.int64)
            hit = draws < k
            if hit.any():
                positions = idx[hit] - start
                slots = draws[hit]
                picked = [a[positions].tolist() for a in arrays]
                for slot, orig, row in zip(slots, idx[hit], zip(*picked)):
                    slot_rows[slot] = row
                    slot_orig[slot] = int(orig)
        total = end
    if columns is None:
        return DataFrame(), 0
    order = sorted(range(len(slot_rows)), key=slot_orig.__getitem__)
    data = {
        name: [slot_rows[i][j] for i in order] for j, name in enumerate(columns)
    }
    return DataFrame(data), total
