"""Minimal CSV input/output for the dataframe substrate."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.dataframe.frame import DataFrame

__all__ = ["read_csv", "to_csv"]


def _parse_cell(text: str):
    """Interpret a CSV cell: empty → missing, else int, float, or string."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def read_csv(path: str | Path) -> DataFrame:
    """Read a headered CSV file into a :class:`DataFrame` with inferred dtypes."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return DataFrame()
        data: dict[str, list] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                data[name].append(_parse_cell(cell))
            for name in header[len(row):]:
                data[name].append(None)
    return DataFrame(data)


def to_csv(frame: DataFrame, path: str | Path) -> None:
    """Write *frame* to a headered CSV file (missing values become empty cells)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(frame.columns)
        for _, row in frame.iterrows():
            writer.writerow(
                ["" if value is None or value != value else value for value in row.to_dict().values()]
            )
