"""Vectorized numpy kernels backing the dataframe hot paths.

Every kernel here is a drop-in replacement for an element loop elsewhere in
the package and must stay value- and dtype-identical to the retained
reference implementations in :mod:`repro.dataframe.reference` — the
property suite in ``tests/dataframe/test_vectorized_equivalence.py``
enforces that, including NaN/None propagation.

Conventions shared with :mod:`repro.dataframe.series`:

* missing values are ``None``/``NaN`` (see :func:`is_missing_scalar`);
* integer codes use ``-1`` for missing, mirroring ``factorize``;
* classification of mixed Python values follows ``Series`` coercion rules
  (all-bool → ``bool``, numeric → ``int64``/``float64``, else ``object``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = [
    "coerce_listlike",
    "factorize_values",
    "is_missing_scalar",
    "iso_date_parts",
    "match_coerce_float",
    "missing_mask",
    "segmented_agg",
    "segmented_sum_carry",
    "sorted_grouping",
    "str_lengths",
    "take_uniques",
]


def match_coerce_float(values: np.ndarray) -> np.ndarray:
    """Mirror list coercion's all-missing rule for a float64 result.

    ``Series([...])`` turns a non-empty list with *no present values* into
    an ``object`` column of ``None`` — so a vectorized float64 result that
    came out all-NaN must downgrade the same way to stay dtype-identical
    with the element-loop paths.
    """
    if values.dtype.kind == "f" and len(values) and np.isnan(values).all():
        return np.full(len(values), None, dtype=object)
    return values

#: Segmented reductions :func:`segmented_agg` understands.
SEGMENTED_OPS = frozenset({"sum", "mean", "min", "max", "count", "size"})


def is_missing_scalar(value: Any) -> bool:
    """Return ``True`` when *value* is one of the recognised missing markers."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, np.floating) and np.isnan(value):
        return True
    return False


def missing_mask(values: np.ndarray) -> np.ndarray:
    """Vectorised missing-value mask covering both NaN and ``None``."""
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype == object:
        return np.array([is_missing_scalar(v) for v in values], dtype=bool)
    return np.zeros(len(values), dtype=bool)


# ----------------------------------------------------------------------
# Single-pass list coercion
# ----------------------------------------------------------------------
def _classify(values) -> tuple[str, bool]:
    """One pass over *values* → ``(kind, has_missing)``.

    ``kind`` is ``"bool"``/``"int"``/``"float"``/``"object"``/``"empty"``
    (``"empty"`` = no present values, which coerces to an all-``None``
    object array).  The scan stops early once a non-numeric value forces
    the object path — object construction re-examines elements anyway.
    """
    has_missing = False
    n_present = 0
    all_bool = True
    any_float = False
    for v in values:
        if v is None:
            has_missing = True
            continue
        if isinstance(v, (bool, np.bool_)):
            n_present += 1
            continue
        if isinstance(v, (float, np.floating)):
            if math.isnan(v):
                has_missing = True
            else:
                n_present += 1
                any_float = True
                all_bool = False
            continue
        if isinstance(v, (int, np.integer)):
            n_present += 1
            all_bool = False
            continue
        return "object", True  # has_missing unused on the object path
    if n_present == 0:
        return "empty", has_missing
    if all_bool:
        return "bool", has_missing
    if any_float or has_missing:
        return "float", has_missing
    return "int", False


def coerce_listlike(values: list) -> np.ndarray:
    """Coerce a Python list into a 1-D array: one classification pass, then
    a single C-level construction (the seed scanned the list three times)."""
    kind, has_missing = _classify(values)
    if kind == "bool":
        if has_missing:
            return np.array(
                [None if is_missing_scalar(v) else bool(v) for v in values], dtype=object
            )
        return np.array([bool(v) for v in values], dtype=bool)
    if kind == "float":
        # np.array converts None → NaN for float64 targets in one pass.
        return np.array(values, dtype=np.float64)
    if kind == "int":
        return np.array(values, dtype=np.int64)
    return np.array(
        [None if is_missing_scalar(v) else v for v in values], dtype=object
    )


# ----------------------------------------------------------------------
# Factorisation (np.unique fast path, dict fallback)
# ----------------------------------------------------------------------
def _factorize_loop(values: np.ndarray) -> tuple[np.ndarray, list]:
    """Hash-based factorisation: the semantics of dict insertion order."""
    uniques: list = []
    lookup: dict = {}
    codes = np.empty(len(values), dtype=np.int64)
    for i, v in enumerate(values):
        if is_missing_scalar(v):
            codes[i] = -1
            continue
        if isinstance(v, np.generic):
            v = v.item()
        if v not in lookup:
            lookup[v] = len(uniques)
            uniques.append(v)
        codes[i] = lookup[v]
    return codes, uniques


def _first_seen_renumber(
    inverse: np.ndarray, first_index: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Remap sorted-unique codes to first-occurrence order.

    ``inverse``/``first_index`` come from ``np.unique``; returns
    ``(codes, order)`` where ``order`` positions sorted uniques in
    first-seen order.
    """
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank[inverse], order


def factorize_values(values: np.ndarray) -> tuple[np.ndarray, list]:
    """Factorise an array: ``(codes, uniques)`` with ``-1`` for missing and
    uniques in first-seen order, as Python scalars.

    Numeric/boolean/sortable-object arrays go through ``np.unique``;
    mixed-type object arrays (unorderable) fall back to the hash loop,
    which is also the semantics reference.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64), []
    kind = values.dtype.kind
    if kind in "iub":
        uniq, first_index, inverse = np.unique(
            values, return_index=True, return_inverse=True
        )
        codes, order = _first_seen_renumber(inverse, first_index)
        return codes, [u.item() for u in uniq[order]]
    if kind == "f":
        mask = np.isnan(values)
        if mask.all():
            return np.full(n, -1, dtype=np.int64), []
        present = values[~mask]
        uniq, first_index, inverse = np.unique(
            present, return_index=True, return_inverse=True
        )
        sub_codes, order = _first_seen_renumber(inverse, first_index)
        codes = np.full(n, -1, dtype=np.int64)
        codes[~mask] = sub_codes
        return codes, [u.item() for u in uniq[order]]
    if values.dtype == object:
        if _all_strings(values):
            # Strings are never missing markers: factorise byte-encoded
            # keys directly (C-speed sort) and recover the original str
            # objects from the first-occurrence positions.
            try:
                skeys = values.astype("S")
            except UnicodeEncodeError:
                skeys = values.astype("U")
            _, first_index, inverse = np.unique(
                skeys, return_index=True, return_inverse=True
            )
            codes, order = _first_seen_renumber(inverse, first_index)
            return codes, [values[i] for i in first_index[order]]
        try:
            mask = missing_mask(values)
            if mask.all():
                return np.full(n, -1, dtype=np.int64), []
            present = values[~mask]
            uniq, first_index, inverse = np.unique(
                present, return_index=True, return_inverse=True
            )
        except TypeError:  # unorderable mixed types
            return _factorize_loop(values)
        sub_codes, order = _first_seen_renumber(inverse, first_index)
        codes = np.full(n, -1, dtype=np.int64)
        codes[~mask] = sub_codes
        return codes, [
            u.item() if isinstance(u, np.generic) else u for u in uniq[order]
        ]
    return _factorize_loop(values)


# ----------------------------------------------------------------------
# Code → value materialisation with Series coercion semantics
# ----------------------------------------------------------------------
def take_uniques(choices: Sequence[Any], codes: np.ndarray) -> np.ndarray:
    """Expand ``choices[codes]`` into an array, ``-1`` codes → missing.

    The output dtype matches what ``Series([...])`` coercion would produce
    for the fully expanded list; unused choices are dropped first so they
    cannot influence the dtype (exactly like the expanded-list path).
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    choices = list(choices)
    seen = np.zeros(len(choices) + 1, dtype=bool)
    seen[codes] = True  # one O(n) pass; -1 codes land in the sentinel slot
    has_missing_codes = bool(seen[-1])
    used_list = np.flatnonzero(seen[:-1]).tolist()
    if len(used_list) != len(choices):
        remap = np.full(len(choices) + 1, -1, dtype=np.int64)
        for new, old in enumerate(used_list):
            remap[old] = new
        codes = remap[codes]  # -1 stays -1 via the sentinel slot
        choices = [choices[old] for old in used_list]
    kind, has_missing = _classify(choices)
    has_missing = has_missing or has_missing_codes
    if kind in ("empty",) or (kind == "bool" and has_missing) or kind == "object":
        lookup = np.empty(len(choices) + 1, dtype=object)
        for i, c in enumerate(choices):
            lookup[i] = None if is_missing_scalar(c) else c
        lookup[-1] = None
        return lookup[codes]
    if kind == "bool":
        lookup = np.array([bool(c) for c in choices], dtype=bool)
        return lookup[codes]
    if kind == "float" or has_missing:
        lookup = np.empty(len(choices) + 1, dtype=np.float64)
        for i, c in enumerate(choices):
            lookup[i] = np.nan if is_missing_scalar(c) else float(c)
        lookup[-1] = np.nan
        return lookup[codes]
    lookup = np.array([int(c) for c in choices], dtype=np.int64)
    return lookup[codes]


# ----------------------------------------------------------------------
# Segmented (sort-based) group reductions
# ----------------------------------------------------------------------
def _all_strings(values: np.ndarray) -> bool:
    """True when every element is a plain str safe for fixed-width keys.

    Strings containing NUL are excluded: ``S``/``U`` dtypes pad with NUL,
    so ``"a"`` and ``"a\\x00"`` would collide under fixed-width equality.
    """
    for v in values:
        if type(v) is not str or "\x00" in v:
            return False
    return True


def _string_sort_keys(values: np.ndarray) -> np.ndarray:
    """Grouping-consistent sort keys for an all-string object array.

    ASCII data byte-packs into ``uint64`` words (1-D for short strings,
    2-D otherwise) so the sort runs as a radix/lexsort over integers
    instead of string comparisons.  The resulting *order* is arbitrary but
    total, and equal strings get equal keys — all that grouping needs.
    Non-ASCII data falls back to fixed-width unicode keys.
    """
    try:
        packed = values.astype("S")
    except UnicodeEncodeError:
        return values.astype("U")
    width = packed.dtype.itemsize or 1
    words = -(-width // 8)
    if words * 8 != width:
        packed = packed.astype(f"S{words * 8}")
    matrix = packed.view(np.uint64).reshape(len(values), words)
    return matrix[:, 0] if words == 1 else matrix


def _compact_int_keys(values: np.ndarray) -> np.ndarray:
    """Shift integer keys to zero and narrow the dtype.

    Numpy's stable integer argsort is a radix sort whose cost scales with
    the key width, so ``uint8``/``uint16`` keys sort several times faster
    than spread-out ``int64`` values.
    """
    if not len(values):
        return values
    lo, hi = values.min(), values.max()
    span = int(hi) - int(lo)  # Python ints: no int64 overflow
    if span < 2**8:
        return (values - lo).astype(np.uint8)
    if span < 2**16:
        return (values - lo).astype(np.uint16)
    if span < 2**32:
        return (values - lo).astype(np.uint32)
    return values


def _object_sort_keys(values: np.ndarray) -> np.ndarray | None:
    """Sortable stand-in keys for an object array, or ``None`` to bail out.

    Anything containing missing values or mixed types returns ``None``
    (the callers' hash-based path keeps the exact semantics there).
    """
    if not _all_strings(values):
        return None
    return _string_sort_keys(values) if len(values) else values


def sorted_grouping(
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Group equal values with ONE stable argsort.

    Returns ``(order, starts, inverse)``: ``order`` is a stable row
    permutation placing equal values contiguously, ``starts`` the segment
    offsets (one group per segment, ordered by sort key), and ``inverse``
    each row's segment id.  Returns ``None`` when the values contain
    missing entries or are unorderable — callers fall back to the hash
    path, which defines the semantics (missing keys need its NaN-identity
    behaviour).
    """
    n = len(values)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    kind = values.dtype.kind
    if kind == "f":
        if np.isnan(values).any():
            return None
        keys = values
    elif kind == "b":
        keys = values.view(np.uint8)
    elif kind in "iu":
        keys = _compact_int_keys(values)
    elif values.dtype == object:
        keys = _object_sort_keys(values)
        if keys is None:
            return None
    else:
        return None
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    if keys.ndim == 2:  # byte-packed strings: one stable lexsort over words
        order = np.lexsort(tuple(keys.T))
        sorted_keys = keys[order]
        np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1, out=boundary[1:])
    else:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    segment = np.cumsum(boundary) - 1
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = segment
    return order, starts, inverse


# ----------------------------------------------------------------------
# Serving replay kernels (plan hot path)
# ----------------------------------------------------------------------
def str_lengths(values: np.ndarray) -> np.ndarray | None:
    """Vectorised ``len()`` per element for an all-string object array.

    Returns ``None`` whenever the exact semantics of the element loop
    (``len(str(v))`` with ``None`` for missing) cannot be reproduced with
    one C call — missing entries, non-``str`` elements, or embedded NUL
    bytes (fixed-width encodings pad with NUL, so lengths would misreport).
    Callers fall back to ``Series.str.len()``.
    """
    if values.dtype != object or not _all_strings(values):
        return None
    try:
        # ASCII data: byte length == character length, at 1 byte/char.
        packed = values.astype("S")
    except UnicodeEncodeError:
        packed = values.astype("U")
    return np.char.str_len(packed).astype(np.int64)


def iso_date_parts(values: np.ndarray) -> dict[str, np.ndarray] | None:
    """Date components for an all-string ``YYYY-MM-DD`` object array.

    One ``datetime64`` parse yields every component the date-split
    operator needs — versus one ``strptime`` per element *per component*
    on the accessor path.  Returns ``None`` (caller falls back to the
    ``Series.dt`` loop) unless every element is a plain 10-character
    ISO-date string that numpy parses; both paths use the proleptic
    Gregorian calendar, so the components agree exactly.
    """
    if values.dtype != object or len(values) == 0 or not _all_strings(values):
        return None
    try:
        packed = values.astype("S")
    except UnicodeEncodeError:
        return None
    if packed.dtype.itemsize != 10:
        return None
    mat = packed.view(np.uint8).reshape(len(values), 10)
    shape_ok = (mat[:, 4] == ord("-")) & (mat[:, 7] == ord("-"))
    for pos in (0, 1, 2, 3, 5, 6, 8, 9):
        byte = mat[:, pos]
        shape_ok &= (byte >= ord("0")) & (byte <= ord("9"))
    if not shape_ok.all():
        return None
    zero = np.int64(ord("0"))
    digit = lambda pos: mat[:, pos].astype(np.int64) - zero  # noqa: E731
    year = digit(0) * 1000 + digit(1) * 100 + digit(2) * 10 + digit(3)
    month = digit(5) * 10 + digit(6)
    day = digit(8) * 10 + digit(9)
    # Proleptic-Gregorian validity: an out-of-range date must fall back so
    # the accessor path raises the same error fitting would have.
    leap = ((year % 4 == 0) & (year % 100 != 0)) | (year % 400 == 0)
    month_ok = (month >= 1) & (month <= 12)
    month_lengths = np.array(
        [31, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31], dtype=np.int64
    )
    limit = month_lengths[np.where(month_ok, month, 0)] + (
        (month == 2) & leap
    )
    if not (month_ok & (day >= 1) & (day <= limit)).all():
        return None
    # Days since 1970-01-01 by the civil-calendar formula (shifted March
    # years), all integer ufuncs — no per-element parse.
    shifted = year - (month <= 2)
    era = shifted // 400
    year_of_era = shifted - era * 400
    month_shifted = np.where(month > 2, month - 3, month + 9)
    day_of_year = (153 * month_shifted + 2) // 5 + day - 1
    day_of_era = (
        year_of_era * 365 + year_of_era // 4 - year_of_era // 100 + day_of_year
    )
    day_idx = era * 146097 + day_of_era - 719468
    return {
        "year": year,
        "month": month,
        "day": day,
        # 1970-01-01 was a Thursday; Monday == 0 like datetime.weekday().
        "dayofweek": (day_idx + 3) % 7,
    }


def segmented_agg(
    op: str, values: np.ndarray, order: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Per-group reduction over float64 *values* pre-sorted by *order*.

    NaN handling matches the ``Series`` reductions: ``sum`` skips NaN
    (all-NaN group → 0.0), ``mean`` skips NaN (all-NaN → NaN), ``min``/
    ``max`` skip NaN (all-NaN → NaN), ``count`` counts non-NaN, ``size``
    counts rows.  Returns float64 except ``count``/``size`` (int64).
    """
    n = len(order)
    n_groups = len(starts)
    if n_groups == 0:
        return np.empty(0, dtype=np.int64 if op in ("count", "size") else np.float64)
    if op == "size":
        return np.diff(np.append(starts, n)).astype(np.int64)
    sorted_vals = values[order]
    present = ~np.isnan(sorted_vals)
    if op == "count":
        return np.add.reduceat(present.astype(np.int64), starts)
    if op == "sum":
        return np.add.reduceat(np.where(present, sorted_vals, 0.0), starts)
    if op == "mean":
        sums = np.add.reduceat(np.where(present, sorted_vals, 0.0), starts)
        counts = np.add.reduceat(present.astype(np.float64), starts)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = sums / counts
        out[counts == 0] = np.nan
        return out
    if op == "min":
        return np.fmin.reduceat(sorted_vals, starts)
    if op == "max":
        return np.fmax.reduceat(sorted_vals, starts)
    raise ValueError(f"unknown segmented op {op!r}; expected one of {sorted(SEGMENTED_OPS)}")


def segmented_sum_carry(
    values: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    carry: np.ndarray,
) -> np.ndarray:
    """Continue per-group sequential-fold sums across shards.

    The out-of-core sum is defined as the **strict left fold** of each
    group's values in stream (row) order: ``acc = ((0.0 + v0) + v1) + …``.
    That definition is what makes it streamable — any shard boundary
    splits the fold between two additions, so resuming from the carried
    accumulator reproduces the identical bit pattern no matter how the
    table is chunked (one shard or one row per shard).  Note the one-shot
    in-memory kernel (:func:`segmented_agg`, via ``np.add.reduceat``)
    uses numpy's *pairwise* summation, a different association: the two
    agree to within float64 round-off (a few ulps, growing slowly with
    group size), not bitwise — the chunking-invariance contract here is
    against the fold itself.

    Implementation: each segment of the (NaN-masked, sort-ordered) values
    is seeded with its carry, and ``np.add.accumulate`` — which is
    inherently sequential, unlike ``reduce``/``reduceat`` — folds it.

    Two-pass merge rules (the out-of-core aggregation contract):

    * ``sum`` — carried sequential fold (this function); NaN folds as 0.0.
    * ``count``/``size`` — integer partials add exactly.
    * ``min``/``max`` — ``fmin``/``fmax`` partials merge associatively
      (NaN is the identity, so the all-NaN group stays NaN); these are
      bit-exact against the one-shot kernel.
    * ``mean`` — never merged directly: derived at finalize time as
      ``merged_sum / merged_count`` in float64 (the mean-from-sums rule),
      so it inherits the sum's chunking invariance.
    * ``first``/``last`` — first occurrence keeps, later occurrences
      overwrite; values are positional, NaN included; bit-exact.

    *carry* holds one running accumulator per segment of *starts* (in
    sort-segment order); the return value is the updated accumulator per
    segment, same order.
    """
    n_groups = len(starts)
    if n_groups == 0:
        return np.empty(0, dtype=np.float64)
    sorted_vals = values[order]
    masked = np.where(np.isnan(sorted_vals), 0.0, sorted_vals)
    seeded = np.insert(masked, starts, carry)
    seeded_starts = starts + np.arange(n_groups, dtype=np.int64)
    seeded_ends = np.append(seeded_starts[1:], len(seeded))
    out = np.empty(n_groups, dtype=np.float64)
    for g in range(n_groups):
        out[g] = np.add.accumulate(seeded[seeded_starts[g]:seeded_ends[g]])[-1]
    return out
