"""A ``pandas``-shaped namespace over the dataframe substrate.

The function generator's FM emits code written as if pandas were imported
(``pd.cut``, ``pd.get_dummies`` …), exactly like the paper's generated
transformations.  The execution sandbox injects this module as ``pd`` so
that generated code runs verbatim against the local substrate.
"""

from repro.dataframe.frame import DataFrame
from repro.dataframe.io import read_csv
from repro.dataframe.reshape import concat, cut, factorize, get_dummies, qcut
from repro.dataframe.series import Series, _is_missing_scalar

__all__ = [
    "DataFrame",
    "Series",
    "concat",
    "cut",
    "factorize",
    "get_dummies",
    "isna",
    "notna",
    "qcut",
    "read_csv",
]


def isna(value) -> bool:
    """Scalar missing-value check (``pd.isna`` for scalars)."""
    return _is_missing_scalar(value)


def notna(value) -> bool:
    """Scalar non-missing check (``pd.notna`` for scalars)."""
    return not _is_missing_scalar(value)
