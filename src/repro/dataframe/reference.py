"""Retained pure-Python reference implementations of the data plane.

These are the element-loop implementations the vectorized kernels replaced
(verbatim from the pre-vectorization tree).  They exist for two reasons:

* the property-based equivalence suite
  (``tests/dataframe/test_vectorized_equivalence.py``) asserts the numpy
  fast paths are value- and dtype-identical to these loops, including
  NaN/None propagation;
* ``benchmarks/bench_dataplane.py`` times them against the vectorized
  paths to measure the speedup per operation.

Nothing in the library itself calls into this module.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.dataframe.frame import DataFrame
from repro.dataframe.series import Series, _is_missing_scalar

__all__ = [
    "FLOAT_RTOL",
    "assert_frame_equivalent",
    "assert_series_equivalent",
    "reference_apply",
    "reference_astype",
    "reference_coerce_values",
    "reference_cut",
    "reference_factorize",
    "reference_feature_matrix",
    "reference_get_dummies",
    "reference_groupby_agg",
    "reference_groupby_transform",
    "reference_isin",
    "reference_map",
    "reference_mode",
    "reference_nunique",
    "reference_unique",
    "reference_value_counts",
    "reference_where",
    "REFERENCE_TRANSFORM_SOURCES",
]


#: Relative tolerance for float accumulations: the vectorized paths change
#: summation order / use SIMD libm, so sums, means, and ``log`` agree with
#: the loops to a few ulp rather than bitwise.
FLOAT_RTOL = 1e-12


def assert_series_equivalent(new: Series, ref: Series, label: str = "series") -> None:
    """Assert the vectorized/reference equivalence contract for one column:
    exact dtype, exact missingness, exact values (and value types) except
    floats, which compare within :data:`FLOAT_RTOL`."""
    assert new.dtype == ref.dtype, f"{label}: dtype {new.dtype} != {ref.dtype}"
    assert len(new) == len(ref), f"{label}: length {len(new)} != {len(ref)}"
    a, b = new.to_numpy(), ref.to_numpy()
    if a.dtype.kind == "f":
        na, nb = np.isnan(a), np.isnan(b)
        assert (na == nb).all(), f"{label}: missingness mismatch"
        assert np.allclose(a[~na], b[~nb], rtol=FLOAT_RTOL, atol=0.0), (
            f"{label}: values diverge"
        )
        return
    for x, y in zip(new.tolist(), ref.tolist()):
        if _is_missing_scalar(x) or _is_missing_scalar(y):
            assert _is_missing_scalar(x) and _is_missing_scalar(y), (
                f"{label}: missingness mismatch ({x!r} vs {y!r})"
            )
        else:
            assert x == y and type(x) is type(y), f"{label}: {x!r} != {y!r}"


def assert_frame_equivalent(new: DataFrame, ref: DataFrame, label: str = "frame") -> None:
    """Column-wise :func:`assert_series_equivalent` over two frames."""
    assert new.columns == ref.columns, (
        f"{label}: columns {new.columns} != {ref.columns}"
    )
    for col in ref.columns:
        assert_series_equivalent(new[col], ref[col], f"{label}[{col}]")


def reference_coerce_values(values: Any) -> np.ndarray:
    """The seed's triple-scan list coercion (``Series.__init__`` data path)."""
    values = list(values)
    has_missing = any(_is_missing_scalar(v) for v in values)
    non_missing = [v for v in values if not _is_missing_scalar(v)]
    if non_missing and all(isinstance(v, (bool, np.bool_)) for v in non_missing):
        if has_missing:
            return np.array(
                [None if _is_missing_scalar(v) else bool(v) for v in values], dtype=object
            )
        return np.array([bool(v) for v in values], dtype=bool)
    if non_missing and all(
        isinstance(v, (int, float, np.integer, np.floating)) for v in non_missing
    ):
        if has_missing or any(isinstance(v, (float, np.floating)) for v in non_missing):
            return np.array(
                [np.nan if _is_missing_scalar(v) else float(v) for v in values],
                dtype=np.float64,
            )
        return np.array([int(v) for v in values], dtype=np.int64)
    return np.array(
        [None if _is_missing_scalar(v) else v for v in values], dtype=object
    )


def reference_map(series: Series, mapper: Callable[[Any], Any] | Mapping[Any, Any]) -> Series:
    """Element-loop ``Series.map``."""
    if isinstance(mapper, Mapping):
        get = mapper.get
        out = [None if _is_missing_scalar(v) else get(v) for v in series.tolist()]
    else:
        out = [None if _is_missing_scalar(v) else mapper(v) for v in series.tolist()]
    return Series(out, series.name)


def reference_apply(series: Series, func: Callable[[Any], Any]) -> Series:
    """Element-loop ``Series.apply`` (missing values included)."""
    return Series([func(v) for v in series.tolist()], series.name)


def reference_astype(series: Series, dtype: Any) -> Series:
    """Element-loop ``Series.astype``."""
    if dtype in (str, "str", "string"):
        return Series(
            [None if _is_missing_scalar(v) else str(v) for v in series.tolist()], series.name
        )
    if dtype in (float, "float", "float64"):
        return Series(
            [np.nan if _is_missing_scalar(v) else float(v) for v in series.tolist()],
            series.name,
        )
    if dtype in (int, "int", "int64"):
        return Series([int(v) for v in series.tolist()], series.name)
    if dtype in (bool, "bool"):
        return Series([bool(v) for v in series.tolist()], series.name)
    return Series._from_array(series.values.astype(dtype), series.name)


def reference_where(series: Series, cond: Series | np.ndarray, other: Any = None) -> Series:
    """Element-loop ``Series.where``."""
    mask = cond.to_numpy() if isinstance(cond, Series) else np.asarray(cond)
    out = [v if m else other for v, m in zip(series.tolist(), mask)]
    return Series(out, series.name)


def reference_isin(series: Series, values) -> Series:
    """Element-loop ``Series.isin``."""
    lookup = set(values)
    out = np.array(
        [not _is_missing_scalar(v) and v in lookup for v in series.tolist()], dtype=bool
    )
    return Series._from_array(out, series.name)


def reference_unique(series: Series) -> list:
    """Element-loop ``Series.unique`` (first-seen order)."""
    seen: dict[Any, None] = {}
    for v in series.tolist():
        if not _is_missing_scalar(v) and v not in seen:
            seen[v] = None
    return list(seen)


def reference_nunique(series: Series, dropna: bool = True) -> int:
    values = series.tolist()
    if dropna:
        values = [v for v in values if not _is_missing_scalar(v)]
    return len(set(values))


def reference_mode(series: Series) -> Any:
    counts: dict[Any, int] = {}
    for v in series.tolist():
        if not _is_missing_scalar(v):
            counts[v] = counts.get(v, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)


def reference_value_counts(series: Series, normalize: bool = False) -> dict:
    """Element-loop ``Series.value_counts``."""
    counts: dict[Any, int] = {}
    for v in series.tolist():
        if not _is_missing_scalar(v):
            counts[v] = counts.get(v, 0) + 1
    ordered = dict(sorted(counts.items(), key=lambda kv: -kv[1]))
    if normalize:
        total = sum(ordered.values())
        return {k: v / total for k, v in ordered.items()}
    return ordered


def reference_factorize(series: Series) -> tuple[np.ndarray, list]:
    """Element-loop ``factorize`` (missing → -1, first-seen uniques)."""
    uniques: list = []
    lookup: dict = {}
    codes = np.empty(len(series), dtype=np.int64)
    for i, v in enumerate(series.tolist()):
        if _is_missing_scalar(v):
            codes[i] = -1
            continue
        if v not in lookup:
            lookup[v] = len(uniques)
            uniques.append(v)
        codes[i] = lookup[v]
    return codes, uniques


def reference_cut(
    series: Series,
    bins: Sequence[float],
    labels: Sequence | None = None,
    right: bool = True,
) -> Series:
    """Element-loop ``cut`` with the inner per-bin scan."""
    edges = list(bins)
    if sorted(edges) != edges:
        raise ValueError("bin edges must be sorted ascending")
    if labels is not None and len(labels) != len(edges) - 1:
        raise ValueError(
            f"expected {len(edges) - 1} labels for {len(edges)} edges, got {len(labels)}"
        )
    out: list = []
    for v in series.tolist():
        if _is_missing_scalar(v):
            out.append(None)
            continue
        x = float(v)
        idx = None
        for b in range(len(edges) - 1):
            lo, hi = edges[b], edges[b + 1]
            if right:
                inside = (lo < x <= hi) or (b == 0 and x == lo)
            else:
                inside = (lo <= x < hi) or (b == len(edges) - 2 and x == hi)
            if inside:
                idx = b
                break
        if idx is None:
            out.append(None)
        elif labels is None:
            out.append(idx)
        else:
            out.append(labels[idx])
    return Series(out, series.name)


def reference_get_dummies(series: Series, prefix: str | None = None, drop_first: bool = False) -> DataFrame:
    """Per-category element-loop one-hot encoding."""
    name = prefix if prefix is not None else (series.name or "col")
    values = series.tolist()
    categories = reference_unique(series)
    if drop_first:
        categories = categories[1:]
    out: dict[str, list[int]] = {}
    for cat in categories:
        out[f"{name}_{cat}"] = [int(v == cat) for v in values]
    return DataFrame(out)


# ----------------------------------------------------------------------
# Group-by: the per-group Python loops
# ----------------------------------------------------------------------
def _reference_groups(frame: DataFrame, keys: Sequence[str]) -> dict[Any, list[int]]:
    key_lists = [frame[k].tolist() for k in keys]
    groups: dict[Any, list[int]] = {}
    for i, key in enumerate(zip(*key_lists)):
        label = key[0] if len(key) == 1 else key
        groups.setdefault(label, []).append(i)
    return groups


def reference_groupby_transform(
    frame: DataFrame, keys: str | Sequence[str], column: str, func: str | Callable
) -> Series:
    """Per-group reduce + broadcast, exactly as the seed implemented it."""
    from repro.dataframe.groupby import resolve_aggregator

    keys = [keys] if isinstance(keys, str) else list(keys)
    reducer = resolve_aggregator(func)
    series = frame[column]
    out = np.empty(len(frame), dtype=object)
    for rows in _reference_groups(frame, keys).values():
        idx = np.asarray(rows)
        sub = Series._from_array(series.values[idx], series.name)
        out[idx] = reducer(sub)
    return Series(out.tolist(), series.name)


def reference_groupby_agg(
    frame: DataFrame, keys: str | Sequence[str], column: str, func: str | Callable
) -> DataFrame:
    """Per-group reduce into a keys + value frame, as the seed implemented it."""
    from repro.dataframe.groupby import resolve_aggregator

    keys = [keys] if isinstance(keys, str) else list(keys)
    reducer = resolve_aggregator(func)
    series = frame[column]
    out: dict[str, list] = {k: [] for k in keys}
    name = series.name or "value"
    out[name] = []
    for label, rows in _reference_groups(frame, keys).items():
        key = (label,) if len(keys) == 1 else label
        for k, v in zip(keys, key):
            out[k].append(v)
        idx = np.asarray(rows)
        sub = Series._from_array(series.values[idx], series.name)
        out[name].append(reducer(sub))
    return DataFrame(out)


# ----------------------------------------------------------------------
# Evaluation harness: the per-element feature-matrix path
# ----------------------------------------------------------------------
def reference_feature_matrix(
    frame: DataFrame, target: str, strict: bool = True
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """``eval.harness.feature_matrix`` built on the loop factorize/numeric paths."""
    from repro.ml.preprocessing import SimpleImputer

    names: list[str] = []
    columns: list[np.ndarray] = []
    for name in frame.columns:
        if name == target:
            continue
        series = frame[name]
        if series.dtype == object:
            codes, _ = reference_factorize(series)
            columns.append(codes.astype(np.float64))
        else:
            out = np.empty(len(series), dtype=np.float64)
            for i, v in enumerate(series.tolist()):
                out[i] = np.nan if _is_missing_scalar(v) else float(v)
            columns.append(out)
        names.append(name)
    if not columns:
        raise ValueError("no feature columns")
    X = np.column_stack(columns)
    if strict and np.isinf(X).any():
        bad = [names[j] for j in range(X.shape[1]) if np.isinf(X[:, j]).any()]
        raise ValueError(f"infinite values in features {bad[:5]} — models cannot fit")
    if not strict:
        X = np.nan_to_num(X, nan=0.0, posinf=1e12, neginf=-1e12)
    elif np.isnan(X).any():
        X = SimpleImputer(strategy="median").fit_transform(X)
    y = frame[target]._numeric().astype(np.int64)
    return X, y, names


#: The element-loop transform sources the codegen emitted before the
#: vectorized data plane — the "generated transform" reference side of the
#: benchmark and equivalence suite.  Keys match the operator tags.
REFERENCE_TRANSFORM_SOURCES: dict[str, str] = {
    "log_transform": (
        "def transform(df):\n"
        "    return (df[{col!r}].clip(0) + 1.0).apply(math.log)\n"
    ),
    "binary_div": (
        "def transform(df):\n"
        "    den = df[{b!r}].apply(lambda v: v if not pd.isna(v) and v != 0 else None)\n"
        "    return df[{a!r}] / den\n"
    ),
    "knowledge_map": (
        "def transform(df):\n"
        "    lookup = {entries}\n"
        "    return df[{col!r}].apply(lambda v: lookup.get(v, {default!r}))\n"
    ),
}
