"""Reshaping helpers: dummies, factorisation, bucketisation, concatenation.

These are the pandas free functions the generated transformations lean on:
``get_dummies`` (unary operator), ``cut`` (bucketisation), ``factorize``
(the paper's pre-processing step), and ``concat`` (harness plumbing).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dataframe import kernels as _kernels
from repro.dataframe.frame import DataFrame
from repro.dataframe.series import Series

__all__ = ["concat", "cut", "factorize", "get_dummies", "qcut", "qcut_params"]


def get_dummies(
    data: Series | DataFrame,
    columns: Sequence[str] | None = None,
    prefix: str | None = None,
    drop_first: bool = False,
) -> DataFrame:
    """One-hot encode a Series, or selected columns of a DataFrame.

    Column names follow pandas: ``{prefix}_{value}`` where the prefix
    defaults to the source column name.  Missing values produce all-zero
    rows.
    """
    if isinstance(data, Series):
        name = prefix if prefix is not None else (data.name or "col")
        codes, categories = _kernels.factorize_values(data.values)
        start = 1 if drop_first else 0
        out: dict[str, np.ndarray] = {}
        for j, cat in enumerate(categories):
            if j < start:
                continue
            out[f"{name}_{cat}"] = (codes == j).astype(np.int64)
        return DataFrame(out)
    frame = data
    targets = list(columns) if columns is not None else frame.categorical_columns()
    result = frame.drop(columns=targets) if targets else frame.copy()
    for col in targets:
        dummies = get_dummies(frame[col], prefix=col, drop_first=drop_first)
        for dummy_col in dummies.columns:
            result[dummy_col] = dummies[dummy_col]
    return result


def factorize(series: Series) -> tuple[np.ndarray, list]:
    """Encode values as integer codes (missing → -1); return ``(codes, uniques)``.

    Vectorised through :func:`repro.dataframe.kernels.factorize_values`
    (``np.unique(return_inverse=True)`` remapped to first-seen order).
    """
    return _kernels.factorize_values(series.values)


def cut(
    series: Series,
    bins: Sequence[float],
    labels: Sequence | None = None,
    right: bool = True,
) -> Series:
    """Bucketise numeric values into intervals defined by *bins* edges.

    With ``labels=None`` the output is the integer bin index (0-based);
    otherwise the corresponding label.  Values outside the outermost edges
    map to missing, matching pandas.
    """
    edges = list(bins)
    if sorted(edges) != edges:
        raise ValueError("bin edges must be sorted ascending")
    if labels is not None and len(labels) != len(edges) - 1:
        raise ValueError(
            f"expected {len(edges) - 1} labels for {len(edges)} edges, got {len(labels)}"
        )
    n_bins = len(edges) - 1
    data = series._numeric()
    missing = np.isnan(data)
    edge_arr = np.asarray(edges, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        if right:
            # edges[i-1] < x <= edges[i]  →  bin i-1; the left edge belongs
            # to the first bin.
            codes = np.searchsorted(edge_arr, data, side="left") - 1
            codes[data == edge_arr[0]] = 0
        else:
            # edges[i-1] <= x < edges[i]  →  bin i-1; the right edge
            # belongs to the last bin.
            codes = np.searchsorted(edge_arr, data, side="right") - 1
            codes[data == edge_arr[-1]] = n_bins - 1
    out_of_range = (codes < 0) | (codes >= n_bins)
    codes[out_of_range | missing] = -1
    choices = list(range(n_bins)) if labels is None else list(labels)
    return Series._from_array(
        _kernels.take_uniques(choices, codes), series.name
    )


def qcut_params(series: Series, q: int) -> tuple[str, np.ndarray | None]:
    """Resolve the quantile bin edges ``qcut`` would use for *series*.

    Returns ``(kind, edges)``: ``("cut", edges)`` for the regular case,
    ``("collapsed", None)`` when duplicate quantiles leave fewer than two
    distinct edges (everything lands in one bin), or ``("empty", None)``
    when there are no present values.  This is the single source of truth
    shared by :func:`qcut` and the FeaturePlan freezer, so a compiled plan
    captures exactly the edges the fitted transform used.
    """
    data = series._numeric()
    present = data[~np.isnan(data)]
    if len(present) == 0:
        return "empty", None
    quantiles = np.quantile(present, np.linspace(0, 1, q + 1))
    # Collapse duplicate edges (heavily tied data) to keep bins valid.
    edges = np.unique(quantiles)
    if len(edges) < 2:
        return "collapsed", None
    edges[0] -= 1e-9
    edges[-1] += 1e-9
    return "cut", edges


def qcut(series: Series, q: int, labels: Sequence | None = None) -> Series:
    """Quantile-based bucketisation into *q* (approximately) equal-count bins."""
    kind, edges = qcut_params(series, q)
    if kind == "empty":
        return Series([None] * len(series), series.name)
    if kind == "collapsed":
        data = series._numeric()
        return Series([0 if not np.isnan(v) else None for v in data], series.name)
    effective_labels = None
    if labels is not None:
        effective_labels = list(labels)[: len(edges) - 1]
    return cut(series, edges.tolist(), labels=effective_labels, right=True)


def concat(frames: Sequence[DataFrame], axis: int = 0) -> DataFrame:
    """Concatenate frames row-wise (``axis=0``) or column-wise (``axis=1``)."""
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame()
    if axis == 1:
        out = frames[0].copy()
        for frame in frames[1:]:
            for col in frame.columns:
                out[col] = frame[col]
        return out
    all_columns: dict[str, None] = {}
    for frame in frames:
        for col in frame.columns:
            all_columns.setdefault(col, None)
    data: dict[str, list] = {col: [] for col in all_columns}
    for frame in frames:
        n = len(frame)
        for col in all_columns:
            if col in frame.columns:
                data[col].extend(frame[col].tolist())
            else:
                data[col].extend([None] * n)
    return DataFrame(data)
