"""Reshaping helpers: dummies, factorisation, bucketisation, concatenation.

These are the pandas free functions the generated transformations lean on:
``get_dummies`` (unary operator), ``cut`` (bucketisation), ``factorize``
(the paper's pre-processing step), and ``concat`` (harness plumbing).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dataframe.frame import DataFrame
from repro.dataframe.series import Series, _is_missing_scalar

__all__ = ["concat", "cut", "factorize", "get_dummies", "qcut"]


def get_dummies(
    data: Series | DataFrame,
    columns: Sequence[str] | None = None,
    prefix: str | None = None,
    drop_first: bool = False,
) -> DataFrame:
    """One-hot encode a Series, or selected columns of a DataFrame.

    Column names follow pandas: ``{prefix}_{value}`` where the prefix
    defaults to the source column name.  Missing values produce all-zero
    rows.
    """
    if isinstance(data, Series):
        name = prefix if prefix is not None else (data.name or "col")
        values = data.tolist()
        categories = data.unique()
        if drop_first:
            categories = categories[1:]
        out: dict[str, list[int]] = {}
        for cat in categories:
            out[f"{name}_{cat}"] = [int(v == cat) for v in values]
        return DataFrame(out)
    frame = data
    targets = list(columns) if columns is not None else frame.categorical_columns()
    result = frame.drop(columns=targets) if targets else frame.copy()
    for col in targets:
        dummies = get_dummies(frame[col], prefix=col, drop_first=drop_first)
        for dummy_col in dummies.columns:
            result[dummy_col] = dummies[dummy_col]
    return result


def factorize(series: Series) -> tuple[np.ndarray, list]:
    """Encode values as integer codes (missing → -1); return ``(codes, uniques)``."""
    uniques: list = []
    lookup: dict = {}
    codes = np.empty(len(series), dtype=np.int64)
    for i, v in enumerate(series.tolist()):
        if _is_missing_scalar(v):
            codes[i] = -1
            continue
        if v not in lookup:
            lookup[v] = len(uniques)
            uniques.append(v)
        codes[i] = lookup[v]
    return codes, uniques


def cut(
    series: Series,
    bins: Sequence[float],
    labels: Sequence | None = None,
    right: bool = True,
) -> Series:
    """Bucketise numeric values into intervals defined by *bins* edges.

    With ``labels=None`` the output is the integer bin index (0-based);
    otherwise the corresponding label.  Values outside the outermost edges
    map to missing, matching pandas.
    """
    edges = list(bins)
    if sorted(edges) != edges:
        raise ValueError("bin edges must be sorted ascending")
    if labels is not None and len(labels) != len(edges) - 1:
        raise ValueError(
            f"expected {len(edges) - 1} labels for {len(edges)} edges, got {len(labels)}"
        )
    out: list = []
    for v in series.tolist():
        if _is_missing_scalar(v):
            out.append(None)
            continue
        x = float(v)
        idx = None
        for b in range(len(edges) - 1):
            lo, hi = edges[b], edges[b + 1]
            if right:
                inside = (lo < x <= hi) or (b == 0 and x == lo)
            else:
                inside = (lo <= x < hi) or (b == len(edges) - 2 and x == hi)
            if inside:
                idx = b
                break
        if idx is None:
            out.append(None)
        elif labels is None:
            out.append(idx)
        else:
            out.append(labels[idx])
    return Series(out, series.name)


def qcut(series: Series, q: int, labels: Sequence | None = None) -> Series:
    """Quantile-based bucketisation into *q* (approximately) equal-count bins."""
    data = series._numeric()
    present = data[~np.isnan(data)]
    if len(present) == 0:
        return Series([None] * len(series), series.name)
    quantiles = np.quantile(present, np.linspace(0, 1, q + 1))
    # Collapse duplicate edges (heavily tied data) to keep bins valid.
    edges = np.unique(quantiles)
    if len(edges) < 2:
        return Series([0 if not np.isnan(v) else None for v in data], series.name)
    edges[0] -= 1e-9
    edges[-1] += 1e-9
    effective_labels = None
    if labels is not None:
        effective_labels = list(labels)[: len(edges) - 1]
    return cut(series, edges.tolist(), labels=effective_labels, right=True)


def concat(frames: Sequence[DataFrame], axis: int = 0) -> DataFrame:
    """Concatenate frames row-wise (``axis=0``) or column-wise (``axis=1``)."""
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame()
    if axis == 1:
        out = frames[0].copy()
        for frame in frames[1:]:
            for col in frame.columns:
                out[col] = frame[col]
        return out
    all_columns: dict[str, None] = {}
    for frame in frames:
        for col in frame.columns:
            all_columns.setdefault(col, None)
    data: dict[str, list] = {col: [] for col in all_columns}
    for frame in frames:
        n = len(frame)
        for col in all_columns:
            if col in frame.columns:
                data[col].extend(frame[col].tolist())
            else:
                data[col].extend([None] * n)
    return DataFrame(data)
