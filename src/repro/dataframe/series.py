"""One-dimensional labelled array: the :class:`Series` type.

A :class:`Series` wraps a numpy array plus a name.  Numeric data is kept in
native numpy dtypes (``float64``/``int64``/``bool``); strings and mixed data
live in ``object`` arrays.  Missing values are ``NaN`` for floats and
``None`` for objects; :meth:`Series.isna` treats both uniformly.
"""

from __future__ import annotations

import datetime as _dt
import math
from collections.abc import Callable, Iterable, Mapping
from typing import Any

import numpy as np

from repro.dataframe import kernels as _kernels

__all__ = ["Series"]

#: Missing-value scalar check, shared with the kernels module.
_is_missing_scalar = _kernels.is_missing_scalar

#: Missing-value mask, shared with the kernels module.
_isna_array = _kernels.missing_mask


def _coerce_values(values: Any) -> np.ndarray:
    """Coerce arbitrary input into a 1-D numpy array with a sensible dtype.

    Lists of numbers become ``int64``/``float64``; anything containing
    strings or mixed types becomes an ``object`` array with ``None`` for
    missing entries.  Lists are classified in a single pass
    (:func:`repro.dataframe.kernels.coerce_listlike`).
    """
    if isinstance(values, Series):
        return values.to_numpy().copy()
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ValueError(f"Series data must be 1-dimensional, got shape {values.shape}")
        if values.dtype.kind in "US":  # fixed-width strings -> object storage
            return values.astype(object)
        return values.copy()
    return _kernels.coerce_listlike(list(values))


#: Unary ufunc stand-ins for the ``math`` functions generated code applies
#: element-wise.  ``math.floor``/``math.ceil`` are deliberately absent:
#: they return ``int`` where the numpy versions return ``float64``.
_UFUNC_EQUIVALENTS: dict[Any, np.ufunc] = {
    math.log: np.log,
    math.log2: np.log2,
    math.log10: np.log10,
    math.log1p: np.log1p,
    math.exp: np.exp,
    math.expm1: np.expm1,
    math.sqrt: np.sqrt,
    math.sin: np.sin,
    math.cos: np.cos,
    math.tan: np.tan,
    math.tanh: np.tanh,
    math.fabs: np.fabs,
    abs: np.abs,
}


def _as_unary_ufunc(func: Any) -> np.ufunc | None:
    """A vectorisable stand-in for *func*, or ``None`` to run the loop."""
    if isinstance(func, np.ufunc) and func.nin == 1:
        return func
    try:
        return _UFUNC_EQUIVALENTS.get(func)
    except TypeError:  # unhashable callable
        return None


class Series:
    """A named 1-D column of data with vectorised operations.

    Parameters
    ----------
    data:
        Any 1-D iterable (list, numpy array, another Series, or a scalar
        broadcast via ``length``).
    name:
        Optional column name carried through operations.
    """

    __slots__ = ("_values", "name", "_grouping_cache")

    def __init__(self, data: Any, name: str | None = None) -> None:
        self._values = _coerce_values(data)
        self.name = name
        self._grouping_cache = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_array(cls, values: np.ndarray, name: str | None = None) -> "Series":
        """Build a Series without re-coercing *values* (internal fast path)."""
        out = cls.__new__(cls)
        out._values = values
        out.name = name
        out._grouping_cache = None
        return out

    @classmethod
    def full(cls, length: int, fill_value: Any, name: str | None = None) -> "Series":
        """Return a Series of *length* copies of *fill_value*."""
        return cls([fill_value] * length, name=name)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = ", ".join(repr(v) for v in self.tolist()[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Series(name={self.name!r}, n={len(self)}, [{shown}{suffix}])"

    @property
    def values(self) -> np.ndarray:
        """The underlying numpy array (no copy).

        Writing into this buffer directly bypasses the bookkeeping
        :meth:`__setitem__` performs (notably :meth:`grouping` cache
        invalidation) — mutate through the Series, not the array.
        """
        return self._values

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    @property
    def empty(self) -> bool:
        return len(self._values) == 0

    def to_numpy(self, dtype: Any = None) -> np.ndarray:
        """Return the data as a numpy array, optionally cast to *dtype*."""
        if dtype is None:
            return self._values
        return self._values.astype(dtype)

    def tolist(self) -> list:
        """Return the data as a plain Python list (numpy scalars unboxed)."""
        return [v.item() if isinstance(v, np.generic) else v for v in self._values]

    def copy(self) -> "Series":
        return Series._from_array(self._values.copy(), self.name)

    def rename(self, name: str) -> "Series":
        """Return a copy of the Series carrying *name*."""
        return Series._from_array(self._values.copy(), name)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, Series):
            key = key.to_numpy()
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return Series._from_array(self._values[key], self.name)
        if isinstance(key, (list, np.ndarray)):
            idx = np.asarray(key)
            if idx.dtype == bool:
                return Series._from_array(self._values[idx], self.name)
            return Series._from_array(self._values[idx.astype(np.int64)], self.name)
        if isinstance(key, slice):
            return Series._from_array(self._values[key], self.name)
        value = self._values[int(key)]
        return value.item() if isinstance(value, np.generic) else value

    def __setitem__(self, key: Any, value: Any) -> None:
        self._grouping_cache = None  # in-place mutation invalidates grouping
        if isinstance(key, Series):
            key = key.to_numpy()
        if self._values.dtype.kind in "if" and isinstance(value, (int, float, np.number)):
            if self._values.dtype.kind == "i" and (
                isinstance(value, float) and not float(value).is_integer()
            ):
                self._values = self._values.astype(np.float64)
        elif self._values.dtype.kind in "if" and _is_missing_scalar(value):
            self._values = self._values.astype(np.float64)
            value = np.nan
        elif self._values.dtype != object and not isinstance(value, (int, float, bool, np.number)):
            self._values = self._values.astype(object)
        self._values[key] = value

    def head(self, n: int = 5) -> "Series":
        return self[: n]

    def sample(self, n: int, seed: int = 0) -> "Series":
        """Return *n* rows sampled without replacement using *seed*."""
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=min(n, len(self)), replace=False)
        return Series._from_array(self._values[np.sort(idx)], self.name)

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------
    def grouping(self):
        """This column's sorted grouping, computed once and cached.

        Returns :func:`repro.dataframe.kernels.sorted_grouping`'s
        ``(order, starts, inverse)`` — or ``None`` when the column needs
        the hash path (missing keys, unorderable values).  Group-bys
        dominate the high-order operator's transforms and the same key
        column is re-grouped for every candidate feature, so the cache
        turns the per-group-by sort (and, for string keys, the S-encode
        packing that dominates it) into a one-time cost per column.  The
        cached arrays are shared across group-bys and marked read-only;
        mutation through :meth:`__setitem__` invalidates the cache (the
        entry is also keyed on the backing array's identity, so a
        swapped-out buffer can never serve a stale grouping).  Writing
        into the exposed :attr:`values` buffer directly is the one
        mutation the cache cannot see — see that property's docstring.
        """
        if self._grouping_cache is None or self._grouping_cache[1] is not self._values:
            grouped = _kernels.sorted_grouping(self._values)
            if grouped is not None:
                for arr in grouped:
                    arr.flags.writeable = False
            self._grouping_cache = (grouped, self._values)
        return self._grouping_cache[0]

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def isna(self) -> "Series":
        """Boolean mask of missing entries (NaN or ``None``)."""
        return Series._from_array(_isna_array(self._values), self.name)

    def notna(self) -> "Series":
        return Series._from_array(~_isna_array(self._values), self.name)

    isnull = isna
    notnull = notna

    def dropna(self) -> "Series":
        """Return the Series with missing entries removed (positions renumber)."""
        mask = ~_isna_array(self._values)
        return Series._from_array(self._values[mask], self.name)

    def fillna(self, value: Any) -> "Series":
        """Return a copy with missing entries replaced by *value*."""
        mask = _isna_array(self._values)
        if not mask.any():
            return self.copy()
        if self._values.dtype.kind == "f" and isinstance(value, (int, float, np.number)):
            out = self._values.copy()
            out[mask] = float(value)
            return Series._from_array(out, self.name)
        out = self._values.astype(object)
        out[mask] = value
        return Series(out, self.name)

    # ------------------------------------------------------------------
    # Element-wise transforms
    # ------------------------------------------------------------------
    def _apply_ufunc(self, ufunc: np.ufunc, exact_errors: bool) -> np.ndarray | None:
        """Run *ufunc* over the numeric values, or ``None`` to use the loop.

        With ``exact_errors`` the call runs under raising errstate so a
        domain violation (``log(0)``, ``exp`` overflow …) falls back to the
        element loop, which raises exactly what the scalar ``math``
        function would have raised.
        """
        if self._values.dtype.kind not in "if":
            return None
        try:
            if exact_errors:
                with np.errstate(divide="raise", invalid="raise", over="raise", under="ignore"):
                    return ufunc(self._values)
            return ufunc(self._values)
        except FloatingPointError:
            return None

    def map(self, mapper: Callable[[Any], Any] | Mapping[Any, Any]) -> "Series":
        """Apply *mapper* (callable or dict) element-wise.

        Dict mappers translate unmapped keys to ``None``, matching pandas.
        Missing inputs propagate as missing without invoking the mapper.
        Dict mappers and recognised ufuncs run vectorised (each distinct
        value is looked up once); other callables run the element loop.
        """
        if isinstance(mapper, Mapping):
            try:
                codes, uniques = _kernels.factorize_values(self._values)
                mapped = [mapper.get(u) for u in uniques]
            except TypeError:  # unhashable values: surface the same error shape
                return Series(
                    [None if _is_missing_scalar(v) else mapper.get(v) for v in self.tolist()],
                    self.name,
                )
            return Series._from_array(_kernels.take_uniques(mapped, codes), self.name)
        ufunc = _as_unary_ufunc(mapper)
        if ufunc is not None:
            out = self._apply_ufunc(ufunc, exact_errors=mapper is not ufunc)
            # Missing inputs must stay missing without invoking the mapper;
            # only a float result can represent that vectorised.
            if out is not None and (
                self._values.dtype.kind != "f"
                or out.dtype.kind == "f"
                or not np.isnan(self._values).any()
            ):
                if self._values.dtype.kind == "f" and out.dtype.kind == "f":
                    out = np.where(np.isnan(self._values), np.nan, out)
                return Series._from_array(_kernels.match_coerce_float(out), self.name)
        out = [None if _is_missing_scalar(v) else mapper(v) for v in self.tolist()]
        return Series(out, self.name)

    def apply(self, func: Callable[[Any], Any]) -> "Series":
        """Apply *func* to every element, including missing ones.

        Numpy ufuncs — and the ``math`` functions with exact ufunc
        equivalents — dispatch to one vectorised call on numeric dtypes;
        anything else runs the element loop.
        """
        ufunc = _as_unary_ufunc(func)
        if ufunc is not None:
            out = self._apply_ufunc(ufunc, exact_errors=func is not ufunc)
            if out is not None:
                return Series._from_array(_kernels.match_coerce_float(out), self.name)
        return Series([func(v) for v in self.tolist()], self.name)

    def astype(self, dtype: Any) -> "Series":
        """Cast to *dtype* (``float``, ``int``, ``str``, ``bool`` or numpy dtype)."""
        kind = self._values.dtype.kind
        if dtype in (str, "str", "string"):
            if kind in "ib":
                return Series._from_array(
                    self._values.astype(str).astype(object), self.name
                )
            return Series(
                [None if _is_missing_scalar(v) else str(v) for v in self.tolist()], self.name
            )
        if dtype in (float, "float", "float64"):
            if kind in "ifb":
                return Series._from_array(
                    _kernels.match_coerce_float(self._values.astype(np.float64)), self.name
                )
            return Series(
                [np.nan if _is_missing_scalar(v) else float(v) for v in self.tolist()], self.name
            )
        if dtype in (int, "int", "int64"):
            if kind == "f":
                if np.isnan(self._values).any():
                    raise ValueError("cannot convert float NaN to integer")
                if np.isinf(self._values).any():
                    raise OverflowError("cannot convert float infinity to integer")
                if not (np.abs(self._values) < 2.0**63).all():
                    # Out of int64 range: the loop raises the exact error.
                    return Series([int(v) for v in self.tolist()], self.name)
                return Series._from_array(self._values.astype(np.int64), self.name)
            if kind in "ib":
                return Series._from_array(self._values.astype(np.int64), self.name)
            return Series([int(v) for v in self.tolist()], self.name)
        if dtype in (bool, "bool"):
            if kind in "ifb":
                return Series._from_array(self._values.astype(bool), self.name)
            return Series([bool(v) for v in self.tolist()], self.name)
        return Series._from_array(self._values.astype(dtype), self.name)

    def clip(self, lower: float | None = None, upper: float | None = None) -> "Series":
        """Bound values to ``[lower, upper]``; missing values pass through."""
        out = self._numeric().copy()
        if lower is not None:
            out = np.where(np.isnan(out), out, np.maximum(out, lower))
        if upper is not None:
            out = np.where(np.isnan(out), out, np.minimum(out, upper))
        return Series._from_array(out, self.name)

    def round(self, decimals: int = 0) -> "Series":
        return Series._from_array(np.round(self._numeric(), decimals), self.name)

    def abs(self) -> "Series":
        return Series._from_array(np.abs(self._numeric()), self.name)

    def replace(self, mapping: Mapping[Any, Any]) -> "Series":
        """Replace exact values per *mapping*; unmapped values pass through."""
        return Series(
            [mapping.get(v, v) if not _is_missing_scalar(v) else None for v in self.tolist()],
            self.name,
        )

    def shift(self, periods: int = 1) -> "Series":
        """Shift values by *periods* positions, filling vacated slots with NaN."""
        values = self.tolist()
        if periods >= 0:
            shifted = [None] * min(periods, len(values)) + values[: max(len(values) - periods, 0)]
        else:
            shifted = values[-periods:] + [None] * min(-periods, len(values))
        return Series(shifted, self.name)

    def where(self, cond: "Series | np.ndarray", other: Any = None) -> "Series":
        """Keep values where *cond* holds, replace the rest with *other*."""
        mask = cond.to_numpy() if isinstance(cond, Series) else np.asarray(cond)
        kind = self._values.dtype.kind
        if kind in "if" and mask.dtype == bool and len(mask) == len(self._values):
            if kind == "i" and mask.all():
                # Nothing is replaced: the loop coerces the surviving ints
                # back to int64 regardless of what `other` would have been.
                if other is None or isinstance(other, (int, float, np.number)):
                    return Series._from_array(self._values.copy(), self.name)
            if other is None:
                out = np.where(mask, self._values.astype(np.float64), np.nan)
                return Series._from_array(_kernels.match_coerce_float(out), self.name)
            if isinstance(other, (int, np.integer)) and not isinstance(other, (bool, np.bool_)):
                if kind == "i":
                    return Series._from_array(
                        np.where(mask, self._values, np.int64(other)), self.name
                    )
                if mask.any():  # else no float survives: the loop coerces to int64
                    out = np.where(mask, self._values, float(other))
                    return Series._from_array(_kernels.match_coerce_float(out), self.name)
            if isinstance(other, (float, np.floating)):
                out = np.where(mask, self._values.astype(np.float64), float(other))
                return Series._from_array(_kernels.match_coerce_float(out), self.name)
        out = [v if m else other for v, m in zip(self.tolist(), mask)]
        return Series(out, self.name)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _numeric(self) -> np.ndarray:
        """Return the values as ``float64`` (object arrays convert, missing→NaN).

        Float64 input returns the live buffer (no copy) — treat the result
        as read-only; every in-place consumer copies first (``clip``).
        """
        if self._values.dtype.kind in "ifb":
            return self._values.astype(np.float64, copy=False)
        try:
            # Object arrays cast in one C pass: float() per element with
            # None → NaN, identical to the loop below for convertible data.
            return self._values.astype(np.float64)
        except (TypeError, ValueError):
            pass
        out = np.empty(len(self._values), dtype=np.float64)
        for i, v in enumerate(self._values):
            if _is_missing_scalar(v):
                out[i] = np.nan
            else:
                out[i] = float(v)
        return out

    def _numeric_nonmissing(self) -> np.ndarray:
        data = self._numeric()
        return data[~np.isnan(data)]

    def sum(self) -> float:
        data = self._numeric_nonmissing()
        return float(data.sum()) if len(data) else 0.0

    def mean(self) -> float:
        data = self._numeric_nonmissing()
        return float(data.mean()) if len(data) else float("nan")

    def median(self) -> float:
        data = self._numeric_nonmissing()
        return float(np.median(data)) if len(data) else float("nan")

    def std(self, ddof: int = 1) -> float:
        data = self._numeric_nonmissing()
        if len(data) <= ddof:
            return float("nan")
        return float(data.std(ddof=ddof))

    def var(self, ddof: int = 1) -> float:
        data = self._numeric_nonmissing()
        if len(data) <= ddof:
            return float("nan")
        return float(data.var(ddof=ddof))

    def min(self) -> Any:
        if self._values.dtype.kind in "ifb":
            data = self._numeric_nonmissing()
            return float(data.min()) if len(data) else float("nan")
        present = [v for v in self.tolist() if not _is_missing_scalar(v)]
        return min(present) if present else None

    def max(self) -> Any:
        if self._values.dtype.kind in "ifb":
            data = self._numeric_nonmissing()
            return float(data.max()) if len(data) else float("nan")
        present = [v for v in self.tolist() if not _is_missing_scalar(v)]
        return max(present) if present else None

    def quantile(self, q: float) -> float:
        data = self._numeric_nonmissing()
        return float(np.quantile(data, q)) if len(data) else float("nan")

    def count(self) -> int:
        """Number of non-missing entries."""
        return int((~_isna_array(self._values)).sum())

    def _counts_first_seen(self) -> tuple[list, np.ndarray]:
        """``(uniques, counts)`` over non-missing values in first-seen order."""
        codes, uniques = _kernels.factorize_values(self._values)
        present = codes[codes >= 0]
        counts = np.bincount(present, minlength=len(uniques)) if len(uniques) else np.zeros(0, np.int64)
        return uniques, counts

    def nunique(self, dropna: bool = True) -> int:
        if dropna:
            _, counts = self._counts_first_seen()
            return len(counts)
        # NaN markers are identity-distinct in a set, so keep the exact loop.
        return len(set(self.tolist()))

    def unique(self) -> list:
        """Distinct non-missing values in first-seen order."""
        uniques, _ = self._counts_first_seen()
        return uniques

    def mode(self) -> Any:
        """Most frequent non-missing value (ties break on first-seen order)."""
        uniques, counts = self._counts_first_seen()
        if not uniques:
            return None
        return uniques[int(np.argmax(counts))]

    def value_counts(self, normalize: bool = False) -> dict:
        """Frequency table of non-missing values, most frequent first."""
        uniques, counts = self._counts_first_seen()
        # Stable sort on -count keeps first-seen order among ties, exactly
        # like sorting the insertion-ordered dict.
        order = np.argsort(-counts, kind="stable")
        if normalize:
            total = float(counts.sum())
            return {uniques[i]: int(counts[i]) / total for i in order}
        return {uniques[i]: int(counts[i]) for i in order}

    def idxmax(self) -> int:
        data = self._numeric()
        return int(np.nanargmax(data))

    def idxmin(self) -> int:
        data = self._numeric()
        return int(np.nanargmin(data))

    def any(self) -> bool:
        return bool(np.asarray(self._values, dtype=bool).any())

    def all(self) -> bool:
        return bool(np.asarray(self._values, dtype=bool).all())

    def cumsum(self) -> "Series":
        return Series._from_array(np.nancumsum(self._numeric()), self.name)

    def rank(self) -> "Series":
        """Average-method ranks of the values (1-based), NaN stays NaN."""
        from scipy import stats

        data = self._numeric()
        ranks = np.full(len(data), np.nan)
        present = ~np.isnan(data)
        if present.any():
            ranks[present] = stats.rankdata(data[present], method="average")
        return Series._from_array(ranks, self.name)

    def corr(self, other: "Series") -> float:
        """Pearson correlation with *other* over jointly non-missing rows."""
        a, b = self._numeric(), other._numeric()
        mask = ~(np.isnan(a) | np.isnan(b))
        if mask.sum() < 2:
            return float("nan")
        a, b = a[mask], b[mask]
        if a.std() == 0 or b.std() == 0:
            return float("nan")
        return float(np.corrcoef(a, b)[0, 1])

    def sort_values(self, ascending: bool = True) -> "Series":
        order = np.argsort(self._numeric() if self.dtype.kind in "ifb" else self._values)
        if not ascending:
            order = order[::-1]
        return Series._from_array(self._values[order], self.name)

    # ------------------------------------------------------------------
    # Arithmetic and comparisons
    # ------------------------------------------------------------------
    def _binary_numeric(self, other: Any, op: Callable) -> "Series":
        left = self._numeric()
        if isinstance(other, Series):
            right = other._numeric()
            if len(left) != len(right):
                raise ValueError(
                    f"Series length mismatch: {len(left)} vs {len(right)}"
                )
        else:
            right = float(other)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            out = op(left, right)
        return Series._from_array(np.asarray(out, dtype=np.float64), self.name)

    def __add__(self, other: Any) -> "Series":
        if self.dtype == object or (isinstance(other, Series) and other.dtype == object):
            right = other.tolist() if isinstance(other, Series) else [other] * len(self)
            return Series([a + b for a, b in zip(self.tolist(), right)], self.name)
        return self._binary_numeric(other, np.add)

    def __radd__(self, other: Any) -> "Series":
        if self.dtype == object:
            return Series([other + a for a in self.tolist()], self.name)
        return self._binary_numeric(other, np.add)

    def __sub__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.subtract)

    def __rsub__(self, other: Any) -> "Series":
        return self._binary_numeric(other, lambda a, b: np.subtract(b, a))

    def __mul__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.multiply)

    def __rmul__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.multiply)

    def __truediv__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.divide)

    def __rtruediv__(self, other: Any) -> "Series":
        return self._binary_numeric(other, lambda a, b: np.divide(b, a))

    def __floordiv__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.floor_divide)

    def __mod__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.mod)

    def __pow__(self, other: Any) -> "Series":
        return self._binary_numeric(other, np.power)

    def __neg__(self) -> "Series":
        return Series._from_array(-self._numeric(), self.name)

    def _compare(self, other: Any, op: Callable) -> "Series":
        if self.dtype == object and not isinstance(other, (int, float, np.number)):
            right = other.tolist() if isinstance(other, Series) else [other] * len(self)
            out = np.array(
                [
                    False
                    if (_is_missing_scalar(a) or _is_missing_scalar(b))
                    else bool(op(a, b))
                    for a, b in zip(self.tolist(), right)
                ],
                dtype=bool,
            )
            return Series._from_array(out, self.name)
        left = self._numeric()
        right = other._numeric() if isinstance(other, Series) else float(other)
        with np.errstate(invalid="ignore"):
            out = op(left, right)
        return Series._from_array(np.asarray(out, dtype=bool), self.name)

    def __eq__(self, other: Any) -> "Series":  # type: ignore[override]
        if self.dtype == object or isinstance(other, str):
            right = other.tolist() if isinstance(other, Series) else [other] * len(self)
            out = np.array([a == b for a, b in zip(self.tolist(), right)], dtype=bool)
            return Series._from_array(out, self.name)
        return self._compare(other, np.equal)

    def __ne__(self, other: Any) -> "Series":  # type: ignore[override]
        eq = self.__eq__(other)
        return Series._from_array(~eq.to_numpy(), self.name)

    def __lt__(self, other: Any) -> "Series":
        return self._compare(other, np.less)

    def __le__(self, other: Any) -> "Series":
        return self._compare(other, np.less_equal)

    def __gt__(self, other: Any) -> "Series":
        return self._compare(other, np.greater)

    def __ge__(self, other: Any) -> "Series":
        return self._compare(other, np.greater_equal)

    def __and__(self, other: Any) -> "Series":
        right = other.to_numpy() if isinstance(other, Series) else np.asarray(other)
        return Series._from_array(
            np.asarray(self._values, dtype=bool) & np.asarray(right, dtype=bool), self.name
        )

    def __or__(self, other: Any) -> "Series":
        right = other.to_numpy() if isinstance(other, Series) else np.asarray(other)
        return Series._from_array(
            np.asarray(self._values, dtype=bool) | np.asarray(right, dtype=bool), self.name
        )

    def __invert__(self) -> "Series":
        return Series._from_array(~np.asarray(self._values, dtype=bool), self.name)

    def __hash__(self) -> int:  # Series are mutable; identity hash like pandas
        return id(self)

    def isin(self, values: Iterable[Any]) -> "Series":
        """Boolean mask of membership in *values*."""
        lookup = set(values)
        if self._values.dtype.kind in "if" and all(
            isinstance(v, (int, float, np.integer, np.floating))
            and not isinstance(v, (bool, np.bool_))
            and not _is_missing_scalar(v)
            and abs(v) < 2.0**53  # exact as float64, so == semantics match
            for v in lookup
        ):
            data = self._values.astype(np.float64)
            if len(data) == 0 or bool((np.abs(data[~np.isnan(data)]) < 2.0**53).all()):
                table = np.array(sorted(float(v) for v in lookup), dtype=np.float64)
                out = np.isin(data, table)
                return Series._from_array(out, self.name)
        out = np.array(
            [not _is_missing_scalar(v) and v in lookup for v in self.tolist()], dtype=bool
        )
        return Series._from_array(out, self.name)

    def between(self, left: float, right: float, inclusive: bool = True) -> "Series":
        """Boolean mask of values within ``[left, right]``."""
        data = self._numeric()
        with np.errstate(invalid="ignore"):
            if inclusive:
                out = (data >= left) & (data <= right)
            else:
                out = (data > left) & (data < right)
        return Series._from_array(out, self.name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def str(self) -> "StringAccessor":
        """Vectorised string methods (``s.str.lower()``, ``s.str.split()``…)."""
        return StringAccessor(self)

    @property
    def dt(self) -> "DatetimeAccessor":
        """Datetime component access for ISO-format strings or date objects."""
        return DatetimeAccessor(self)


class StringAccessor:
    """Namespace of vectorised string operations, mirroring ``pandas.Series.str``."""

    def __init__(self, series: Series) -> None:
        self._series = series

    def _map(self, func: Callable[[str], Any]) -> Series:
        return Series(
            [None if _is_missing_scalar(v) else func(str(v)) for v in self._series.tolist()],
            self._series.name,
        )

    def lower(self) -> Series:
        return self._map(str.lower)

    def upper(self) -> Series:
        return self._map(str.upper)

    def strip(self) -> Series:
        return self._map(str.strip)

    def len(self) -> Series:
        return self._map(len)

    def title(self) -> Series:
        return self._map(str.title)

    def contains(self, pattern: str, case: bool = True) -> Series:
        if case:
            return self._map(lambda s: pattern in s).fillna(False)
        return self._map(lambda s: pattern.lower() in s.lower()).fillna(False)

    def startswith(self, prefix: str) -> Series:
        return self._map(lambda s: s.startswith(prefix)).fillna(False)

    def endswith(self, suffix: str) -> Series:
        return self._map(lambda s: s.endswith(suffix)).fillna(False)

    def replace(self, old: str, new: str) -> Series:
        return self._map(lambda s: s.replace(old, new))

    def split(self, sep: str, expand: bool = False):
        """Split on *sep*; ``expand=True`` returns a DataFrame of parts."""
        parts = self._map(lambda s: s.split(sep))
        if not expand:
            return parts
        from repro.dataframe.frame import DataFrame

        width = max((len(p) for p in parts.tolist() if p is not None), default=0)
        columns = {}
        for i in range(width):
            columns[i] = [
                (p[i] if p is not None and i < len(p) else None) for p in parts.tolist()
            ]
        return DataFrame(columns)

    def get(self, index: int) -> Series:
        """Element *index* of each value (for list-valued or string Series)."""
        def pick(value):
            if _is_missing_scalar(value):
                return None
            try:
                return value[index]
            except (IndexError, KeyError):
                return None

        return Series([pick(v) for v in self._series.tolist()], self._series.name)

    def slice(self, start: int | None = None, stop: int | None = None) -> Series:
        return self._map(lambda s: s[start:stop])

    def zfill(self, width: int) -> Series:
        return self._map(lambda s: s.zfill(width))

    def cat(self, other: Series, sep: str = "") -> Series:
        """Concatenate element-wise with *other* using *sep*."""
        return Series(
            [
                None if (_is_missing_scalar(a) or _is_missing_scalar(b)) else f"{a}{sep}{b}"
                for a, b in zip(self._series.tolist(), other.tolist())
            ],
            self._series.name,
        )


def _parse_datetime(value: Any) -> _dt.datetime | None:
    """Best-effort parse of *value* into a datetime (ISO strings, date objects)."""
    if _is_missing_scalar(value):
        return None
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day)
    text = str(value).strip()
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d", "%Y/%m/%d", "%m/%d/%Y", "%d-%m-%Y"):
        try:
            return _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise ValueError(f"cannot parse datetime from {value!r}")


class DatetimeAccessor:
    """Namespace of datetime component extractors, mirroring ``Series.dt``."""

    def __init__(self, series: Series) -> None:
        self._series = series

    def _component(self, func: Callable[[_dt.datetime], Any]) -> Series:
        out = []
        for v in self._series.tolist():
            parsed = _parse_datetime(v)
            out.append(None if parsed is None else func(parsed))
        return Series(out, self._series.name)

    @property
    def year(self) -> Series:
        return self._component(lambda d: d.year)

    @property
    def month(self) -> Series:
        return self._component(lambda d: d.month)

    @property
    def day(self) -> Series:
        return self._component(lambda d: d.day)

    @property
    def dayofweek(self) -> Series:
        return self._component(lambda d: d.weekday())

    @property
    def quarter(self) -> Series:
        return self._component(lambda d: (d.month - 1) // 3 + 1)

    @property
    def dayofyear(self) -> Series:
        return self._component(lambda d: d.timetuple().tm_yday)
