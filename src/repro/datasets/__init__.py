"""Seeded synthetic versions of the paper's eight Kaggle datasets.

The paper evaluates on eight public binary-classification datasets
(Table 3).  Kaggle is unreachable here, so each dataset is regenerated
synthetically with (a) the *schema* of Table 3 — same categorical/numeric
attribute counts, row counts, and field — and (b) *planted signal
structure* chosen so each automated-feature-engineering method can find
exactly the kind of structure the paper reports it exploiting:

========  ===========================================================
Dataset   Planted structure (what feature engineering can recover)
========  ===========================================================
diabetes  threshold effects on Glucose/BMI/Age (unary bucketisation);
          zero-inflated Insulin/SkinThickness so unguarded divisions
          produce non-finite values (CAAFE's Diabetes failure)
heart     pulse pressure = SysBP − DiaBP (binary), clinical BP bands
bank      near-linear signal in the original features — feature
          engineering barely helps (the paper's "well-constructed")
adult     group-level effects (occupation/education rates: high-order),
          heavy-tailed capital gains (unary log), hours×education
housing   ratio features: rooms/household, population/household
          (binary division), ocean-proximity group effect
lawschool near-linear signal in LSAT/UGPA/deciles — flat, like bank
west_nile species risk (high-order group rate), seasonal week bands,
          city population density only available as world knowledge
          (extractor)
tennis    paired-stat differentials (binary), serve-dominance
          composite (extractor); no categoricals, so high-order has
          nothing to group by (Table 7's flat "+High-order")
========  ===========================================================

Crucially, knowledge-driven effects (city densities, car-make risk) are
drawn from the *same* :mod:`repro.fm.knowledge` store the simulated FM
uses, so knowledge-based features genuinely correlate with the target for
the same mechanistic reason they do with a real FM.
"""

from repro.datasets.registry import DATASET_NAMES, dataset_info, list_datasets, load_dataset
from repro.datasets.schema import DatasetBundle, DatasetSpec

__all__ = [
    "DATASET_NAMES",
    "DatasetBundle",
    "DatasetSpec",
    "dataset_info",
    "list_datasets",
    "load_dataset",
]
