"""Adult (census-income-style): 30,163 rows, 8 categorical + 6 numeric, Society.

Planted structure — the dataset where SMARTFEAT gains most (+13.3%):

* strong *group-level* income rates by occupation and education
  (high-order GroupByThenAgg recovers them);
* heavy-tailed capital gains where ``log`` (unary) linearises the effect;
* an hours×education interaction (binary product);
* age bands (unary bucketisation).

Raw linear models see little of this, so the initial AUC is modest and
operator-guided feature engineering lifts it substantially.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import bucket_effect, sample_labels, standardize
from repro.fm.knowledge import DOMAIN_THRESHOLDS

SPEC = DatasetSpec(
    name="adult",
    n_categorical=8,
    n_numeric=6,
    n_rows=30163,
    field="Society",
    target="HighIncome",
    paper_initial_auc_avg=76.81,
)

DESCRIPTIONS = {
    "WorkClass": "Employment class of the worker",
    "EducationLevel": "Highest education level attained",
    "MaritalStatus": "Marital status",
    "Occupation": "Occupation category",
    "Relationship": "Household relationship status",
    "Race": "Race of the worker",
    "Sex": "Sex of the worker",
    "NativeRegion": "Region of origin",
    "Age": "Age of the worker in years",
    "FnlWgt": "Census final sampling weight",
    "EducationYears": "Number of years of education completed",
    "CapitalGain": "Capital gains recorded in dollars",
    "HoursPerWeek": "Hours worked per week",
}

_OCCUPATIONS = [
    "exec-managerial", "prof-specialty", "tech-support", "sales",
    "craft-repair", "adm-clerical", "machine-op", "transport",
    "farming-fishing", "handlers-cleaners", "other-service", "priv-house-serv",
]
#: Latent per-occupation income propensity (group effect to be recovered).
_OCC_EFFECT = {
    "exec-managerial": 1.4, "prof-specialty": 1.3, "tech-support": 0.7,
    "sales": 0.5, "craft-repair": 0.1, "adm-clerical": 0.0, "machine-op": -0.3,
    "transport": -0.2, "farming-fishing": -0.7, "handlers-cleaners": -0.9,
    "other-service": -1.0, "priv-house-serv": -1.3,
}
_EDU_LEVELS = ["dropout", "highschool", "some-college", "bachelors", "masters", "doctorate"]
_EDU_EFFECT = {"dropout": -1.2, "highschool": -0.5, "some-college": 0.0,
               "bachelors": 0.7, "masters": 1.1, "doctorate": 1.5}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Adult dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 404])
    workclass = rng.choice(["private", "self-employed", "federal-gov", "state-gov", "local-gov"],
                           size=n, p=[0.73, 0.11, 0.04, 0.05, 0.07])
    education = rng.choice(_EDU_LEVELS, size=n, p=[0.12, 0.32, 0.26, 0.18, 0.09, 0.03])
    marital = rng.choice(["married", "never-married", "divorced", "widowed"],
                         size=n, p=[0.47, 0.33, 0.15, 0.05])
    occupation = rng.choice(_OCCUPATIONS, size=n)
    relationship = rng.choice(["husband", "wife", "own-child", "not-in-family", "unmarried"],
                              size=n, p=[0.4, 0.05, 0.15, 0.26, 0.14])
    race = rng.choice(["white", "black", "asian-pac", "amer-indian", "other"],
                      size=n, p=[0.85, 0.09, 0.03, 0.01, 0.02])
    sex = rng.choice(["male", "female"], size=n, p=[0.67, 0.33])
    native = rng.choice(["north-america", "latin-america", "europe", "asia"],
                        size=n, p=[0.9, 0.05, 0.02, 0.03])
    age = np.clip(rng.gamma(7.0, 5.6, size=n), 17, 90).round(0)
    fnlwgt = np.clip(rng.gamma(4.0, 47000, size=n), 12000, 1.5e6).round(0)
    edu_years = np.array([{"dropout": 8, "highschool": 12, "some-college": 13,
                           "bachelors": 16, "masters": 18, "doctorate": 21}[e] for e in education], dtype=float)
    has_gain = rng.uniform(size=n) < 0.09
    capital_gain = np.where(has_gain, rng.lognormal(8.2, 1.1, size=n), 0.0).round(0)
    hours = np.clip(rng.normal(40, 12, size=n), 1, 99).round(0)

    occ_effect = np.array([_OCC_EFFECT[o] for o in occupation])
    edu_effect = np.array([_EDU_EFFECT[e] for e in education])
    logit = (
        1.3 * occ_effect
        + 1.1 * edu_effect
        + 1.2 * standardize(np.log1p(capital_gain))
        + 0.8 * standardize(hours * edu_years)
        + 0.9 * bucket_effect(age, DOMAIN_THRESHOLDS["age_generic"], [-1.0, 0.0, 0.6, 0.8, 0.4, 0.0])
        + 0.7 * (marital == "married")
    )
    target = sample_labels(rng, logit, prevalence=0.25, noise_scale=1.7)
    frame = DataFrame(
        {
            "WorkClass": workclass,
            "EducationLevel": education,
            "MaritalStatus": marital,
            "Occupation": occupation,
            "Relationship": relationship,
            "Race": race,
            "Sex": sex,
            "NativeRegion": native,
            "Age": age,
            "FnlWgt": fnlwgt,
            "EducationYears": edu_years,
            "CapitalGain": capital_gain,
            "HoursPerWeek": hours,
            "HighIncome": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="Census income records (society)",
        target_description="1 = annual income above 50K",
        spec=SPEC,
        notes={"signal": "occupation/education group rates, log capital gains, hours×education"},
    )
