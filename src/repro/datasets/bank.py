"""Bank (bank-marketing-style): 41,189 rows, 8 categorical + 10 numeric, Finance.

Planted structure: the signal is *near-linear in the original features*
(call duration, euribor rate, previous-outcome), so — as the paper
observes — "the original features are well-constructed, making feature
engineering less impactful".  Every method should stay ≈ flat here.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import sample_labels, standardize

SPEC = DatasetSpec(
    name="bank",
    n_categorical=8,
    n_numeric=10,
    n_rows=41189,
    field="Finance",
    target="Subscribed",
    paper_initial_auc_avg=91.46,
)

DESCRIPTIONS = {
    "Job": "Type of job of the client",
    "Marital": "Marital status",
    "EducationLevel": "Education level attained",
    "HasDefault": "Whether the client has credit in default",
    "HousingLoan": "Whether the client has a housing loan",
    "PersonalLoan": "Whether the client has a personal loan",
    "ContactType": "Contact communication type for the campaign",
    "PrevOutcome": "Outcome of the previous marketing campaign",
    "Age": "Age of the client in years",
    "CallDuration": "Last contact duration in seconds",
    "CampaignContacts": "Number of contacts performed during this campaign",
    "DaysSincePrev": "Days since the client was last contacted in a previous campaign",
    "PrevContacts": "Number of contacts performed before this campaign",
    "EmpVarRate": "Employment variation rate, quarterly indicator",
    "ConsPriceIdx": "Consumer price index, monthly indicator",
    "ConsConfIdx": "Consumer confidence index, monthly indicator",
    "Euribor3m": "Euribor 3 month rate",
}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Bank dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 303])
    job = rng.choice(
        ["admin", "blue-collar", "technician", "services", "management", "retired", "student", "entrepreneur"],
        size=n,
        p=[0.25, 0.22, 0.16, 0.10, 0.07, 0.08, 0.06, 0.06],
    )
    marital = rng.choice(["married", "single", "divorced"], size=n, p=[0.6, 0.28, 0.12])
    education = rng.choice(["basic", "highschool", "university", "professional"], size=n, p=[0.3, 0.23, 0.3, 0.17])
    default = (rng.uniform(size=n) < 0.03).astype(int)
    housing = rng.integers(0, 2, size=n)
    loan = (rng.uniform(size=n) < 0.16).astype(int)
    contact = rng.choice(["cellular", "telephone"], size=n, p=[0.63, 0.37])
    prev_outcome = rng.choice(["nonexistent", "failure", "success"], size=n, p=[0.86, 0.10, 0.04])
    age = np.clip(rng.gamma(9.0, 4.5, size=n), 18, 95).round(0)
    duration = np.clip(rng.gamma(1.6, 160, size=n), 1, 4900).round(0)
    campaign = np.clip(rng.geometric(0.4, size=n), 1, 40)
    days_since = np.where(prev_outcome == "nonexistent", 999, rng.integers(1, 30, size=n)).astype(float)
    prev_contacts = np.where(prev_outcome == "nonexistent", 0, rng.poisson(1.5, size=n)).astype(float)
    emp_var = rng.choice([-3.4, -1.8, -0.1, 1.1, 1.4], size=n, p=[0.1, 0.2, 0.2, 0.3, 0.2])
    cons_price = (93.5 + emp_var * 0.3 + rng.normal(0, 0.4, size=n)).round(3)
    cons_conf = (-40 + emp_var * 2 + rng.normal(0, 4, size=n)).round(1)
    euribor = np.clip(2.5 + emp_var * 1.3 + rng.normal(0, 0.3, size=n), 0.6, 5.1).round(3)

    # Near-linear signal in raw columns: engineering adds little.
    logit = (
        1.8 * standardize(duration)
        - 1.2 * standardize(euribor)
        + 1.5 * (prev_outcome == "success")
        - 0.3 * standardize(campaign)
        + 0.2 * (contact == "cellular")
    )
    target = sample_labels(rng, logit, prevalence=0.11, noise_scale=2.2)
    frame = DataFrame(
        {
            "Job": job,
            "Marital": marital,
            "EducationLevel": education,
            "HasDefault": default,
            "HousingLoan": housing,
            "PersonalLoan": loan,
            "ContactType": contact,
            "PrevOutcome": prev_outcome,
            "Age": age,
            "CallDuration": duration,
            "CampaignContacts": campaign,
            "DaysSincePrev": days_since,
            "PrevContacts": prev_contacts,
            "EmpVarRate": emp_var,
            "ConsPriceIdx": cons_price,
            "ConsConfIdx": cons_conf,
            "Euribor3m": euribor,
            "Subscribed": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="Bank term-deposit marketing campaign records (finance)",
        target_description="1 = client subscribed to a term deposit",
        spec=SPEC,
        notes={"signal": "near-linear in raw columns; feature engineering stays flat"},
    )
