"""Diabetes (Pima-style): 769 rows, 9 numeric attributes incl. target, Health.

Planted structure: threshold (band) effects on Glucose, BMI, and Age — the
shapes clinical bucketisation recovers — plus a mild pedigree slope.
Insulin and SkinThickness are zero-inflated (the classic Pima
missing-as-zero convention), so an unguarded ratio like
``Glucose / Insulin`` produces infinities: the mechanism behind CAAFE's
reported Diabetes failure.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import bucket_effect, sample_labels
from repro.fm.knowledge import DOMAIN_THRESHOLDS

SPEC = DatasetSpec(
    name="diabetes",
    n_categorical=0,
    n_numeric=9,
    n_rows=769,
    field="Health",
    target="Outcome",
    paper_initial_auc_avg=82.20,
)

DESCRIPTIONS = {
    "Pregnancies": "Number of pregnancies",
    "Glucose": "Plasma glucose concentration after an oral glucose tolerance test",
    "BloodPressure": "Diastolic blood pressure in mm Hg",
    "SkinThickness": "Triceps skin fold thickness in mm (0 means not measured)",
    "Insulin": "2-hour serum insulin in mu U/ml (0 means not measured)",
    "BMI": "Body mass index, weight in kg divided by squared height in m",
    "DiabetesPedigree": "Diabetes pedigree function summarising family history",
    "Age": "Age of the patient in years",
}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Diabetes dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 101])
    pregnancies = rng.poisson(2.8, size=n).astype(float)
    glucose = np.clip(rng.normal(121, 31, size=n), 50, 250).round(0)
    blood_pressure = np.clip(rng.normal(72, 12, size=n), 30, 130).round(0)
    skin = np.where(rng.uniform(size=n) < 0.30, 0.0, np.clip(rng.normal(29, 10, n), 5, 70)).round(0)
    insulin = np.where(rng.uniform(size=n) < 0.48, 0.0, np.clip(rng.gamma(2.2, 60, n), 10, 800)).round(0)
    bmi = np.clip(rng.normal(32, 7, size=n), 15, 60).round(1)
    pedigree = np.clip(rng.gamma(2.0, 0.24, size=n), 0.05, 2.5).round(3)
    age = np.clip(rng.gamma(3.0, 11, size=n), 21, 81).round(0)

    # Threshold-shaped clinical risk: exactly what bucketisation recovers.
    logit = (
        1.6 * bucket_effect(glucose, DOMAIN_THRESHOLDS["glucose"], [0.0, 0.8, 1.8, 2.6])
        + 1.0 * bucket_effect(bmi, DOMAIN_THRESHOLDS["bmi"], [0.2, 0.0, 0.7, 1.3, 1.8])
        + 0.8 * bucket_effect(age, DOMAIN_THRESHOLDS["age_generic"], [0, 0, 0.5, 1.0, 1.2, 1.2])
        + 0.9 * pedigree
        + 0.08 * pregnancies
    )
    outcome = sample_labels(rng, logit, prevalence=0.35, noise_scale=1.6)
    frame = DataFrame(
        {
            "Pregnancies": pregnancies,
            "Glucose": glucose,
            "BloodPressure": blood_pressure,
            "SkinThickness": skin,
            "Insulin": insulin,
            "BMI": bmi,
            "DiabetesPedigree": pedigree,
            "Age": age,
            "Outcome": outcome,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="Pima-style diabetes screening records (health diagnostics)",
        target_description="1 = patient develops diabetes",
        spec=SPEC,
        notes={"hazard": "Insulin/SkinThickness are zero-inflated; unguarded ratios explode"},
    )
