"""Heart (Framingham-style): 3,657 rows, 7 categorical + 7 numeric, Health.

Planted structure: pulse pressure (SysBP − DiaBP) — a *binary subtraction*
feature — carries substantial risk, alongside clinical blood-pressure
bands (unary bucketisation), a smoker×age interaction, and weak raw
slopes.  Initial models see only the raw columns, so their AUC starts low
(the paper's hardest dataset, initial ≈ 67).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import bucket_effect, sample_labels
from repro.fm.knowledge import DOMAIN_THRESHOLDS

SPEC = DatasetSpec(
    name="heart",
    n_categorical=7,
    n_numeric=7,
    n_rows=3657,
    field="Health",
    target="TenYearCHD",
    paper_initial_auc_avg=67.38,
)

DESCRIPTIONS = {
    "Sex": "Sex of the participant",
    "EducationLevel": "Education level attained",
    "CurrentSmoker": "Whether the participant currently smokes",
    "BPMeds": "Whether the participant is on blood pressure medication",
    "PrevalentStroke": "Whether the participant previously had a stroke",
    "PrevalentHyp": "Whether the participant is hypertensive",
    "DiabetesDiag": "Whether the participant has diagnosed diabetes",
    "Age": "Age of the participant in years",
    "TotChol": "Total cholesterol level in mg/dL",
    "SysBP": "Systolic blood pressure in mm Hg",
    "DiaBP": "Diastolic blood pressure in mm Hg",
    "BMI": "Body mass index",
    "GlucoseLevel": "Blood glucose level in mg/dL",
}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Heart dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 202])
    sex = rng.choice(["male", "female"], size=n)
    education = rng.choice(["primary", "highschool", "college", "postgrad"], size=n, p=[0.3, 0.35, 0.25, 0.1])
    smoker = rng.integers(0, 2, size=n)
    bp_meds = (rng.uniform(size=n) < 0.04).astype(int)
    stroke = (rng.uniform(size=n) < 0.01).astype(int)
    hyp = (rng.uniform(size=n) < 0.31).astype(int)
    diabetes = (rng.uniform(size=n) < 0.03).astype(int)
    age = np.clip(rng.normal(50, 9, size=n), 32, 70).round(0)
    tot_chol = np.clip(rng.normal(237, 44, size=n), 110, 600).round(0)
    dia_bp = np.clip(rng.normal(83, 12, size=n) + 6 * hyp, 45, 140).round(1)
    sys_bp = np.clip(dia_bp + rng.gamma(6.0, 8.0, size=n) + 10 * hyp, 85, 295).round(1)
    bmi = np.clip(rng.normal(25.8, 4.1, size=n), 15, 57).round(2)
    glucose = np.clip(rng.normal(82, 24, size=n) + 50 * diabetes, 40, 400).round(0)

    pulse_pressure = sys_bp - dia_bp  # the hidden binary-subtraction signal
    logit = (
        1.5 * (pulse_pressure - pulse_pressure.mean()) / pulse_pressure.std()
        + 1.0 * bucket_effect(sys_bp, DOMAIN_THRESHOLDS["blood_pressure"], [0, 0, 0.3, 0.9, 1.5])
        + 0.9 * (smoker * (age > 50))
        + 0.05 * (age - 50)
        + 0.4 * diabetes
        + 0.3 * stroke
        + 0.003 * (tot_chol - 237)
        + 0.25 * (sex == "male")
    )
    target = sample_labels(rng, logit, prevalence=0.15, noise_scale=1.0)
    frame = DataFrame(
        {
            "Sex": sex,
            "EducationLevel": education,
            "CurrentSmoker": smoker,
            "BPMeds": bp_meds,
            "PrevalentStroke": stroke,
            "PrevalentHyp": hyp,
            "DiabetesDiag": diabetes,
            "Age": age,
            "TotChol": tot_chol,
            "SysBP": sys_bp,
            "DiaBP": dia_bp,
            "BMI": bmi,
            "GlucoseLevel": glucose,
            "TenYearCHD": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="Framingham-style coronary heart disease study (health)",
        target_description="1 = ten-year risk of coronary heart disease",
        spec=SPEC,
        notes={"signal": "pulse pressure (SysBP - DiaBP) dominates; binary ops recover it"},
    )
