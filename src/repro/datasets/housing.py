"""Housing (California-style): 20,641 rows, 1 categorical + 8 numeric, Society.

Planted structure: *ratio* features drive the label — rooms per
household, population per household, bedroom share — which binary
division recovers, plus the dominant income slope and an ocean-proximity
group effect.  Both FM-guided methods should lift AUC markedly here
(paper: SMARTFEAT +6.3%, CAAFE +6.3%), while context-free expansion
struggles with the noise columns.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import sample_labels, standardize

SPEC = DatasetSpec(
    name="housing",
    n_categorical=1,
    n_numeric=8,
    n_rows=20641,
    field="Society",
    target="AboveMedianValue",
    paper_initial_auc_avg=86.72,
)

DESCRIPTIONS = {
    "OceanProximity": "Proximity of the housing block to the ocean",
    "Latitude": "Latitude of the block",
    "MedianHouseAge": "Median age of houses in the block in years",
    "TotalRooms": "Total number of rooms in the block",
    "TotalBedrooms": "Total number of bedrooms in the block",
    "BlockPopulation": "Total population of the block",
    "Households": "Number of households in the block",
    "MedianIncome": "Median household income of the block in tens of thousands of dollars",
}

_PROXIMITY_EFFECT = {"inland": -0.9, "near-bay": 0.5, "near-ocean": 0.6, "one-hour-ocean": 0.1}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Housing dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 505])
    proximity = rng.choice(list(_PROXIMITY_EFFECT), size=n, p=[0.32, 0.11, 0.13, 0.44])
    latitude = (33 + rng.uniform(0, 8, size=n)).round(2)
    house_age = np.clip(rng.gamma(3.5, 8.2, size=n), 1, 52).round(0)
    households = np.clip(rng.gamma(2.2, 230, size=n), 20, 6000).round(0)
    rooms_per_hh = np.clip(rng.normal(5.3, 1.3, size=n), 1.5, 15)
    total_rooms = (households * rooms_per_hh).round(0)
    bedroom_share = np.clip(rng.normal(0.21, 0.04, size=n), 0.1, 0.5)
    total_bedrooms = (total_rooms * bedroom_share).round(0)
    pop_per_hh = np.clip(rng.normal(2.9, 0.9, size=n), 1.0, 12.0)
    population = (households * pop_per_hh).round(0)
    income = np.clip(rng.gamma(3.2, 1.2, size=n), 0.5, 15.0).round(4)

    proximity_effect = np.array([_PROXIMITY_EFFECT[p] for p in proximity])
    logit = (
        1.3 * standardize(income)
        + 1.4 * standardize(rooms_per_hh)          # = TotalRooms / Households
        - 1.1 * standardize(pop_per_hh)            # = BlockPopulation / Households
        - 0.9 * standardize(bedroom_share)         # = TotalBedrooms / TotalRooms
        + 0.8 * proximity_effect
        + 0.15 * standardize(house_age)
    )
    target = sample_labels(rng, logit, prevalence=0.5, noise_scale=2.2)
    frame = DataFrame(
        {
            "OceanProximity": proximity,
            "Latitude": latitude,
            "MedianHouseAge": house_age,
            "TotalRooms": total_rooms,
            "TotalBedrooms": total_bedrooms,
            "BlockPopulation": population,
            "Households": households,
            "MedianIncome": income,
            "AboveMedianValue": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="California-style housing block records (society)",
        target_description="1 = median house value above the state median",
        spec=SPEC,
        notes={"signal": "per-household ratios drive value; binary division recovers them"},
    )
