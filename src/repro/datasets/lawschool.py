"""Lawschool (bar-passage-style): 4,591 rows, 5 categorical + 7 numeric, Education.

Planted structure: like Bank, the signal is *near-linear in the original
features* (LSAT, undergraduate GPA, first-year deciles), so feature
engineering stays ≈ flat — the paper's second "well-constructed" dataset.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import sample_labels, standardize

SPEC = DatasetSpec(
    name="lawschool",
    n_categorical=5,
    n_numeric=7,
    n_rows=4591,
    field="Education",
    target="PassedBar",
    paper_initial_auc_avg=84.00,
)

DESCRIPTIONS = {
    "Race": "Race of the student",
    "Gender": "Gender of the student",
    "FullTime": "Whether the student enrolled full time",
    "FamilyIncomeBand": "Family income band",
    "SchoolTier": "Tier of the law school attended",
    "LSAT": "LSAT score of the student",
    "UGPA": "Undergraduate grade point average",
    "Age": "Age of the student at enrollment",
    "Decile1": "First-year class rank decile",
    "Decile3": "Third-year class rank decile",
    "ZFYA": "Standardised first-year average grade",
}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Lawschool dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 606])
    race = rng.choice(["white", "black", "hispanic", "asian", "other"],
                      size=n, p=[0.75, 0.08, 0.08, 0.06, 0.03])
    gender = rng.choice(["male", "female"], size=n)
    fulltime = (rng.uniform(size=n) < 0.88).astype(int)
    income_band = rng.choice(["low", "lower-middle", "middle", "upper-middle", "high"],
                             size=n, p=[0.12, 0.2, 0.35, 0.22, 0.11])
    tier = rng.choice(["tier1", "tier2", "tier3", "tier4", "tier5", "tier6"], size=n)
    aptitude = rng.normal(0, 1, size=n)  # latent driver of the linear signals
    lsat = np.clip(36 + 4.5 * aptitude + rng.normal(0, 2.5, size=n), 11, 48).round(0)
    ugpa = np.clip(3.2 + 0.3 * aptitude + rng.normal(0, 0.25, size=n), 1.5, 4.0).round(2)
    age = np.clip(rng.gamma(6.0, 4.0, size=n), 18, 60).round(0)
    decile1 = np.clip(5.5 + 2.4 * aptitude + rng.normal(0, 1.3, size=n), 1, 10).round(0)
    decile3 = np.clip(0.8 * decile1 + 1.1 + rng.normal(0, 1.0, size=n), 1, 10).round(0)
    zfya = (0.7 * aptitude + rng.normal(0, 0.6, size=n)).round(2)

    logit = (
        1.6 * standardize(lsat)
        + 1.0 * standardize(ugpa)
        + 0.8 * standardize(decile3)
        + 0.5 * standardize(zfya)
        + 0.2 * fulltime
    )
    target = sample_labels(rng, logit, prevalence=0.8, noise_scale=1.6)
    frame = DataFrame(
        {
            "Race": race,
            "Gender": gender,
            "FullTime": fulltime,
            "FamilyIncomeBand": income_band,
            "SchoolTier": tier,
            "LSAT": lsat,
            "UGPA": ugpa,
            "Age": age,
            "Decile1": decile1,
            "Decile3": decile3,
            "ZFYA": zfya,
            "PassedBar": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="Law school bar passage study records (education)",
        target_description="1 = student passed the bar exam",
        spec=SPEC,
        notes={"signal": "near-linear in LSAT/UGPA/deciles; engineering stays flat"},
    )
