"""Dataset registry: ``load_dataset(name)`` and Table 3 metadata."""

from __future__ import annotations

from repro.datasets import adult, bank, diabetes, heart, housing, lawschool, tennis, west_nile
from repro.datasets.schema import DatasetBundle, DatasetSpec

__all__ = ["DATASET_NAMES", "dataset_info", "list_datasets", "load_dataset"]

_MODULES = {
    "diabetes": diabetes,
    "heart": heart,
    "bank": bank,
    "adult": adult,
    "housing": housing,
    "lawschool": lawschool,
    "west_nile": west_nile,
    "tennis": tennis,
}

DATASET_NAMES: tuple[str, ...] = tuple(_MODULES)
"""The eight evaluation datasets, in the paper's Table 3 order."""

_ALIASES = {
    "west nile virus": "west_nile",
    "west-nile": "west_nile",
    "westnile": "west_nile",
    "wnv": "west_nile",
    "law school": "lawschool",
}


def _resolve(name: str) -> str:
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _MODULES:
        raise ValueError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    return key


def load_dataset(name: str, seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate a dataset bundle by name.

    ``n_rows`` overrides the Table 3 row count (tests and quick benches use
    small sizes); the default regenerates the full-size dataset.  The same
    ``(name, seed, n_rows)`` triple always produces identical data.
    """
    return _MODULES[_resolve(name)].generate(seed=seed, n_rows=n_rows)


def dataset_info(name: str) -> DatasetSpec:
    """Table 3 metadata for one dataset."""
    return _MODULES[_resolve(name)].SPEC


def list_datasets() -> list[DatasetSpec]:
    """Table 3: the specs of all eight datasets in order."""
    return [_MODULES[name].SPEC for name in DATASET_NAMES]
