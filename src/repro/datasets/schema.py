"""Dataset descriptors: specs (Table 3 rows) and generated bundles."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataframe import DataFrame

__all__ = ["DatasetBundle", "DatasetSpec"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table 3.

    ``n_categorical``/``n_numeric`` follow the paper's counting convention,
    with the binary prediction class included in the numeric count.
    """

    name: str
    n_categorical: int
    n_numeric: int
    n_rows: int
    field: str
    target: str
    paper_initial_auc_avg: float
    """Initial average-AUC reported in Table 4 (for shape comparisons)."""


@dataclass
class DatasetBundle:
    """A generated dataset plus everything SMARTFEAT's input needs.

    ``descriptions`` is the data card (column → description);
    ``title``/``target_description`` feed the agenda header.
    """

    name: str
    frame: DataFrame
    target: str
    descriptions: dict[str, str]
    title: str
    target_description: str
    spec: DatasetSpec
    notes: dict[str, str] = field(default_factory=dict)

    def data_card(self) -> dict[str, str]:
        """The column-description mapping (a Kaggle-style data card)."""
        return dict(self.descriptions)

    def feature_columns(self) -> list[str]:
        return [c for c in self.frame.columns if c != self.target]

    def names_only(self) -> "DatasetBundle":
        """A copy without descriptions — the paper's descriptions ablation."""
        return DatasetBundle(
            name=self.name,
            frame=self.frame,
            target=self.target,
            descriptions={},
            title="",
            target_description="",
            spec=self.spec,
            notes=dict(self.notes),
        )
