"""Shared machinery for planting label signal in synthetic datasets,
plus scale-parameterised synthetic tables for the data-plane benchmarks.

:func:`make_synthetic_frame` generates a mixed-dtype table (skewed
numerics with missing values, low- and high-cardinality categoricals, a
boolean flag) at any row count — the workload
``benchmarks/bench_dataplane.py`` and the vectorized-equivalence tests
drive through groupby, generated transforms, and ``feature_matrix``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bucket_effect",
    "make_synthetic_bundle",
    "make_synthetic_frame",
    "sample_labels",
    "sigmoid",
    "standardize",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def standardize(x: np.ndarray) -> np.ndarray:
    """Zero-mean/unit-variance a signal component (constant-safe)."""
    x = np.asarray(x, dtype=np.float64)
    scale = x.std()
    return (x - x.mean()) / (scale if scale > 0 else 1.0)


def bucket_effect(values: np.ndarray, edges: list[float], effects: list[float]) -> np.ndarray:
    """A piecewise-constant (threshold) effect: the structure bucketisation
    recovers.  ``effects[i]`` applies on ``(edges[i], edges[i+1]]``."""
    if len(effects) != len(edges) - 1:
        raise ValueError(
            f"need {len(edges) - 1} effects for {len(edges)} edges, got {len(effects)}"
        )
    idx = np.clip(np.searchsorted(edges, values, side="left") - 1, 0, len(effects) - 1)
    return np.asarray(effects, dtype=np.float64)[idx]


def sample_labels(
    rng: np.random.Generator,
    logit: np.ndarray,
    prevalence: float = 0.5,
    noise_scale: float = 1.0,
) -> np.ndarray:
    """Draw binary labels whose Bayes signal is *logit*.

    The logit is standardised and scaled by ``noise_scale`` (higher =
    cleaner separation = higher attainable AUC), then shifted so the
    positive rate is approximately *prevalence*.
    """
    if not 0.0 < prevalence < 1.0:
        raise ValueError("prevalence must lie strictly between 0 and 1")
    score = standardize(logit) * noise_scale
    threshold_shift = float(np.quantile(score, 1.0 - prevalence))
    probs = sigmoid(score - threshold_shift)
    return (rng.uniform(size=len(score)) < probs).astype(np.int64)


_CITIES = (
    "SF", "LA", "SEA", "NYC", "CHI", "HOU", "PHX", "PHL", "DAL", "SD", "SJ", "AUS",
)

_SYNTH_DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "Balance": "Current account balance in dollars",
    "City": "City of residence",
    "Segment": "Fine-grained marketing segment label",
    "SegmentId": "Numeric id of the marketing segment",
    "Active": "Whether the account is currently active",
}


def make_synthetic_frame(n_rows: int, seed: int = 0, missing_rate: float = 0.02):
    """A mixed-dtype synthetic table sized for data-plane benchmarking.

    Columns: ``Age`` (int), ``Income``/``Balance`` (skewed floats with
    ``missing_rate`` NaNs), ``City`` (low-cardinality strings),
    ``Segment``/``SegmentId`` (high-cardinality string labels and their
    integer codes, ~``n_rows/200`` groups), ``Active`` (bool), and a
    planted binary ``Target``.  Key columns are kept complete so group-bys
    stay on the vectorised path.  The same ``(n_rows, seed)`` pair always
    produces identical data.
    """
    from repro.dataframe import DataFrame, Series

    rng = np.random.default_rng(seed)
    age = rng.integers(18, 91, size=n_rows)
    income = np.round(np.exp(rng.normal(3.2, 0.8, size=n_rows)), 2)
    balance = np.round(rng.normal(1200.0, 400.0, size=n_rows), 2)
    for column in (income, balance):
        mask = rng.random(n_rows) < missing_rate
        column[mask] = np.nan
    city_codes = rng.integers(0, len(_CITIES), size=n_rows)
    city = np.array(_CITIES, dtype=object)[city_codes]
    n_segments = max(8, n_rows // 200)
    segment_codes = rng.integers(0, n_segments, size=n_rows)
    segment = np.array(
        [f"seg_{i:05d}" for i in range(n_segments)], dtype=object
    )[segment_codes]
    active = rng.random(n_rows) < 0.7
    logit = (
        bucket_effect(age.astype(np.float64), [18, 30, 45, 60, 91], [-0.4, 0.1, 0.5, 0.9])
        + standardize(np.log1p(np.nan_to_num(income, nan=0.0)))
        + 0.3 * standardize(np.nan_to_num(balance, nan=0.0))
        + 0.2 * (city_codes % 3 == 0)
    )
    target = sample_labels(rng, logit, prevalence=0.35, noise_scale=1.4)
    return DataFrame(
        {
            "Age": Series(age),
            "Income": Series(income),
            "Balance": Series(balance),
            "City": Series(city),
            "Segment": Series(segment),
            "SegmentId": Series(segment_codes.astype(np.int64)),
            "Active": Series(active),
            "Target": Series(target),
        }
    )


def make_synthetic_bundle(n_rows: int, seed: int = 0) -> dict:
    """``make_synthetic_frame`` plus the data card ``fit_transform`` wants.

    Returns ``{"frame", "target", "descriptions", "title"}`` — enough to
    drive the full pipeline against a zero-latency simulated client.
    """
    return {
        "frame": make_synthetic_frame(n_rows, seed=seed),
        "target": "Target",
        "descriptions": dict(_SYNTH_DESCRIPTIONS),
        "title": f"Synthetic customer table ({n_rows} rows)",
    }
