"""Shared machinery for planting label signal in synthetic datasets."""

from __future__ import annotations

import numpy as np

__all__ = ["bucket_effect", "sample_labels", "sigmoid", "standardize"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def standardize(x: np.ndarray) -> np.ndarray:
    """Zero-mean/unit-variance a signal component (constant-safe)."""
    x = np.asarray(x, dtype=np.float64)
    scale = x.std()
    return (x - x.mean()) / (scale if scale > 0 else 1.0)


def bucket_effect(values: np.ndarray, edges: list[float], effects: list[float]) -> np.ndarray:
    """A piecewise-constant (threshold) effect: the structure bucketisation
    recovers.  ``effects[i]`` applies on ``(edges[i], edges[i+1]]``."""
    if len(effects) != len(edges) - 1:
        raise ValueError(
            f"need {len(edges) - 1} effects for {len(edges)} edges, got {len(effects)}"
        )
    idx = np.clip(np.searchsorted(edges, values, side="left") - 1, 0, len(effects) - 1)
    return np.asarray(effects, dtype=np.float64)[idx]


def sample_labels(
    rng: np.random.Generator,
    logit: np.ndarray,
    prevalence: float = 0.5,
    noise_scale: float = 1.0,
) -> np.ndarray:
    """Draw binary labels whose Bayes signal is *logit*.

    The logit is standardised and scaled by ``noise_scale`` (higher =
    cleaner separation = higher attainable AUC), then shifted so the
    positive rate is approximately *prevalence*.
    """
    if not 0.0 < prevalence < 1.0:
        raise ValueError("prevalence must lie strictly between 0 and 1")
    score = standardize(logit) * noise_scale
    threshold_shift = float(np.quantile(score, 1.0 - prevalence))
    probs = sigmoid(score - threshold_shift)
    return (rng.uniform(size=len(score)) < probs).astype(np.int64)
