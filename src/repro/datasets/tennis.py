"""Tennis (match-statistics-style): 944 rows, 12 numeric attributes incl.
target, Sports.

Planted structure — chosen to reproduce the paper's Table 7 ablation:

* the label is driven by *differentials* of the paired player stats
  (winners − unforced errors, break-point conversion gap, serve gap):
  binary subtraction recovers these;
* a serve-dominance *composite index* (weighted combination of serve
  stats): the extractor's index feature recovers it;
* there are **no categorical columns**, so the high-order operator has
  nothing to group by (Table 7: "+High-order" ≈ initial) and unary
  operators add little (monotone transforms of individually weak stats).

Feature names are the original Kaggle-style abbreviations (``FSP.1``,
``WNR.1`` …) with descriptive data-card entries — removing the
descriptions reproduces the paper's names-only degradation experiment.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import sample_labels, standardize

SPEC = DatasetSpec(
    name="tennis",
    n_categorical=0,
    n_numeric=12,
    n_rows=944,
    field="Sports",
    target="Result",
    paper_initial_auc_avg=77.93,
)

DESCRIPTIONS = {
    "FSP.1": "First serve percentage for player 1",
    "FSW.1": "First serve points won by player 1",
    "SSP.1": "Second serve percentage for player 1",
    "ACE.1": "Number of aces served by player 1",
    "DBF.1": "Number of double faults by player 1",
    "WNR.1": "Number of winners hit by player 1",
    "UFE.1": "Number of unforced errors by player 1",
    "BPC.1": "Break points created by player 1",
    "BPW.1": "Break points won by player 1",
    "NPA.1": "Net points attempted by player 1",
    "NPW.1": "Net points won by player 1",
}


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic Tennis dataset.

    Raw count stats all scale with a latent *match length* — long matches
    inflate winners AND errors alike — so individual columns are heavily
    confounded.  Ratios and differentials of opposing stats cancel the
    confounder; that is the structure binary operators recover.
    """
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 808])
    skill = rng.normal(0, 1, size=n)  # latent player-1 edge in this match
    length = np.exp(rng.normal(0.0, 0.9, size=n))  # match-length multiplier
    fsp = np.clip(rng.normal(61, 6, size=n) + 1.5 * skill, 35, 90).round(0)
    ssp = np.clip(rng.normal(48, 8, size=n) + 1.4 * skill, 20, 80).round(0)
    fsw = np.clip(length * (40 + 3.0 * skill + rng.normal(0, 6, size=n)), 2, 900).round(0)
    ace = np.clip(length * (5.5 + 1.6 * skill + rng.normal(0, 2.0, size=n)), 0, 150).round(0)
    dbf = np.clip(length * (5.5 - 1.6 * skill + rng.normal(0, 2.0, size=n)), 1, 150).round(0)
    wnr = np.clip(length * (27 + 4.5 * skill + rng.normal(0, 5, size=n)), 2, 800).round(0)
    ufe = np.clip(length * (27 - 4.5 * skill + rng.normal(0, 5, size=n)), 2, 800).round(0)
    bpc = np.clip(length * (5.0 + 1.2 * skill + rng.normal(0, 1.6, size=n)), 1, 150).round(0)
    bpw = np.clip(length * (3.2 + 1.3 * skill + rng.normal(0, 1.3, size=n)), 0, 120).round(0)
    npa = np.clip(length * (13 + rng.normal(0, 4, size=n)), 1, 400).round(0)
    npw = np.clip(length * (8 + 1.2 * skill + rng.normal(0, 2.2, size=n)), 0, 350).round(0)

    # Length-free quantities drive the outcome: ratios of opposing stats,
    # the break-point conversion rate, and a serve composite over the
    # (scale-free) percentages.
    serve_composite = (standardize(fsp) + standardize(ssp)) / 2.0
    logit = (
        1.4 * standardize(np.log((wnr + 1.0) / (ufe + 1.0)))
        + 1.1 * standardize(np.log((bpw + 1.0) / (bpc + 1.0)))
        + 0.9 * standardize(np.log((ace + 1.0) / (dbf + 1.0)))
        + 0.6 * standardize(np.log((npw + 1.0) / (npa + 1.0)))
        + 0.5 * serve_composite
    )
    target = sample_labels(rng, logit, prevalence=0.5, noise_scale=3.0)
    frame = DataFrame(
        {
            "FSP.1": fsp,
            "FSW.1": fsw,
            "SSP.1": ssp,
            "ACE.1": ace,
            "DBF.1": dbf,
            "WNR.1": wnr,
            "UFE.1": ufe,
            "BPC.1": bpc,
            "BPW.1": bpw,
            "NPA.1": npa,
            "NPW.1": npw,
            "Result": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="Grand-slam tennis match statistics (sports analytics)",
        target_description="1 = player 1 won the match",
        spec=SPEC,
        notes={"signal": "stat differentials + serve composite; no categoricals"},
    )
