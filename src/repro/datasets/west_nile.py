"""West Nile Virus (trap-surveillance-style): 10,507 rows, 3 categorical +
8 numeric, Disease.

Planted structure — the dataset where the paper says *diverse* feature
types help and high-order operators are the most beneficial:

* per-species infection propensity (a group rate GroupByThenAgg recovers);
* seasonal week bands (bucketisation);
* log mosquito counts (unary log);
* a *city population density* effect that lives only in world knowledge —
  the table stores city names; the density values come from the same
  knowledge store the FM consults (the extractor's flagship feature);
* a trap-level baseline (group effect over the Trap column).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.schema import DatasetBundle, DatasetSpec
from repro.datasets.synth import bucket_effect, sample_labels, standardize
from repro.fm.knowledge import default_knowledge

SPEC = DatasetSpec(
    name="west_nile",
    n_categorical=3,
    n_numeric=8,
    n_rows=10507,
    field="Disease",
    target="WnvPresent",
    paper_initial_auc_avg=78.96,
)

DESCRIPTIONS = {
    "Species": "Mosquito species collected in the trap",
    "Trap": "Identifier of the surveillance trap",
    "City": "City where the trap is located",
    "Latitude": "Latitude of the trap",
    "WeekOfYear": "Week of the year of the observation",
    "NumMosquitos": "Number of mosquitos caught in the trap",
    "AvgTemperature": "Average temperature in the preceding week in Fahrenheit",
    "Precipitation": "Total precipitation in the preceding week in inches",
    "TrapElevation": "Elevation of the trap site in feet",
    "DaylightHours": "Hours of daylight on the observation day",
}

_SPECIES = ["pipiens", "restuans", "pipiens-restuans", "salinarius", "territans", "tarsalis"]
_SPECIES_EFFECT = {
    "pipiens": 1.2,
    "pipiens-restuans": 0.9,
    "restuans": 0.4,
    "salinarius": -0.5,
    "territans": -1.1,
    "tarsalis": -0.2,
}
_CITIES = ["CHI", "HOU", "DAL", "PHX", "ATL", "MIA", "AUS", "DEN"]


def generate(seed: int = 0, n_rows: int | None = None) -> DatasetBundle:
    """Generate the synthetic West Nile Virus dataset."""
    n = n_rows or SPEC.n_rows
    rng = np.random.default_rng([seed, 707])
    knowledge = default_knowledge()
    species = rng.choice(_SPECIES, size=n, p=[0.36, 0.28, 0.18, 0.08, 0.06, 0.04])
    city = rng.choice(_CITIES, size=n, p=[0.3, 0.15, 0.12, 0.1, 0.1, 0.09, 0.08, 0.06])
    trap = np.array([f"T{int(t):03d}" for t in rng.integers(1, 120, size=n)])
    latitude = (41.6 + rng.uniform(0, 0.5, size=n)).round(4)
    week = np.clip(rng.normal(30, 6, size=n), 22, 41).round(0)
    temperature = np.clip(rng.normal(74, 7, size=n) + (week - 30) * 0.8, 48, 100).round(1)
    precipitation = np.clip(rng.gamma(1.3, 0.5, size=n), 0, 8).round(2)
    elevation = np.clip(rng.normal(600, 80, size=n), 350, 900).round(0)
    daylight = np.clip(14.8 - 0.18 * np.abs(week - 26), 9, 15.2).round(2)

    species_effect = np.array([_SPECIES_EFFECT[s] for s in species])
    density = np.array([knowledge.lookup("city_population_density", c) for c in city])
    # Per-trap latent site risk.  It manifests in the catch counts (risky
    # sites catch more mosquitos), so the *per-trap mean* of NumMosquitos —
    # a GroupByThenAgg feature over the 119-value Trap key that one-hot
    # encoding cannot handle — denoises it.  This is why high-order
    # operators are the most beneficial family on this dataset.
    trap_ids = sorted(set(trap.tolist()))
    trap_rng = np.random.default_rng([seed, 708])
    trap_base = dict(zip(trap_ids, trap_rng.normal(0, 0.7, size=len(trap_ids))))
    trap_effect = np.array([trap_base[t] for t in trap])
    mosquitos = np.clip(
        rng.gamma(1.6, 8.0, size=n) * np.exp(0.6 * trap_effect), 1, 900
    ).round(0)

    logit = (
        1.0 * species_effect
        + 0.9 * bucket_effect(week, [0, 26, 30, 35, 53], [-0.8, 0.3, 1.0, -0.4])
        + 0.9 * standardize(np.log(density))
        + 1.4 * trap_effect
        + 0.3 * standardize(temperature)
    )
    target = sample_labels(rng, logit, prevalence=0.12, noise_scale=1.5)
    frame = DataFrame(
        {
            "Species": species,
            "Trap": trap,
            "City": city,
            "Latitude": latitude,
            "WeekOfYear": week,
            "NumMosquitos": mosquitos,
            "AvgTemperature": temperature,
            "Precipitation": precipitation,
            "TrapElevation": elevation,
            "DaylightHours": daylight,
            "WnvPresent": target,
        }
    )
    return DatasetBundle(
        name=SPEC.name,
        frame=frame,
        target=SPEC.target,
        descriptions=dict(DESCRIPTIONS),
        title="West Nile virus mosquito trap surveillance (disease outbreak)",
        target_description="1 = West Nile virus present in the trap sample",
        spec=SPEC,
        notes={
            "signal": "species group rate + seasonal bands + city density (world knowledge)",
        },
    )
