"""Evaluation harness regenerating every table and figure of the paper.

* :mod:`~repro.eval.harness` — feature matrices, per-model cross-validated
  AUC (the Table 4/5 metric).
* :mod:`~repro.eval.runner` — the method × dataset × model sweep with
  time-budget accounting and DNF/failure semantics.
* :mod:`~repro.eval.importance` — Table 6's IG@10 / RFE@10 / FI@10.
* :mod:`~repro.eval.ablation` — Table 7's per-operator-family ablation.
* :mod:`~repro.eval.efficiency` — Figure 1's row-level vs feature-level
  interaction-cost comparison and the Section 4.2 runtime table.
* :mod:`~repro.eval.reporting` — plain-text table renderers shaped like
  the paper's tables.
"""

from repro.eval.chaos import CHAOS_MODES, ChaosSchedule, FaultInjector, hostile_rows
from repro.eval.harness import evaluate_models, feature_matrix
from repro.eval.runner import MethodOutcome, SweepConfig, SweepResult, run_sweep
from repro.eval.importance import importance_table
from repro.eval.ablation import operator_ablation
from repro.eval.efficiency import (
    concurrency_speedup_report,
    interaction_cost_comparison,
    physical_overlap_report,
    stage_overlap_report,
)
from repro.eval.reporting import (
    render_auc_table,
    render_schedule,
    render_sweep_summary,
    render_table,
)
from repro.eval.sweep_executor import (
    SerialSweepExecutor,
    SweepExecutor,
    ThreadPoolSweepExecutor,
)

__all__ = [
    "CHAOS_MODES",
    "ChaosSchedule",
    "FaultInjector",
    "MethodOutcome",
    "SerialSweepExecutor",
    "SweepConfig",
    "SweepExecutor",
    "SweepResult",
    "ThreadPoolSweepExecutor",
    "concurrency_speedup_report",
    "evaluate_models",
    "feature_matrix",
    "hostile_rows",
    "importance_table",
    "interaction_cost_comparison",
    "operator_ablation",
    "physical_overlap_report",
    "render_auc_table",
    "render_schedule",
    "render_sweep_summary",
    "render_table",
    "run_sweep",
    "stage_overlap_report",
]
