"""Table 7: per-operator-family ablation of SMARTFEAT.

Rows: Initial, +Unary, +Binary, +High-order, +Extractor, all — AUC per
downstream model plus the average, on one dataset (the paper uses
Tennis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.datasets.schema import DatasetBundle
from repro.eval.harness import evaluate_models
from repro.fm import SimulatedFM
from repro.ml.registry import MODEL_NAMES

__all__ = ["AblationRow", "operator_ablation"]

_FAMILY_ROWS: tuple[tuple[str, tuple[OperatorFamily, ...]], ...] = (
    ("+Unary", (OperatorFamily.UNARY,)),
    ("+Binary", (OperatorFamily.BINARY,)),
    ("+High-order", (OperatorFamily.HIGH_ORDER,)),
    ("+Extractor", (OperatorFamily.EXTRACTOR,)),
    (
        "all",
        (
            OperatorFamily.UNARY,
            OperatorFamily.BINARY,
            OperatorFamily.HIGH_ORDER,
            OperatorFamily.EXTRACTOR,
        ),
    ),
)


@dataclass
class AblationRow:
    """One Table 7 row: a feature-set variant and its per-model AUCs."""

    label: str
    auc_by_model: dict[str, float]
    n_new_features: int

    @property
    def average(self) -> float:
        values = list(self.auc_by_model.values())
        return sum(values) / len(values)


def operator_ablation(
    bundle: DatasetBundle,
    models: tuple[str, ...] = MODEL_NAMES,
    n_splits: int = 5,
    seed: int = 0,
    downstream_model: str = "random_forest",
) -> list[AblationRow]:
    """Compute the Table 7 ablation on *bundle*."""
    rows = [
        AblationRow(
            label="Initial",
            auc_by_model=evaluate_models(
                bundle.frame, bundle.target, models=models, n_splits=n_splits, seed=seed
            ),
            n_new_features=0,
        )
    ]
    for label, families in _FAMILY_ROWS:
        tool = SmartFeat(
            fm=SimulatedFM(seed=seed, model="gpt-4"),
            function_fm=SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo"),
            downstream_model=downstream_model,
            operator_families=families,
            drop_heuristic=False,  # keep originals so rows are comparable
        )
        result = tool.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
        )
        rows.append(
            AblationRow(
                label=label,
                auc_by_model=evaluate_models(
                    result.frame, bundle.target, models=models, n_splits=n_splits, seed=seed
                ),
                n_new_features=len(result.new_columns),
            )
        )
    return rows
