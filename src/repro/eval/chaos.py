"""Deterministic chaos harness for the serve-path resilience layer.

Seeded per-feature failure schedules and hostile-row generators, in the
spirit of the transport layer's ``ScriptedTransport``: every fault is
decided by an explicit schedule or a seeded RNG, so a chaos run is a
reproducible *program* of failures, not noise.  The injector plugs into
the ``evaluator`` seam of :meth:`FeaturePlan.apply_with_report` —
``evaluator(spec, frame, default)`` — wrapping the normal evaluation
without touching production code paths.

Failure modes:

* ``raise`` — the evaluation raises :class:`TransformError`, the shape
  of a sandbox fallback blowing up.
* ``hang`` — a pure-Python busy loop, interruptible by the watchdog's
  trace hook; bounded by ``max_hang_s`` so a chaos run without a
  watchdog cannot wedge forever.
* ``bad_output`` — returns a wrong-row-count Series, the shape of a
  transform that aggregated when it should have broadcast.
* ``mutate`` — evaluates normally, then scribbles over an input column,
  the shape of a transform editing ``df`` in place.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.sandbox import TransformError
from repro.dataframe.series import Series

__all__ = ["CHAOS_MODES", "ChaosSchedule", "FaultInjector", "hostile_rows"]

CHAOS_MODES = ("raise", "hang", "bad_output", "mutate")


class ChaosSchedule:
    """Which fault (if any) each feature suffers on each of its calls.

    ``schedules`` maps feature name → {call index (0-based) → mode}.
    Calls advance per feature as :meth:`fault_for` is consulted, so one
    schedule instance narrates one serving timeline.
    """

    def __init__(self, schedules: Mapping[str, Mapping[int, str]]) -> None:
        for feature, plan in schedules.items():
            for call, mode in plan.items():
                if mode not in CHAOS_MODES:
                    raise ValueError(
                        f"unknown chaos mode {mode!r} for {feature!r} call {call}"
                    )
        self._schedules = {
            feature: dict(plan) for feature, plan in schedules.items()
        }
        self._calls: dict[str, int] = {}

    @classmethod
    def seeded(
        cls,
        features: Iterable[str],
        *,
        modes: Sequence[str] = ("raise",),
        rate: float = 0.2,
        n_calls: int = 50,
        seed: int = 0,
    ) -> "ChaosSchedule":
        """A reproducible random schedule: each of *n_calls* calls per
        feature fails with probability *rate*, mode drawn from *modes*."""
        rng = np.random.default_rng(seed)
        schedules: dict[str, dict[int, str]] = {}
        for feature in features:
            plan: dict[int, str] = {}
            for call in range(n_calls):
                if rng.random() < rate:
                    plan[call] = modes[int(rng.integers(len(modes)))]
            schedules[feature] = plan
        return cls(schedules)

    def fault_for(self, feature: str) -> str | None:
        """The fault this feature suffers on its next call (advances it)."""
        call = self._calls.get(feature, 0)
        self._calls[feature] = call + 1
        return self._schedules.get(feature, {}).get(call)

    def reset(self) -> None:
        """Rewind every feature to call 0 (replay the same timeline)."""
        self._calls.clear()


class FaultInjector:
    """The ``evaluator`` seam implementation driven by a schedule."""

    def __init__(self, schedule: ChaosSchedule, *, max_hang_s: float = 5.0) -> None:
        self.schedule = schedule
        self.max_hang_s = max_hang_s
        self.injected: list[tuple[str, str]] = []

    def __call__(self, spec, frame, default) -> Any:
        mode = self.schedule.fault_for(spec.name)
        if mode is None:
            return default()
        self.injected.append((spec.name, mode))
        if mode == "raise":
            raise TransformError(f"chaos: injected failure for {spec.name!r}")
        if mode == "hang":
            # Pure-Python spin so a watchdog trace hook can cancel it;
            # the monotonic deadline bounds a watchdog-less run.
            deadline = time.monotonic() + self.max_hang_s
            while time.monotonic() < deadline:
                pass
            raise TransformError(
                f"chaos: hang for {spec.name!r} ran its full {self.max_hang_s}s "
                f"(no watchdog interrupted it)"
            )
        if mode == "bad_output":
            name = spec.output_columns[0] if spec.output_columns else spec.name
            return Series._from_array(
                np.zeros(max(len(frame) - 1, 1)), name
            )
        # mode == "mutate": produce the real output, then scribble over an
        # input column — only a watchdog guard turns this into a failure.
        out = default()
        victim = spec.input_columns[0] if spec.input_columns else None
        if victim is not None and victim in frame:
            frame[victim] = Series._from_array(
                np.zeros(len(frame)), victim
            )
        return out


def hostile_rows(
    input_schema: Sequence[tuple[str, str]],
    n_rows: int = 32,
    *,
    hostility: float = 0.3,
    seed: int = 0,
) -> list:
    """A seeded batch of row dicts laced with hostile values.

    Each cell is, with probability *hostility*, replaced by an attack
    drawn from the column kind's repertoire: inf/NaN/numeric strings/
    nested values for numerics, 0/1/None/strings for bools, oversized or
    surrogate (non-UTF-8-encodable) strings and nested values for
    objects.  Whole-row attacks (non-mapping rows, missing keys) are
    sprinkled at the same rate.  The same ``(schema, n_rows, hostility,
    seed)`` always yields the identical batch.
    """
    rng = np.random.default_rng(seed)
    numeric_attacks = [
        float("inf"),
        float("-inf"),
        float("nan"),
        "12.5",
        "not-a-number",
        None,
        {"nested": 1},
        [1, 2],
    ]
    bool_attacks = [0, 1, None, "yes", 2.5]
    object_attacks = [
        "x" * 20_000,
        "\ud800bad-surrogate",
        None,
        {"nested": True},
        ["a", "b"],
        42,
    ]
    rows: list = []
    for _ in range(n_rows):
        if rng.random() < hostility / 4:
            rows.append("not a mapping at all")
            continue
        row: dict[str, Any] = {}
        for name, kind in input_schema:
            if rng.random() < hostility / 4:
                continue  # missing key
            if rng.random() < hostility:
                if kind == "numeric":
                    row[name] = numeric_attacks[int(rng.integers(len(numeric_attacks)))]
                elif kind == "bool":
                    row[name] = bool_attacks[int(rng.integers(len(bool_attacks)))]
                else:
                    row[name] = object_attacks[int(rng.integers(len(object_attacks)))]
            else:
                if kind == "numeric":
                    row[name] = float(rng.normal())
                elif kind == "bool":
                    row[name] = bool(rng.random() < 0.5)
                else:
                    row[name] = f"cat{int(rng.integers(4))}"
        rows.append(row)
    return rows
