"""Figure 1 and Section 4.2 "Efficiency": interaction-cost accounting.

The paper's core efficiency claim: row-level FM interactions (serialise
every row, ask the FM to fill the masked token) cost O(rows) calls,
while SMARTFEAT's feature-level interactions cost O(features) calls —
independent of table size.  This module prices both styles with the same
:class:`~repro.fm.cost.CostModel` so the comparison is quantitative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import SmartFeat
from repro.datasets.schema import DatasetBundle
from repro.fm import (
    AsyncFMExecutor,
    SerialExecutor,
    SimulatedFM,
    SimulatedHTTPTransport,
    ThreadPoolFMExecutor,
    TransportFMClient,
)
from repro.fm.cost import CostModel, estimate_tokens
from repro.fm.executor import FMExecutor

__all__ = [
    "InteractionCostPoint",
    "concurrency_speedup_report",
    "interaction_cost_comparison",
    "physical_overlap_report",
    "smartfeat_call_profile",
    "stage_overlap_report",
]


@dataclass
class InteractionCostPoint:
    """Cost of completing one new feature over a table of ``n_rows``."""

    n_rows: int
    style: str  # "row_level" | "feature_level"
    n_calls: int
    tokens: int
    cost_usd: float
    latency_s: float


def _row_level_cost(n_rows: int, record_tokens: int, cost_model: CostModel) -> InteractionCostPoint:
    """Price a row-level completion pass: one call per row."""
    completion_tokens = 8
    prompt_tokens = record_tokens + 24  # serialised record + instruction
    total_tokens = n_rows * (prompt_tokens + completion_tokens)
    return InteractionCostPoint(
        n_rows=n_rows,
        style="row_level",
        n_calls=n_rows,
        tokens=total_tokens,
        cost_usd=n_rows * cost_model.price(prompt_tokens, completion_tokens),
        latency_s=n_rows * cost_model.latency(completion_tokens),
    )


def smartfeat_call_profile(
    bundle: DatasetBundle,
    seed: int = 0,
    executor: FMExecutor | None = None,
    wave_size: int | None = None,
) -> dict[str, float]:
    """Measure SMARTFEAT's actual FM footprint on *bundle* (all families).

    ``latency_s`` sums every call (the cost-accounting view);
    ``critical_path_s`` is the modelled wall-clock under the given
    executor's concurrency — equal to the sum when running serially.
    """
    fm = SimulatedFM(seed=seed, model="gpt-4")
    function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
    tool = SmartFeat(
        fm=fm,
        function_fm=function_fm,
        downstream_model="random_forest",
        executor=executor,
        wave_size=wave_size,
    )
    result = tool.fit_transform(
        bundle.frame,
        target=bundle.target,
        descriptions=bundle.descriptions,
        title=bundle.title,
        target_description=bundle.target_description,
    )
    return {
        "n_calls": fm.ledger.n_calls + function_fm.ledger.n_calls,
        "tokens": (
            fm.ledger.prompt_tokens
            + fm.ledger.completion_tokens
            + function_fm.ledger.prompt_tokens
            + function_fm.ledger.completion_tokens
        ),
        "cost_usd": fm.ledger.cost_usd + function_fm.ledger.cost_usd,
        "latency_s": fm.ledger.latency_s + function_fm.ledger.latency_s,
        "critical_path_s": result.fm_usage["execution"]["critical_path_s"],
        "n_features": len(result.new_features),
    }


def interaction_cost_comparison(
    bundle: DatasetBundle,
    row_counts: tuple[int, ...] = (100, 1_000, 10_000, 100_000),
    seed: int = 0,
) -> list[InteractionCostPoint]:
    """Figure 1's series: row-level vs feature-level cost as rows grow.

    The feature-level numbers are *measured* from a real SMARTFEAT run on
    *bundle* (its call count does not depend on table size); the
    row-level numbers are priced from the cost model for a single
    DI-style masked-token completion per row.
    """
    cost_model = CostModel(model="gpt-4")
    sample_record = ", ".join(
        f"{name}: {bundle.frame[name][0]}" for name in bundle.feature_columns()
    )
    record_tokens = estimate_tokens(sample_record)
    profile = smartfeat_call_profile(bundle, seed=seed)
    points: list[InteractionCostPoint] = []
    for n_rows in row_counts:
        points.append(_row_level_cost(n_rows, record_tokens, cost_model))
        points.append(
            InteractionCostPoint(
                n_rows=n_rows,
                style="feature_level",
                n_calls=int(profile["n_calls"]),
                tokens=int(profile["tokens"]),
                cost_usd=profile["cost_usd"],
                latency_s=profile["latency_s"],
            )
        )
    return points


def concurrency_speedup_report(
    bundle: DatasetBundle,
    concurrency: int = 8,
    seed: int = 0,
) -> dict:
    """Serial vs thread-pool execution of the same SMARTFEAT search.

    Both runs use identical wave semantics (``wave_size=concurrency``),
    so the executor backend is the only variable: the report verifies the
    two runs accept the same features at the same ledger totals, and
    quantifies how much shorter the modelled critical path becomes under
    bounded concurrency.
    """
    serial = _instrumented_run(bundle, SerialExecutor(), concurrency, seed)
    threaded = _instrumented_run(
        bundle, ThreadPoolFMExecutor(concurrency), concurrency, seed
    )
    speedup = (
        serial["critical_path_s"] / threaded["critical_path_s"]
        if threaded["critical_path_s"] > 0
        else 1.0
    )
    return {
        "dataset": bundle.name,
        "concurrency": concurrency,
        "n_calls": serial["n_calls"],
        "n_features": len(serial["features"]),
        "summed_latency_s": serial["summed_latency_s"],
        "serial_critical_path_s": serial["critical_path_s"],
        "concurrent_critical_path_s": threaded["critical_path_s"],
        "speedup": round(speedup, 2),
        "identical_features": serial["features"] == threaded["features"],
        "identical_ledgers": serial["ledgers"] == threaded["ledgers"],
    }


def _instrumented_run(
    bundle: DatasetBundle,
    executor: FMExecutor,
    wave_size: int,
    seed: int,
    stage_plan: str = "serial",
) -> dict:
    fm = SimulatedFM(seed=seed, model="gpt-4")
    function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
    tool = SmartFeat(
        fm=fm,
        function_fm=function_fm,
        downstream_model="random_forest",
        executor=executor,
        wave_size=wave_size,
        stage_plan=stage_plan,
    )
    result = tool.fit_transform(
        bundle.frame,
        target=bundle.target,
        descriptions=bundle.descriptions,
        title=bundle.title,
        target_description=bundle.target_description,
    )
    stats = executor.stats.snapshot()
    return {
        "features": sorted(result.new_features),
        "feature_order": list(result.new_features),
        "result": result,
        "ledgers": (fm.ledger.snapshot(), function_fm.ledger.snapshot()),
        "n_calls": fm.ledger.n_calls + function_fm.ledger.n_calls,
        "cache_hits": fm.ledger.cache_hits + function_fm.ledger.cache_hits,
        "tokens": (
            fm.ledger.prompt_tokens
            + fm.ledger.completion_tokens
            + function_fm.ledger.prompt_tokens
            + function_fm.ledger.completion_tokens
        ),
        "summed_latency_s": stats["summed_latency_s"],
        "critical_path_s": stats["critical_path_s"],
        "schedule": result.fm_usage["execution"]["schedule"],
    }


def _frames_identical(a, b) -> bool:
    """Exact (bit-level, NaN-safe) equality of two DataFrames.

    Deliberately stricter than
    :func:`repro.dataframe.reference.assert_frame_equivalent` (which
    allows float tolerance): the serial and overlapped plans run the
    same computations, so anything short of bit identity is a bug.
    """
    import numpy as np

    if a.columns != b.columns:
        return False
    for column in a.columns:
        va, vb = a[column].values, b[column].values
        if va.dtype != vb.dtype or len(va) != len(vb):
            return False
        if va.dtype.kind == "f":
            na, nb = np.isnan(va), np.isnan(vb)
            if not (na == nb).all() or not (va[~na] == vb[~nb]).all():
                return False
        elif va.dtype == object:
            from repro.dataframe.kernels import is_missing_scalar

            if any(
                x != y and not (is_missing_scalar(x) and is_missing_scalar(y))
                for x, y in zip(va, vb)
            ):
                return False
        elif not (va == vb).all():
            return False
    return True


def stage_overlap_report(
    bundle: DatasetBundle,
    concurrency: int = 8,
    seed: int = 0,
) -> dict:
    """Serial vs overlapped stage scheduling of the same SMARTFEAT search.

    Both runs use identical wave semantics and dispatch stages in the
    canonical §3.2 order; the plans differ in what each stage *sees*
    (the overlap plan cuts every stage's view to its declared reads) and
    in the modelled timeline.  The report verifies the equivalence
    contract — identical frames, accepted-feature order, and ledger call
    counts — and quantifies the modelled makespan win from overlapping
    independent stages plus the prompt tokens the narrower views save.
    """
    with ThreadPoolFMExecutor(concurrency) as serial_pool:
        serial = _instrumented_run(
            bundle, serial_pool, concurrency, seed, stage_plan="serial"
        )
    with ThreadPoolFMExecutor(concurrency) as overlap_pool:
        overlap = _instrumented_run(
            bundle, overlap_pool, concurrency, seed, stage_plan="overlap"
        )
    makespan_serial = serial["schedule"]["makespan_serial_s"]
    makespan_overlap = overlap["schedule"]["makespan_overlap_s"]
    speedup = makespan_serial / makespan_overlap if makespan_overlap > 0 else 1.0
    return {
        "dataset": bundle.name,
        "concurrency": concurrency,
        "n_calls": serial["n_calls"],
        "n_features": len(serial["features"]),
        "makespan_serial_s": makespan_serial,
        "makespan_overlap_s": makespan_overlap,
        "speedup": round(speedup, 2),
        "tokens_serial": serial["tokens"],
        "tokens_overlap": overlap["tokens"],
        "token_savings": round(1.0 - overlap["tokens"] / serial["tokens"], 4)
        if serial["tokens"]
        else 0.0,
        "critical_path": overlap["schedule"]["critical_path"],
        "identical_features": serial["feature_order"] == overlap["feature_order"],
        "identical_frames": _frames_identical(
            serial["result"].frame, overlap["result"].frame
        ),
        "identical_call_counts": (
            serial["n_calls"] == overlap["n_calls"]
            and serial["cache_hits"] == overlap["cache_hits"]
        ),
        "schedule": overlap["schedule"],
    }


def _transport_run(
    bundle: DatasetBundle,
    stage_plan: str,
    concurrency: int,
    base_latency_s: float,
    seed: int,
    wave_size: int,
    sampling_budget: int,
) -> dict:
    """One SMARTFEAT search over transport-backed stateless clients.

    The seeded simulators sit *behind* the transport as the server's
    text generator (a real API's entropy is server-side too), so the
    clients themselves are stateless and the overlap plan may physically
    fan independent stages out.  Latency is real: the transport sleeps.
    """
    selector_server = SimulatedFM(seed=seed, model="gpt-4")
    generator_server = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
    fm = TransportFMClient(
        SimulatedHTTPTransport(
            responder=lambda req: selector_server._complete_text(
                req.prompt, req.temperature
            ),
            base_latency_s=base_latency_s,
            jitter_s=0.0,
            seed=seed,
        ),
        model="gpt-4",
    )
    function_fm = TransportFMClient(
        SimulatedHTTPTransport(
            responder=lambda req: generator_server._complete_text(
                req.prompt, req.temperature
            ),
            base_latency_s=base_latency_s,
            jitter_s=0.0,
            seed=seed + 1,
        ),
        model="gpt-3.5-turbo",
    )
    with AsyncFMExecutor(concurrency) as executor:
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model="random_forest",
            executor=executor,
            wave_size=wave_size,
            sampling_budget=sampling_budget,
            stage_plan=stage_plan,
        )
        started = time.perf_counter()
        result = tool.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
        )
        wall_s = time.perf_counter() - started
    return {
        "wall_s": wall_s,
        "n_features": len(result.new_features),
        "n_calls": fm.ledger.n_calls + function_fm.ledger.n_calls,
        "schedule": result.fm_usage["execution"]["schedule"],
    }


def physical_overlap_report(
    bundle: DatasetBundle,
    concurrency: int = 8,
    base_latency_s: float = 0.03,
    seed: int = 0,
    wave_size: int = 4,
    sampling_budget: int = 8,
) -> dict:
    """Measured (not modelled) stage overlap against a stateless client.

    Runs the same search twice through transport-backed clients with
    real per-call latency on the async executor: once with the serial
    stage chain, once with ``stage_plan="overlap"`` — where the
    scheduler detects the stateless clients and physically fans the
    independent stages out through the shared event loop.  The report's
    ``stages_overlapped`` counts post-unary stages whose *measured*
    windows intersect; on a serial plan that count is zero by
    construction.  Feature identity is **not** asserted here: against a
    server-side-entropy backend, concurrent plans may legitimately draw
    different candidates — exactly like a real deployment.
    """
    serial = _transport_run(
        bundle, "serial", concurrency, base_latency_s, seed, wave_size, sampling_budget
    )
    overlap = _transport_run(
        bundle, "overlap", concurrency, base_latency_s, seed, wave_size, sampling_budget
    )
    windows = {
        node["name"]: node["measured_window_s"]
        for node in overlap["schedule"]["nodes"]
        if node["measured_window_s"] and node["fm_calls"] > 0
    }
    names = list(windows)
    overlapped_pairs = [
        (a, b)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
        if windows[a][0] < windows[b][1] and windows[b][0] < windows[a][1]
    ]
    speedup = serial["wall_s"] / overlap["wall_s"] if overlap["wall_s"] > 0 else 1.0
    return {
        "dataset": bundle.name,
        "concurrency": concurrency,
        "base_latency_s": base_latency_s,
        "wall_serial_s": round(serial["wall_s"], 3),
        "wall_overlap_s": round(overlap["wall_s"], 3),
        "measured_speedup": round(speedup, 2),
        "physical_overlap": overlap["schedule"]["physical_overlap"],
        "serial_plan_physical": serial["schedule"]["physical_overlap"],
        "stages_overlapped": [list(pair) for pair in overlapped_pairs],
        "n_calls_serial": serial["n_calls"],
        "n_calls_overlap": overlap["n_calls"],
        "n_features_serial": serial["n_features"],
        "n_features_overlap": overlap["n_features"],
        "schedule": overlap["schedule"],
    }
