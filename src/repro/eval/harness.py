"""Feature matrices and cross-validated AUC (the Table 4/5 protocol).

Section 4.1: 75/25 partition, 10-fold cross-validation, AUC as the
metric, categorical features factorised.  ``strict`` matrices refuse
non-finite values — exactly like scikit-learn estimators — which is how a
CAAFE frame carrying an unguarded division "causes the ML models to
fail" on Diabetes.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.dataframe.reshape import factorize
from repro.ml.model_selection import cross_val_auc
from repro.ml.preprocessing import SimpleImputer
from repro.ml.registry import MODEL_NAMES, make_model

__all__ = ["evaluate_models", "feature_matrix"]


class NonFiniteFeaturesError(ValueError):
    """A strict feature matrix contained NaN or infinity."""


def feature_matrix(
    frame: DataFrame, target: str, strict: bool = True
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Build ``(X, y, feature_names)`` from a dataframe.

    Categorical columns are factorised (the paper's preprocessing);
    numeric columns pass through with missing values median-imputed (a
    standard cleaning step).  Every column converts in one vectorised
    pass — ``factorize`` runs on ``np.unique`` codes and ``_numeric`` is
    a C-level cast — so this scales to the row counts
    ``benchmarks/bench_dataplane.py`` drives through it.  With
    ``strict=True``, *infinite* values — the product of unguarded
    division — raise :class:`NonFiniteFeaturesError`, mirroring how
    scikit-learn models fail on CAAFE's Diabetes output.
    ``strict=False`` masks them to large finite values (CAAFE's lenient
    internal validator).
    """
    names: list[str] = []
    columns: list[np.ndarray] = []
    for name in frame.columns:
        if name == target:
            continue
        series = frame[name]
        if series.dtype == object:
            codes, _ = factorize(series)
            columns.append(codes.astype(np.float64))
        else:
            columns.append(series._numeric())
        names.append(name)
    if not columns:
        raise ValueError("no feature columns")
    X = np.column_stack(columns)
    if strict:
        inf_mask = np.isinf(X)
        if inf_mask.any():
            per_column = inf_mask.any(axis=0)
            bad = [names[j] for j in np.flatnonzero(per_column)]
            raise NonFiniteFeaturesError(
                f"infinite values in features {bad[:5]} — models cannot fit"
            )
    if not strict:
        X = np.nan_to_num(X, nan=0.0, posinf=1e12, neginf=-1e12)
    elif np.isnan(X).any():
        X = SimpleImputer(strategy="median").fit_transform(X)
    y = frame[target]._numeric().astype(np.int64)
    return X, y, names


def evaluate_models(
    frame: DataFrame,
    target: str,
    models: tuple[str, ...] = MODEL_NAMES,
    n_splits: int = 10,
    seed: int = 0,
    strict: bool = True,
) -> dict[str, float]:
    """Cross-validated AUC (percent) per downstream model.

    Returns ``{model_name: auc_percent}``; AUC is the mean over the
    stratified folds, scaled by 100 like the paper's tables.
    """
    X, y, _ = feature_matrix(frame, target, strict=strict)
    out: dict[str, float] = {}
    for name in models:
        model = make_model(name, seed=seed)
        scores = cross_val_auc(model, X, y, n_splits=n_splits, seed=seed)
        out[name] = float(np.mean(scores)) * 100.0
    return out
