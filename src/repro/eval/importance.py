"""Table 6: percentage of new features among the top-10 under three
feature-selection metrics (information gain, RFE, tree importance)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import AutoFeatLike, CAAFELike, FeaturetoolsDFS
from repro.core import SmartFeat
from repro.datasets.schema import DatasetBundle
from repro.dataframe import DataFrame
from repro.eval.harness import feature_matrix
from repro.fm import SimulatedFM
from repro.ml.feature_selection import (
    mutual_info_classif,
    rfe_ranking,
    top_k_features,
    tree_feature_importance,
)

__all__ = ["ImportanceRow", "importance_table", "top_k_new_fraction"]


@dataclass
class ImportanceRow:
    """One method's Table 6 row."""

    method: str
    n_generated: int
    n_selected: int
    ig_at_k: float
    rfe_at_k: float
    fi_at_k: float
    new_columns: list[str] = field(default_factory=list)


def top_k_new_fraction(
    frame: DataFrame,
    target: str,
    new_columns: list[str],
    k: int = 10,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Fraction of new features in the top-*k* under IG / RFE / FI."""
    X, y, names = feature_matrix(frame, target, strict=False)
    new = set(new_columns)

    def fraction(scores: np.ndarray) -> float:
        top = top_k_features(scores, names, k=min(k, len(names)))
        return sum(1 for name in top if name in new) / len(top)

    ig = fraction(mutual_info_classif(X, y))
    ranking = rfe_ranking(X, y)
    rfe = fraction(-ranking.astype(np.float64))  # rank 1 = best
    fi = fraction(tree_feature_importance(X, y, seed=seed))
    return ig, rfe, fi


def importance_table(
    bundle: DatasetBundle,
    methods: tuple[str, ...] = ("smartfeat", "caafe", "featuretools", "autofeat"),
    k: int = 10,
    seed: int = 0,
    downstream_model: str = "random_forest",
) -> list[ImportanceRow]:
    """Run each method on *bundle* and compute its Table 6 row."""
    rows: list[ImportanceRow] = []
    for method in methods:
        if method == "smartfeat":
            tool = SmartFeat(
                fm=SimulatedFM(seed=seed, model="gpt-4"),
                function_fm=SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo"),
                downstream_model=downstream_model,
            )
            result = tool.fit_transform(
                bundle.frame,
                target=bundle.target,
                descriptions=bundle.descriptions,
                title=bundle.title,
                target_description=bundle.target_description,
            )
            frame, new_columns = result.frame, result.new_columns
            n_generated = len(new_columns) + len(result.rejections)
            n_selected = len(new_columns)
        elif method == "caafe":
            caafe = CAAFELike(SimulatedFM(seed=seed, model="gpt-4"), seed=seed)
            result = caafe.fit_transform(
                bundle.frame,
                bundle.target,
                descriptions=bundle.descriptions,
                title=bundle.title,
            )
            frame, new_columns = result.frame, result.new_columns
            n_generated, n_selected = result.n_generated, result.n_selected
        elif method == "featuretools":
            result = FeaturetoolsDFS().fit_transform(bundle.frame, bundle.target)
            frame, new_columns = result.frame, result.new_columns
            n_generated, n_selected = result.n_generated, result.n_selected
        elif method == "autofeat":
            result = AutoFeatLike().fit_transform(bundle.frame, bundle.target)
            frame, new_columns = result.frame, result.new_columns
            n_generated, n_selected = result.n_generated, result.n_selected
        else:
            raise ValueError(f"unknown method {method!r}")
        ig, rfe, fi = top_k_new_fraction(frame, bundle.target, new_columns, k=k, seed=seed)
        rows.append(
            ImportanceRow(
                method=method,
                n_generated=n_generated,
                n_selected=n_selected,
                ig_at_k=ig,
                rfe_at_k=rfe,
                fi_at_k=fi,
                new_columns=list(new_columns),
            )
        )
    return rows
