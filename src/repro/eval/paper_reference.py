"""The paper's published numbers, as data.

Hard-codes the evaluation tables of the paper (Tables 4–7 and the
dataset facts of Table 3) so the benchmarks can render *paper vs
measured* comparisons and score shape agreement (sign of the delta per
cell) instead of eyeballing.

All values transcribed from the CIDR 2024 paper text.
"""

from __future__ import annotations

from repro.eval.reporting import render_table
from repro.eval.runner import SweepResult

__all__ = [
    "PAPER_TABLE4_AVG",
    "PAPER_TABLE5_MEDIAN",
    "PAPER_TABLE6_TENNIS",
    "PAPER_TABLE7_TENNIS",
    "delta_sign_agreement",
    "render_paper_comparison",
]

_DATASETS = (
    "diabetes", "heart", "bank", "adult", "housing", "lawschool", "west_nile", "tennis",
)

#: Table 4 — average AUC.  None = "-" (failure / DNF) in the paper.
PAPER_TABLE4_AVG: dict[str, dict[str, float | None]] = {
    "initial": dict(zip(_DATASETS, (82.20, 67.38, 91.46, 76.81, 86.72, 84.00, 78.96, 77.93))),
    "smartfeat": dict(zip(_DATASETS, (86.76, 72.15, 91.47, 87.00, 92.19, 83.68, 82.12, 87.39))),
    "caafe": dict(zip(_DATASETS, (None, 69.67, 91.73, 83.10, 92.15, 83.86, 80.11, 88.50))),
    "featuretools": dict(zip(_DATASETS, (82.24, 66.78, 91.04, 73.85, 79.47, 83.82, 73.12, 81.29))),
    "autofeat": dict(zip(_DATASETS, (75.24, 64.92, None, None, 77.63, None, 70.90, 71.73))),
}

#: Table 5 — median AUC.
PAPER_TABLE5_MEDIAN: dict[str, dict[str, float | None]] = {
    "initial": dict(zip(_DATASETS, (83.18, 69.19, 92.77, 80.63, 91.28, 83.73, 77.66, 80.41))),
    "smartfeat": dict(zip(_DATASETS, (87.78, 71.70, 92.86, 86.97, 90.97, 83.32, 82.06, 88.06))),
    "caafe": dict(zip(_DATASETS, (None, 70.87, 93.06, 87.00, 92.84, 83.77, 80.90, 89.51))),
    "featuretools": dict(zip(_DATASETS, (82.78, 69.37, 91.06, 68.91, 73.39, 83.74, 75.71, 83.03))),
    "autofeat": dict(zip(_DATASETS, (84.20, 70.42, None, None, 75.65, None, 76.53, 67.83))),
}

#: Table 6 — Tennis feature-importance summary:
#: (n_generated, n_selected or None, IG@10, RFE@10, FI@10) as fractions.
PAPER_TABLE6_TENNIS: dict[str, tuple[int, int | None, float, float, float]] = {
    "smartfeat": (25, None, 0.9, 0.8, 0.8),
    "caafe": (5, None, 0.5, 0.5, 0.5),
    "featuretools": (89, 35, 0.9, 0.9, 0.9),
    "autofeat": (1978, 5, 0.1, 0.3, 0.3),
}

#: Table 7 — Tennis operator ablation, rows × models (LR, NB, RF, ET, DNN).
PAPER_TABLE7_TENNIS: dict[str, dict[str, float]] = {
    "Initial": {"lr": 88.17, "nb": 66.85, "rf": 80.41, "et": 79.14, "dnn": 84.50},
    "+Unary": {"lr": 88.27, "nb": 65.16, "rf": 81.17, "et": 75.14, "dnn": 87.31},
    "+Binary": {"lr": 88.51, "nb": 79.68, "rf": 87.38, "et": 88.02, "dnn": 87.57},
    "+High-order": {"lr": 88.22, "nb": 66.49, "rf": 80.15, "et": 77.56, "dnn": 86.08},
    "+Extractor": {"lr": 88.53, "nb": 90.00, "rf": 89.88, "et": 90.04, "dnn": 86.92},
    "all": {"lr": 88.06, "nb": 84.05, "rf": 89.56, "et": 88.86, "dnn": 86.46},
}


def _paper_delta(method: str, dataset: str, table: dict) -> float | None:
    """Paper's percentage delta vs Initial for one cell, None for '-'."""
    value = table[method][dataset]
    initial = table["initial"][dataset]
    if value is None or initial in (None, 0):
        return None
    return (value - initial) / initial * 100.0


def _measured_delta(result: SweepResult, method: str, dataset: str, aggregate: str) -> float | None:
    outcome = result.outcomes.get((dataset, method))
    initial = result.outcomes.get((dataset, "initial"))
    if outcome is None or initial is None:
        return None
    measured = outcome.average_auc if aggregate == "average" else outcome.median_auc
    base = initial.average_auc if aggregate == "average" else initial.median_auc
    if measured is None or base in (None, 0):
        return None
    return (measured - base) / base * 100.0


def delta_sign_agreement(
    result: SweepResult, aggregate: str = "average", threshold: float = 1.0
) -> tuple[int, int]:
    """Score shape agreement against the paper: ``(agreeing, comparable)``.

    A cell *agrees* when paper and measured deltas share a sign, or both
    are within ±*threshold* percent ("flat agrees with flat").  Cells
    where either side is a failure/DNF are skipped.
    """
    paper = PAPER_TABLE4_AVG if aggregate == "average" else PAPER_TABLE5_MEDIAN
    agreeing = comparable = 0
    for method in ("smartfeat", "caafe", "featuretools", "autofeat"):
        for dataset in _DATASETS:
            expected = _paper_delta(method, dataset, paper)
            measured = _measured_delta(result, method, dataset, aggregate)
            if expected is None or measured is None:
                continue
            comparable += 1
            both_flat = abs(expected) < threshold and abs(measured) < threshold
            if both_flat or (expected > 0) == (measured > 0):
                agreeing += 1
    return agreeing, comparable


def render_paper_comparison(result: SweepResult, aggregate: str = "average") -> str:
    """Side-by-side paper-vs-measured delta table (one row per method)."""
    paper = PAPER_TABLE4_AVG if aggregate == "average" else PAPER_TABLE5_MEDIAN
    rows = []
    for method in ("smartfeat", "caafe", "featuretools", "autofeat"):
        row = [method]
        for dataset in _DATASETS:
            expected = _paper_delta(method, dataset, paper)
            measured = _measured_delta(result, method, dataset, aggregate)
            left = "-" if expected is None else f"{expected:+.1f}"
            right = "-" if measured is None else f"{measured:+.1f}"
            row.append(f"{left} | {right}")
        rows.append(row)
    table = render_table(["Method (paper | ours, Δ%)", *_DATASETS], rows)
    agreeing, comparable = delta_sign_agreement(result, aggregate)
    return f"{table}\n\nDelta sign agreement: {agreeing}/{comparable} comparable cells"
