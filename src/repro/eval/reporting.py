"""Plain-text table renderers shaped like the paper's tables."""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.runner import SweepResult

__all__ = [
    "render_auc_table",
    "render_schedule",
    "render_sweep_summary",
    "render_table",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table with a header rule."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), "  ".join("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _format_cell(value: float | None, initial: float | None, status: str) -> str:
    """One Table 4/5 cell: ``AUC (+x.x%)`` / ``-`` for failures / ``DNF`` /
    ``BUDGET`` for FM-budget-exhausted cells / ``ERR`` for crashed ones."""
    if status == "failed":
        return "-"
    if status == "dnf":
        return "DNF"
    if status == "budget":
        return "BUDGET"
    if status == "error":
        return "ERR"
    if value is None:
        return "?"
    if initial is None or initial == 0:
        return f"{value:.2f}"
    delta = (value - initial) / initial * 100.0
    if abs(delta) < 0.25:
        tag = "(~)"
    else:
        tag = f"({delta:+.1f}%)"
    return f"{value:.2f} {tag}"


def render_auc_table(result: SweepResult, aggregate: str = "average") -> str:
    """Render a sweep as the paper's Table 4 (average) or Table 5 (median).

    Rows: Initial AUC then one row per method; columns: datasets; cells:
    ``AUC (+delta%)`` with ``-`` for failures and ``DNF`` for timeouts.
    """
    if aggregate not in ("average", "median"):
        raise ValueError("aggregate must be 'average' or 'median'")
    datasets = list(result.config.datasets)
    headers = ["Method", *datasets]
    def agg(outcome):
        return outcome.average_auc if aggregate == "average" else outcome.median_auc

    initial_by_dataset = {}
    for dataset in datasets:
        outcome = result.outcomes.get((dataset, "initial"))
        initial_by_dataset[dataset] = agg(outcome) if outcome else None
    rows: list[list[str]] = []
    first = ["Initial AUC"]
    for dataset in datasets:
        value = initial_by_dataset[dataset]
        first.append(f"{value:.2f}" if value is not None else "?")
    rows.append(first)
    for method in result.config.methods:
        if method == "initial":
            continue
        row = [method]
        for dataset in datasets:
            outcome = result.outcomes.get((dataset, method))
            if outcome is None:
                row.append("?")
                continue
            row.append(_format_cell(agg(outcome), initial_by_dataset[dataset], outcome.status))
        rows.append(row)
    return render_table(headers, rows)


def _node_size(node: dict) -> str:
    """A node's dispatch-size note: granted draws for shrunk nodes."""
    if node["status"] == "shrunk" and node.get("granted_draws") is not None:
        return f"{node['granted_draws']}/{node['planned_draws']} draws"
    return ""


def render_schedule(schedule: dict) -> str:
    """Render one run's stage schedule: dispatch order, per-node status,
    budget-planner decisions, and the modelled critical path.

    *schedule* is the ``result.fm_usage["execution"]["schedule"]``
    payload the stage scheduler writes.
    """
    header = (
        f"stage plan: {schedule['plan']}"
        f" (budget planning {'on' if schedule['plan_budget'] else 'off'})"
    )
    lines = [header, "dispatch: " + " -> ".join(schedule["dispatch_order"])]
    rows = []
    for node in schedule["nodes"]:
        status = node["status"]
        note = _node_size(node) or node.get("reason", "")
        rows.append(
            [
                node["name"],
                status,
                str(node["fm_calls"]),
                f"{node['critical_path_s']:.1f}",
                f"{node['start_s']:.1f}-{node['end_s']:.1f}",
                note,
            ]
        )
    lines.append(
        render_table(
            ["stage", "status", "calls", "fm cp (s)", "window (s)", "note"], rows
        )
    )
    degraded = schedule.get("degraded") or []
    if degraded:
        lines.append("degraded: " + ", ".join(degraded))
    lines.append(
        f"critical path: {' -> '.join(schedule['critical_path'])} — "
        f"{schedule['makespan_overlap_s']:,.1f}s overlapped vs "
        f"{schedule['makespan_serial_s']:,.1f}s serial "
        f"({schedule['overlap_speedup']:.2f}x)"
    )
    return "\n".join(lines)


def _schedule_summary_lines(result: SweepResult) -> list[str]:
    """Stage-schedule roll-up across the sweep's SMARTFEAT cells."""
    schedules = [
        outcome.schedule
        for outcome in result.outcomes.values()
        if outcome.schedule is not None
    ]
    if not schedules:
        return []
    sample = schedules[0]
    lines = [
        f"stage plan: {sample['plan']} — dispatch "
        + " -> ".join(sample["dispatch_order"])
    ]
    degraded: dict[str, int] = {}
    for schedule in schedules:
        for name in schedule.get("degraded", []):
            degraded[name] = degraded.get(name, 0) + 1
    if degraded:
        parts = ", ".join(
            f"{name} ({count} cells)" for name, count in sorted(degraded.items())
        )
        lines.append(f"degraded stages: {parts}")
    longest = max(schedules, key=lambda s: s["makespan_overlap_s"])
    lines.append(
        f"stage critical path (worst cell): "
        f"{' -> '.join(longest['critical_path'])} — "
        f"{longest['makespan_overlap_s']:,.1f}s overlapped vs "
        f"{longest['makespan_serial_s']:,.1f}s serial "
        f"({longest['overlap_speedup']:.2f}x)"
    )
    return lines


def render_sweep_summary(result: SweepResult) -> str:
    """One-paragraph sweep roll-up: cells by status, FM spend, wall clock.

    The modelled line compares the full-scale serial sweep duration with
    the makespan at the configured ``sweep_concurrency`` — the headline
    number the efficiency benchmark tracks.  When the sweep's SMARTFEAT
    cells carried stage schedules, the per-stage dispatch order, any
    budget-degraded stages, and the worst cell's critical path are
    appended.
    """
    counts = result.status_counts()
    status_text = ", ".join(f"{counts[s]} {s}" for s in sorted(counts)) or "no cells"
    concurrency = result.config.sweep_concurrency
    lines = [
        f"cells: {len(result.outcomes)} ({status_text})",
        f"fm: {result.total_fm_calls} calls, ${result.total_fm_cost_usd:.2f}",
        f"sweep wall: {result.wall_s:.1f}s at sweep_concurrency={concurrency}",
    ]
    serial = result.modelled_serial_s
    if serial > 0 and concurrency > 1:
        parallel = result.modelled_wall_s()
        speedup = serial / parallel if parallel > 0 else 1.0
        lines.append(
            f"modelled full-scale: {serial:,.0f}s serial -> {parallel:,.0f}s "
            f"at concurrency {concurrency} ({speedup:.2f}x)"
        )
    lines.extend(_schedule_summary_lines(result))
    return "\n".join(lines)
