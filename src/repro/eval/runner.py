"""The method × dataset × model sweep behind Tables 4 and 5.

Protocol notes (Section 4.1/4.2 of the paper → this reproduction):

* Each AFE method transforms the dataset, then the five downstream
  models are scored with stratified cross-validated AUC.
* SMARTFEAT and CAAFE are *model-aware* (the downstream model appears in
  their prompts / validation), so they run once per (dataset, model).
  Featuretools and AutoFeat are context-free and run once per dataset.
* Working size: the sweep runs on ``n_rows`` sampled rows (generation
  rules are identical at any size).  Method wall-time is extrapolated to
  the full Table 3 row count with a per-method scaling exponent, plus the
  simulated FM latency; a method whose modelled full-scale time exceeds
  ``time_limit_s`` records a **DNF** — reproducing the paper's AutoFeat
  timeouts on Bank/Adult and CAAFE's DNN timeouts on large datasets.
* A method whose transformed frame breaks strict model fitting (e.g.
  CAAFE's divide-by-zero on Diabetes) records a **failure**.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import (
    AutoFeatLike,
    BaselineTimeoutError,
    CAAFELike,
    Deadline,
    FeaturetoolsDFS,
)
from repro.core import SmartFeat
from repro.datasets import load_dataset
from repro.datasets.schema import DatasetBundle
from repro.eval.harness import NonFiniteFeaturesError, evaluate_models
from repro.fm import SimulatedFM
from repro.ml.registry import MODEL_NAMES

__all__ = ["MethodOutcome", "SweepConfig", "SweepResult", "run_sweep"]

METHOD_NAMES: tuple[str, ...] = ("initial", "smartfeat", "caafe", "featuretools", "autofeat")

#: Wall-time extrapolation exponents: expansion/selection methods scale
#: superlinearly with rows (wide matrices, iterative selection).
_TIME_SCALING_ALPHA = {
    "initial": 0.0,
    "smartfeat": 1.0,
    "featuretools": 1.0,
    "caafe": 1.0,
    # AutoFeat's full pipeline (multi-step sympy expansion + cross-validated
    # L1 paths) scales harder with rows than this reimplementation measures;
    # the exponent reflects its published behaviour of timing out on the
    # paper's two largest datasets.
    "autofeat": 1.7,
}

#: CAAFE's wall time is dominated by training its validation model each
#: iteration.  This substrate's scaled-down model defaults (e.g. the DNN
#: trains 40 epochs with early stopping vs. the library default of 200)
#: under-measure that cost, so modelled time is re-inflated per validation
#: model.  Documented in EXPERIMENTS.md (efficiency calibration).
_VALIDATION_MODEL_CALIBRATION = {"dnn": 8.0}


@dataclass
class SweepConfig:
    """Knobs for one sweep run.

    ``n_rows`` caps the working sample per dataset; ``time_limit_s`` is
    the modelled full-scale budget (the paper used one hour = 3600 s);
    ``None`` or ``0`` disables the limit.
    """

    datasets: tuple[str, ...] = (
        "diabetes",
        "heart",
        "bank",
        "adult",
        "housing",
        "lawschool",
        "west_nile",
        "tennis",
    )
    methods: tuple[str, ...] = METHOD_NAMES
    models: tuple[str, ...] = MODEL_NAMES
    n_rows: int = 1500
    n_splits: int = 3
    time_limit_s: float | None = 3600.0
    seed: int = 0

    @property
    def deadline_seconds(self) -> float | None:
        return self.time_limit_s if self.time_limit_s else None


@dataclass
class MethodOutcome:
    """One (dataset, method) cell: per-model AUCs plus bookkeeping.

    ``status`` summarises the cell; ``model_status`` records per-model
    outcomes for model-aware methods (CAAFE's DNN can DNF while its other
    runs complete, as in the paper).  ``modelled_s`` is the worst
    per-run modelled full-scale time.
    """

    dataset: str
    method: str
    auc_by_model: dict[str, float] = field(default_factory=dict)
    status: str = "ok"  # "ok" | "dnf" | "failed" | "partial"
    detail: str = ""
    model_status: dict[str, str] = field(default_factory=dict)
    n_generated: int = 0
    n_selected: int = 0
    wall_s: float = 0.0
    modelled_s: float = 0.0
    fm_cost_usd: float = 0.0
    fm_calls: int = 0

    @property
    def average_auc(self) -> float | None:
        if not self.auc_by_model:
            return None
        values = list(self.auc_by_model.values())
        return sum(values) / len(values)

    @property
    def median_auc(self) -> float | None:
        if not self.auc_by_model:
            return None
        values = sorted(self.auc_by_model.values())
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])


@dataclass
class SweepResult:
    """All outcomes of a sweep, indexed by (dataset, method)."""

    config: SweepConfig
    outcomes: dict[tuple[str, str], MethodOutcome] = field(default_factory=dict)

    def get(self, dataset: str, method: str) -> MethodOutcome:
        return self.outcomes[(dataset, method)]


def _transform_with_method(
    method: str,
    bundle: DatasetBundle,
    model_name: str,
    seed: int,
    deadline: Deadline,
):
    """Run one AFE method; returns (frame, n_generated, n_selected, fm)."""
    if method == "initial":
        return bundle.frame, 0, 0, None
    if method == "smartfeat":
        fm = SimulatedFM(seed=seed, model="gpt-4")
        function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
        tool = SmartFeat(fm=fm, function_fm=function_fm, downstream_model=model_name)
        result = tool.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
        )
        n_new = len(result.new_columns)
        fm.ledger.latency_s += function_fm.ledger.latency_s
        fm.ledger.cost_usd += function_fm.ledger.cost_usd
        fm.ledger.n_calls += function_fm.ledger.n_calls
        return result.frame, n_new, n_new, fm
    if method == "caafe":
        fm = SimulatedFM(seed=seed, model="gpt-4")
        caafe = CAAFELike(fm, validation_model=model_name, seed=seed)
        result = caafe.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
            deadline=deadline,
        )
        return result.frame, result.n_generated, result.n_selected, fm
    if method == "featuretools":
        result = FeaturetoolsDFS().fit_transform(bundle.frame, bundle.target, deadline=deadline)
        return result.frame, result.n_generated, result.n_selected, None
    if method == "autofeat":
        result = AutoFeatLike().fit_transform(bundle.frame, bundle.target, deadline=deadline)
        return result.frame, result.n_generated, result.n_selected, None
    raise ValueError(f"unknown method {method!r}; expected one of {METHOD_NAMES}")


def _model_aware(method: str) -> bool:
    return method in ("smartfeat", "caafe")


def _evaluate_outcome_model(outcome, frame, bundle, model_name, config) -> None:
    """Score one model on one transformed frame, recording failures."""
    try:
        aucs = evaluate_models(
            frame,
            bundle.target,
            models=(model_name,),
            n_splits=config.n_splits,
            seed=config.seed,
        )
        outcome.auc_by_model[model_name] = aucs[model_name]
        outcome.model_status[model_name] = "ok"
    except NonFiniteFeaturesError as exc:
        outcome.model_status[model_name] = "failed"
        outcome.detail = str(exc)


def _summarise_status(outcome: MethodOutcome) -> None:
    statuses = set(outcome.model_status.values())
    if statuses == {"ok"}:
        outcome.status = "ok"
    elif "ok" not in statuses:
        outcome.status = "failed" if "failed" in statuses else "dnf"
    else:
        outcome.status = "partial"


def _run_model_aware(outcome, bundle, method, config, scale_base) -> None:
    """Per-model transform + evaluation, with per-model DNF accounting."""
    alpha = _TIME_SCALING_ALPHA[method]
    for model_name in config.models:
        started = time.monotonic()
        try:
            frame, n_gen, n_sel, fm = _transform_with_method(
                method, bundle, model_name, config.seed,
                Deadline(seconds=config.deadline_seconds),
            )
        except BaselineTimeoutError as exc:
            outcome.model_status[model_name] = "dnf"
            outcome.detail = str(exc)
            continue
        wall = time.monotonic() - started
        outcome.wall_s += wall
        fm_latency = 0.0
        if fm is not None:
            fm_latency = fm.ledger.latency_s
            outcome.fm_cost_usd += fm.ledger.cost_usd
            outcome.fm_calls += fm.ledger.n_calls
        calibration = (
            _VALIDATION_MODEL_CALIBRATION.get(model_name, 1.0) if method == "caafe" else 1.0
        )
        modelled = wall * calibration * (scale_base**alpha) + fm_latency
        outcome.modelled_s = max(outcome.modelled_s, modelled)
        outcome.n_generated = max(outcome.n_generated, n_gen)
        outcome.n_selected = max(outcome.n_selected, n_sel)
        if config.time_limit_s and modelled > config.time_limit_s:
            outcome.model_status[model_name] = "dnf"
            outcome.detail = (
                f"{model_name}: modelled full-scale time {modelled:.0f}s exceeds "
                f"{config.time_limit_s:.0f}s"
            )
            continue
        _evaluate_outcome_model(outcome, frame, bundle, model_name, config)


def _run_model_agnostic(outcome, bundle, method, config, scale_base) -> None:
    """One transform shared across models; whole-cell DNF semantics."""
    started = time.monotonic()
    try:
        frame, n_gen, n_sel, _ = _transform_with_method(
            method, bundle, config.models[0], config.seed,
            Deadline(seconds=config.deadline_seconds),
        )
    except BaselineTimeoutError as exc:
        outcome.status = "dnf"
        outcome.detail = str(exc)
        return
    outcome.wall_s = time.monotonic() - started
    outcome.n_generated, outcome.n_selected = n_gen, n_sel
    alpha = _TIME_SCALING_ALPHA[method]
    outcome.modelled_s = outcome.wall_s * (scale_base**alpha)
    if config.time_limit_s and outcome.modelled_s > config.time_limit_s:
        outcome.status = "dnf"
        outcome.detail = (
            f"modelled full-scale time {outcome.modelled_s:.0f}s exceeds "
            f"{config.time_limit_s:.0f}s"
        )
        return
    for model_name in config.models:
        _evaluate_outcome_model(outcome, frame, bundle, model_name, config)
    _summarise_status(outcome)


def run_sweep(config: SweepConfig | None = None, progress=None) -> SweepResult:
    """Run the full Table 4/5 sweep under *config*.

    *progress* is an optional callable receiving human-readable status
    lines (benchmarks print them).
    """
    config = config or SweepConfig()
    result = SweepResult(config=config)
    say = progress or (lambda message: None)
    for dataset_name in config.datasets:
        bundle = load_dataset(dataset_name, seed=config.seed, n_rows=config.n_rows)
        scale_base = bundle.spec.n_rows / max(len(bundle.frame), 1)
        for method in config.methods:
            outcome = MethodOutcome(dataset=dataset_name, method=method)
            say(f"{dataset_name}: running {method}")
            if _model_aware(method):
                _run_model_aware(outcome, bundle, method, config, scale_base)
                _summarise_status(outcome)
            else:
                _run_model_agnostic(outcome, bundle, method, config, scale_base)
            result.outcomes[(dataset_name, method)] = outcome
    return result
