"""The method × dataset × model sweep behind Tables 4 and 5.

Protocol notes (Section 4.1/4.2 of the paper → this reproduction):

* Each AFE method transforms the dataset, then the five downstream
  models are scored with stratified cross-validated AUC.
* SMARTFEAT and CAAFE are *model-aware* (the downstream model appears in
  their prompts / validation), so they run once per (dataset, model).
  Featuretools and AutoFeat are context-free and run once per dataset.
* Working size: the sweep runs on ``n_rows`` sampled rows (generation
  rules are identical at any size).  Method wall-time is extrapolated to
  the full Table 3 row count with a per-method scaling exponent, plus the
  simulated FM latency; a method whose modelled full-scale time exceeds
  ``time_limit_s`` records a **DNF** — reproducing the paper's AutoFeat
  timeouts on Bank/Adult and CAAFE's DNN timeouts on large datasets.
* A method whose transformed frame breaks strict model fitting (e.g.
  CAAFE's divide-by-zero on Diabetes) records a **failure**.

Execution model
---------------
Every (dataset, method) cell is an independent, order-insensitive job:
it loads no global state, carries its own seeded FM clients, and writes
only its own :class:`MethodOutcome`.  ``run_sweep`` therefore dispatches
the cells through a pluggable
:class:`~repro.eval.sweep_executor.SweepExecutor` —
serial by default, a bounded thread pool at
``SweepConfig.sweep_concurrency > 1`` — and assembles results in
configuration order regardless of completion order, so serial and
parallel sweeps produce identical outcomes for seeded clients (timing
fields aside).  One caveat: DNF decisions extrapolate *measured* wall
time, which scheduler contention inflates under heavy fan-out, so pin
``time_limit_s=None`` when asserting exact serial/parallel equality on
borderline cells.  Cells are fault-isolated: one crashing method records a
``status="error"`` cell instead of killing the sweep, and a cell whose
FM spend crosses the configured :class:`~repro.fm.base.Budget` degrades
to ``status="budget"`` while every other cell proceeds untouched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

from repro.baselines import (
    AutoFeatLike,
    BaselineTimeoutError,
    CAAFELike,
    Deadline,
    FeaturetoolsDFS,
)
from repro.core import SmartFeat
from repro.datasets import load_dataset
from repro.datasets.schema import DatasetBundle
from repro.eval.harness import NonFiniteFeaturesError, evaluate_models
from repro.eval.sweep_executor import (
    SerialSweepExecutor,
    SweepExecutor,
    ThreadPoolSweepExecutor,
)
from repro.fm import SimulatedFM
from repro.fm.base import Budget
from repro.fm.cost import critical_path_seconds
from repro.fm.errors import FMBudgetExceededError
from repro.ml.registry import MODEL_NAMES

__all__ = ["MethodOutcome", "SweepConfig", "SweepResult", "run_sweep"]

METHOD_NAMES: tuple[str, ...] = ("initial", "smartfeat", "caafe", "featuretools", "autofeat")

#: Wall-time extrapolation exponents: expansion/selection methods scale
#: superlinearly with rows (wide matrices, iterative selection).
_TIME_SCALING_ALPHA = {
    "initial": 0.0,
    "smartfeat": 1.0,
    "featuretools": 1.0,
    "caafe": 1.0,
    # AutoFeat's full pipeline (multi-step sympy expansion + cross-validated
    # L1 paths) scales harder with rows than this reimplementation measures;
    # the exponent reflects its published behaviour of timing out on the
    # paper's two largest datasets.
    "autofeat": 1.7,
}

#: CAAFE's wall time is dominated by training its validation model each
#: iteration.  This substrate's scaled-down model defaults (e.g. the DNN
#: trains 40 epochs with early stopping vs. the library default of 200)
#: under-measure that cost, so modelled time is re-inflated per validation
#: model.  Documented in EXPERIMENTS.md (efficiency calibration).
_VALIDATION_MODEL_CALIBRATION = {"dnn": 8.0}


@dataclass
class SweepConfig:
    """Knobs for one sweep run.

    ``n_rows`` caps the working sample per dataset; ``time_limit_s`` is
    the modelled full-scale budget (the paper used one hour = 3600 s);
    ``None`` or ``0`` disables the limit.

    ``sweep_concurrency`` caps how many (dataset, method) cells run at
    once (1 = the seed's serial nested loop).  ``max_cost_usd`` /
    ``max_fm_calls`` / ``max_fm_latency_s`` configure a *per-cell* FM
    :class:`~repro.fm.base.Budget`: a cell that crosses a limit records
    ``status="budget"`` without affecting any other cell.

    ``stage_plan`` selects SMARTFEAT's stage-view semantics
    (``"serial"`` — the paper's chain — or ``"overlap"`` — declared-read
    views with the DAG schedule; see
    :class:`~repro.core.scheduler.StageScheduler`), and
    ``plan_budget=True`` turns on budget-aware stage planning: a
    SMARTFEAT cell with a tight budget right-sizes its stages and
    completes (recording degraded stages in its schedule) instead of
    degrading the whole cell to ``status="budget"``.

    Note that DNF decisions compare *measured* wall time (extrapolated)
    against ``time_limit_s``; under heavy cell parallelism, scheduler
    contention inflates measured times, so pin ``time_limit_s=None`` when
    asserting serial/parallel equality.
    """

    datasets: tuple[str, ...] = (
        "diabetes",
        "heart",
        "bank",
        "adult",
        "housing",
        "lawschool",
        "west_nile",
        "tennis",
    )
    methods: tuple[str, ...] = METHOD_NAMES
    models: tuple[str, ...] = MODEL_NAMES
    n_rows: int = 1500
    n_splits: int = 3
    time_limit_s: float | None = 3600.0
    seed: int = 0
    sweep_concurrency: int = 1
    max_cost_usd: float | None = None
    max_fm_calls: int | None = None
    max_fm_latency_s: float | None = None
    stage_plan: str = "serial"
    plan_budget: bool = False

    @property
    def deadline_seconds(self) -> float | None:
        return self.time_limit_s if self.time_limit_s else None

    def cell_budget(self) -> Budget | None:
        """A fresh per-cell FM budget, or None when no limit is set."""
        if (
            self.max_cost_usd is None
            and self.max_fm_calls is None
            and self.max_fm_latency_s is None
        ):
            return None
        return Budget(
            max_cost_usd=self.max_cost_usd,
            max_calls=self.max_fm_calls,
            max_latency_s=self.max_fm_latency_s,
        )


@dataclass
class MethodOutcome:
    """One (dataset, method) cell: per-model AUCs plus bookkeeping.

    ``status`` summarises the cell — ``"ok"``, ``"partial"``, ``"dnf"``,
    ``"failed"``, ``"budget"`` (FM budget exhausted mid-cell), or
    ``"error"`` (the method crashed; the sweep continued without it).
    ``model_status`` records per-model outcomes for model-aware methods
    (CAAFE's DNN can DNF while its other runs complete, as in the
    paper).  ``modelled_s`` is the worst per-run modelled full-scale
    time.  ``schedule`` is the SMARTFEAT stage-schedule report of the
    cell's slowest run (None for other methods) — the sweep summary
    renders dispatch order, degraded stages, and critical path from it.
    """

    dataset: str
    method: str
    auc_by_model: dict[str, float] = field(default_factory=dict)
    status: str = "ok"  # "ok" | "dnf" | "failed" | "partial" | "budget" | "error"
    detail: str = ""
    model_status: dict[str, str] = field(default_factory=dict)
    n_generated: int = 0
    n_selected: int = 0
    wall_s: float = 0.0
    modelled_s: float = 0.0
    fm_cost_usd: float = 0.0
    fm_calls: int = 0
    schedule: dict | None = None

    @property
    def average_auc(self) -> float | None:
        if not self.auc_by_model:
            return None
        values = list(self.auc_by_model.values())
        return sum(values) / len(values)

    @property
    def median_auc(self) -> float | None:
        if not self.auc_by_model:
            return None
        values = sorted(self.auc_by_model.values())
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])


@dataclass
class SweepResult:
    """All outcomes of a sweep, indexed by (dataset, method).

    ``wall_s`` is the sweep's real elapsed time; the ``modelled_*``
    accessors extrapolate the cells' modelled full-scale times to sweep
    level, which is how the efficiency benchmark quantifies the win from
    cell-level parallelism without needing full-scale hardware.
    """

    config: SweepConfig
    outcomes: dict[tuple[str, str], MethodOutcome] = field(default_factory=dict)
    wall_s: float = 0.0

    def get(self, dataset: str, method: str) -> MethodOutcome:
        return self.outcomes[(dataset, method)]

    @property
    def modelled_serial_s(self) -> float:
        """Modelled full-scale sweep duration with cells run one by one."""
        return sum(outcome.modelled_s for outcome in self.outcomes.values())

    def modelled_wall_s(self, concurrency: int | None = None) -> float:
        """Modelled full-scale sweep makespan under bounded cell fan-out.

        Cells are assigned to ``concurrency`` workers greedily in
        configuration order — the same schedule
        :func:`~repro.fm.cost.critical_path_seconds` models for FM call
        batches, applied one level up.
        """
        workers = concurrency if concurrency is not None else self.config.sweep_concurrency
        durations = [outcome.modelled_s for outcome in self.outcomes.values()]
        return critical_path_seconds(durations, max(workers, 1))

    @property
    def total_fm_calls(self) -> int:
        return sum(outcome.fm_calls for outcome in self.outcomes.values())

    @property
    def total_fm_cost_usd(self) -> float:
        return sum(outcome.fm_cost_usd for outcome in self.outcomes.values())

    def status_counts(self) -> dict[str, int]:
        """How many cells ended in each status (for summaries/tests)."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes.values():
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts


def _transform_with_method(
    method: str,
    bundle: DatasetBundle,
    model_name: str,
    seed: int,
    deadline: Deadline,
    budget: Budget | None = None,
    stage_plan: str = "serial",
    plan_budget: bool = False,
):
    """Run one AFE method; returns (frame, n_generated, n_selected, fm,
    schedule) — *schedule* is SMARTFEAT's stage-schedule report, None for
    every other method."""
    if method == "initial":
        return bundle.frame, 0, 0, None, None
    if method == "smartfeat":
        fm = SimulatedFM(seed=seed, model="gpt-4")
        function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model=model_name,
            budget=budget,
            stage_plan=stage_plan,
            plan_budget=plan_budget,
        )
        result = tool.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
        )
        n_new = len(result.new_columns)
        fm.ledger.latency_s += function_fm.ledger.latency_s
        fm.ledger.cost_usd += function_fm.ledger.cost_usd
        fm.ledger.n_calls += function_fm.ledger.n_calls
        schedule = result.fm_usage["execution"]["schedule"]
        return result.frame, n_new, n_new, fm, schedule
    if method == "caafe":
        fm = SimulatedFM(seed=seed, model="gpt-4", budget=budget)
        caafe = CAAFELike(fm, validation_model=model_name, seed=seed)
        result = caafe.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
            deadline=deadline,
        )
        return result.frame, result.n_generated, result.n_selected, fm, None
    if method == "featuretools":
        result = FeaturetoolsDFS().fit_transform(bundle.frame, bundle.target, deadline=deadline)
        return result.frame, result.n_generated, result.n_selected, None, None
    if method == "autofeat":
        result = AutoFeatLike().fit_transform(bundle.frame, bundle.target, deadline=deadline)
        return result.frame, result.n_generated, result.n_selected, None, None
    raise ValueError(f"unknown method {method!r}; expected one of {METHOD_NAMES}")


def _model_aware(method: str) -> bool:
    return method in ("smartfeat", "caafe")


def _evaluate_outcome_model(outcome, frame, bundle, model_name, config) -> None:
    """Score one model on one transformed frame, recording failures."""
    try:
        aucs = evaluate_models(
            frame,
            bundle.target,
            models=(model_name,),
            n_splits=config.n_splits,
            seed=config.seed,
        )
        outcome.auc_by_model[model_name] = aucs[model_name]
        outcome.model_status[model_name] = "ok"
    except NonFiniteFeaturesError as exc:
        outcome.model_status[model_name] = "failed"
        outcome.detail = str(exc)


def _summarise_status(outcome: MethodOutcome) -> None:
    statuses = set(outcome.model_status.values())
    if statuses == {"ok"}:
        outcome.status = "ok"
    elif "budget" in statuses:
        # Budget exhaustion trumps partial success: the cell's remaining
        # work was cut off by spend, not by the method's own behaviour.
        outcome.status = "budget"
    elif "ok" not in statuses:
        outcome.status = "failed" if "failed" in statuses else "dnf"
    else:
        outcome.status = "partial"


def _run_model_aware(outcome, bundle, method, config, scale_base, budget) -> None:
    """Per-model transform + evaluation, with per-model DNF accounting.

    The cell-level *budget* is shared across the per-model runs: once a
    run crosses it, that model records ``"budget"`` and every later model
    trips its pre-flight check immediately (no further spend).
    """
    alpha = _TIME_SCALING_ALPHA[method]
    for model_name in config.models:
        started = time.monotonic()
        try:
            frame, n_gen, n_sel, fm, schedule = _transform_with_method(
                method, bundle, model_name, config.seed,
                Deadline(seconds=config.deadline_seconds),
                budget=budget,
                stage_plan=config.stage_plan,
                plan_budget=config.plan_budget,
            )
        except BaselineTimeoutError as exc:
            outcome.model_status[model_name] = "dnf"
            outcome.detail = str(exc)
            continue
        except FMBudgetExceededError as exc:
            outcome.model_status[model_name] = "budget"
            outcome.detail = str(exc)
            outcome.wall_s += time.monotonic() - started
            continue
        wall = time.monotonic() - started
        outcome.wall_s += wall
        fm_latency = 0.0
        if fm is not None:
            fm_latency = fm.ledger.latency_s
            outcome.fm_cost_usd += fm.ledger.cost_usd
            outcome.fm_calls += fm.ledger.n_calls
        calibration = (
            _VALIDATION_MODEL_CALIBRATION.get(model_name, 1.0) if method == "caafe" else 1.0
        )
        modelled = wall * calibration * (scale_base**alpha) + fm_latency
        if modelled >= outcome.modelled_s and schedule is not None:
            outcome.schedule = schedule  # keep the slowest run's schedule
        outcome.modelled_s = max(outcome.modelled_s, modelled)
        outcome.n_generated = max(outcome.n_generated, n_gen)
        outcome.n_selected = max(outcome.n_selected, n_sel)
        if config.time_limit_s and modelled > config.time_limit_s:
            outcome.model_status[model_name] = "dnf"
            outcome.detail = (
                f"{model_name}: modelled full-scale time {modelled:.0f}s exceeds "
                f"{config.time_limit_s:.0f}s"
            )
            continue
        _evaluate_outcome_model(outcome, frame, bundle, model_name, config)


def _run_model_agnostic(outcome, bundle, method, config, scale_base) -> None:
    """One transform shared across models; whole-cell DNF semantics."""
    started = time.monotonic()
    try:
        frame, n_gen, n_sel, _, _ = _transform_with_method(
            method, bundle, config.models[0], config.seed,
            Deadline(seconds=config.deadline_seconds),
        )
    except BaselineTimeoutError as exc:
        outcome.status = "dnf"
        outcome.detail = str(exc)
        return
    outcome.wall_s = time.monotonic() - started
    outcome.n_generated, outcome.n_selected = n_gen, n_sel
    alpha = _TIME_SCALING_ALPHA[method]
    outcome.modelled_s = outcome.wall_s * (scale_base**alpha)
    if config.time_limit_s and outcome.modelled_s > config.time_limit_s:
        outcome.status = "dnf"
        outcome.detail = (
            f"modelled full-scale time {outcome.modelled_s:.0f}s exceeds "
            f"{config.time_limit_s:.0f}s"
        )
        return
    for model_name in config.models:
        _evaluate_outcome_model(outcome, frame, bundle, model_name, config)
    _summarise_status(outcome)


def _run_cell(
    config: SweepConfig, bundle: DatasetBundle, dataset_name: str, method: str
) -> MethodOutcome:
    """Execute one (dataset, method) cell with full fault isolation.

    Never raises: a budget trip degrades the cell to ``status="budget"``
    and any other exception to ``status="error"``, so one broken method
    cannot take down the rest of the sweep.
    """
    outcome = MethodOutcome(dataset=dataset_name, method=method)
    scale_base = bundle.spec.n_rows / max(len(bundle.frame), 1)
    budget = config.cell_budget()
    try:
        if _model_aware(method):
            _run_model_aware(outcome, bundle, method, config, scale_base, budget)
            _summarise_status(outcome)
        else:
            _run_model_agnostic(outcome, bundle, method, config, scale_base)
    except FMBudgetExceededError as exc:  # defensive: escaped per-model handling
        outcome.status = "budget"
        outcome.detail = str(exc)
    except Exception as exc:  # noqa: BLE001 - cell isolation is the contract
        outcome.status = "error"
        outcome.detail = f"{type(exc).__name__}: {exc}"
    if budget is not None and _model_aware(method):
        # The budget meter is the ground truth for the cell's FM spend:
        # a run that tripped mid-flight never returned its clients, so
        # the per-run ledger harvest alone would underreport exactly the
        # spend the budget exists to track.
        outcome.fm_calls = budget.spent_calls
        outcome.fm_cost_usd = budget.spent_cost_usd
    return outcome


def run_sweep(
    config: SweepConfig | None = None,
    progress=None,
    sweep_concurrency: int | None = None,
    sweep_executor: SweepExecutor | None = None,
) -> SweepResult:
    """Run the full Table 4/5 sweep under *config*.

    *progress* is an optional callable receiving human-readable status
    lines (benchmarks print them); it is invoked under a lock so
    concurrent cells cannot interleave partial lines.

    *sweep_concurrency* overrides ``config.sweep_concurrency``;
    *sweep_executor* injects a custom backend (the caller keeps
    ownership and must close it).  Cells are dispatched as independent
    jobs and re-assembled in configuration order, so the result mapping
    is identical under any backend.
    """
    config = config or SweepConfig()
    if sweep_concurrency is not None:
        config = replace(config, sweep_concurrency=sweep_concurrency)
    if sweep_executor is not None:
        if sweep_concurrency is not None:
            raise ValueError(
                "pass either sweep_concurrency or sweep_executor, not both: "
                "the executor's own fan-out is what actually runs"
            )
        # Reflect what will actually run, so SweepResult.modelled_wall_s
        # and the summary report the injected backend's fan-out.
        config = replace(
            config, sweep_concurrency=getattr(sweep_executor, "concurrency", 1)
        )
    unknown = [m for m in config.methods if m not in METHOD_NAMES]
    if unknown:
        raise ValueError(f"unknown method {unknown[0]!r}; expected one of {METHOD_NAMES}")
    if config.sweep_concurrency < 1:
        raise ValueError(f"sweep_concurrency must be >= 1, got {config.sweep_concurrency}")

    say = progress or (lambda message: None)
    say_lock = threading.Lock()

    def locked_say(message: str) -> None:
        with say_lock:
            say(message)

    # Bundles are loaded serially up front: dataset generation is the only
    # shared mutable step, and loading is deterministic, so this keeps the
    # parallel sweep byte-identical to the serial one.
    bundles = {
        name: load_dataset(name, seed=config.seed, n_rows=config.n_rows)
        for name in config.datasets
    }
    cells = [(dataset, method) for dataset in config.datasets for method in config.methods]

    def job(cell: tuple[str, str]) -> MethodOutcome:
        dataset_name, method = cell
        locked_say(f"{dataset_name}: running {method}")
        return _run_cell(config, bundles[dataset_name], dataset_name, method)

    executor = sweep_executor
    owns_executor = executor is None
    if executor is None:
        executor = (
            SerialSweepExecutor()
            if config.sweep_concurrency == 1
            else ThreadPoolSweepExecutor(config.sweep_concurrency)
        )
    started = time.monotonic()
    try:
        outcomes = executor.map(job, cells)
    finally:
        if owns_executor:
            executor.close()
    result = SweepResult(config=config, wall_s=time.monotonic() - started)
    for cell, outcome in zip(cells, outcomes):
        result.outcomes[cell] = outcome
    return result
