"""Serving-path evaluation: plan fidelity and the replay benchmark workload.

Two jobs:

* **Fidelity** — :func:`replay_identity_report` fits SMARTFEAT on every
  eval dataset with ``compile_plan=True``, JSON-round-trips the exported
  :class:`~repro.serve.FeaturePlan`, replays it against the original
  frame, and checks the result is *bit-identical* (dtypes and missingness
  included) to ``fit_transform``'s frame.  This is the CI identity gate.
* **Workload** — :func:`build_demo_result` constructs a synthetic fitted
  run that exercises every codegen operator form at an arbitrary row
  count, so the serving benchmark can compare plan replay against
  :func:`sandbox_replay` (the legacy re-exec baseline) at 10⁵–10⁶ rows
  without paying a million-row fit.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import SmartFeat, SmartFeatResult
from repro.core.sandbox import run_transform
from repro.core.types import GeneratedFeature, OperatorFamily
from repro.dataframe import DataFrame
from repro.dataframe.series import Series
from repro.datasets import DATASET_NAMES, load_dataset
from repro.datasets.synth import make_synthetic_bundle
from repro.fm import SimulatedFM
from repro.fm.codegen import generate_transform_source
from repro.fm.knowledge import default_knowledge

__all__ = [
    "ALL_DATASETS",
    "build_demo_result",
    "fit_and_export",
    "make_serving_frame",
    "replay_identity_report",
    "sandbox_replay",
    "sharded_identity_report",
]

#: The eval datasets the identity gate covers: the eight paper datasets
#: plus the synthetic table (mixed types, missing values, text, dates).
ALL_DATASETS: tuple[str, ...] = (*DATASET_NAMES, "synthetic")


def _load_bundle(dataset: str, n_rows: int, seed: int) -> dict:
    if dataset == "synthetic":
        bundle = make_synthetic_bundle(n_rows, seed=seed)
        bundle.setdefault("target_description", "")
        return bundle
    loaded = load_dataset(dataset, seed=seed, n_rows=n_rows)
    return {
        "frame": loaded.frame,
        "target": loaded.target,
        "descriptions": loaded.descriptions,
        "title": loaded.title,
        "target_description": loaded.target_description,
    }


def fit_and_export(dataset: str, n_rows: int = 300, seed: int = 0):
    """Fit SMARTFEAT on *dataset* with plan compilation on.

    Returns ``(bundle, result)`` where ``result.plan`` is the compiled
    :class:`~repro.serve.FeaturePlan` and ``bundle["frame"]`` is the
    original input frame replay should be checked against.
    """
    bundle = _load_bundle(dataset, n_rows, seed)
    smartfeat = SmartFeat(
        SimulatedFM(seed=seed, model="gpt-4"),
        function_fm=SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo"),
        compile_plan=True,
    )
    result = smartfeat.fit_transform(
        bundle["frame"],
        bundle["target"],
        descriptions=bundle["descriptions"],
        title=bundle["title"],
        target_description=bundle.get("target_description", ""),
    )
    return bundle, result


def sandbox_replay(result: SmartFeatResult, frame: DataFrame) -> DataFrame:
    """The legacy serving baseline: re-exec every accepted source.

    Replays ``result``'s features by running each recorded sandbox source
    over a working view of *frame* in install order, then applies the
    drop list — exactly what serving had to do before FeaturePlans.  Used
    as the throughput baseline the plan path is gated against.
    """
    working = frame.column_view(frame.columns)
    for feature in result.new_features.values():
        out = run_transform(feature.source_code, working)
        if isinstance(out, Series):
            working[feature.output_columns[0]] = out.rename(
                feature.output_columns[0]
            )
        else:
            for name in feature.output_columns:
                working[name] = out[name]
    to_drop = [c for c in result.dropped if c in working]
    if to_drop:
        working.drop(columns=to_drop, inplace=True)
    return working


def replay_identity_report(
    datasets: tuple[str, ...] = ALL_DATASETS, n_rows: int = 300, seed: int = 0
) -> list[dict]:
    """Fit → export → JSON round-trip → replay, per dataset.

    Each row reports the plan's compile counts and whether replay is
    bit-identical to the fitted frame (``identical`` plus a first-
    difference ``detail`` when it is not).
    """
    from repro.serve import FeaturePlan, frames_identical

    rows = []
    for dataset in datasets:
        bundle, result = fit_and_export(dataset, n_rows=n_rows, seed=seed)
        plan = FeaturePlan.from_json(result.plan.to_json())
        replayed = plan.apply(bundle["frame"])
        identical, detail = frames_identical(replayed, result.frame)
        rows.append(
            {
                "dataset": dataset,
                "n_rows": len(bundle["frame"]),
                "n_features": len(plan.features),
                **plan.counts(),
                "identical": identical,
                "detail": detail,
            }
        )
    return rows


def sharded_identity_report(
    datasets: tuple[str, ...] = ALL_DATASETS,
    n_rows: int = 300,
    chunk_rows: int = 64,
    seed: int = 0,
) -> list[dict]:
    """Out-of-core identity gate: sharded replay == in-memory replay.

    Per dataset: fit → export → JSON round-trip, then replay the plan
    both ways — ``plan.apply`` over the whole frame, and
    ``plan.apply_stream`` over a *chunk_rows*-row shard stream of the
    same frame, concatenated back.  Every frozen op is row-local given
    its fitted statistics, so the two must be **bit-identical**; each
    report row says whether they are (with a first-difference ``detail``
    when not).
    """
    from repro.dataframe.io import concat_shards, iter_frame_shards
    from repro.serve import FeaturePlan, frames_identical

    rows = []
    for dataset in datasets:
        bundle, result = fit_and_export(dataset, n_rows=n_rows, seed=seed)
        plan = FeaturePlan.from_json(result.plan.to_json())
        frame = bundle["frame"]
        base = plan.apply(frame)
        streamed = concat_shards(
            list(plan.apply_stream(iter_frame_shards(frame, chunk_rows)))
        )
        identical, detail = frames_identical(streamed, base)
        rows.append(
            {
                "dataset": dataset,
                "n_rows": len(frame),
                "chunk_rows": chunk_rows,
                "n_shards": -(-len(frame) // chunk_rows),
                "n_features": len(plan.features),
                **plan.counts(),
                "identical": identical,
                "detail": detail,
            }
        )
    return rows


# ----------------------------------------------------------------------
# The demo workload: every codegen form at arbitrary scale
# ----------------------------------------------------------------------
_CITIES = (
    "SF",
    "NYC",
    "LA",
    "Seattle",
    "Chicago",
    "Houston",
    "Phoenix",
    "Philadelphia",
    "San Francisco",
    "New York",
    "Los Angeles",
    "Boston",
)
_MAKES = ("Toyota", "Honda", "Ford", "BMW", "Subaru", "Tesla")
_MODELS = ("A", "B", "C", "X")
_NOTES = (
    "ok",
    "needs review",
    "priority customer, follow up",
    "",
    "escalated to tier two support after repeated contact",
)


def make_serving_frame(
    n_rows: int, seed: int = 0, n_groups: int | None = None
) -> DataFrame:
    """A mixed-type demo table sized for throughput benchmarking.

    Integer, float-with-missing, categorical, grouped-key, ISO-date,
    free-text, and separable-pair columns — one input column per codegen
    operator family, so :func:`build_demo_result` can exercise the full
    IR surface.  *n_groups* overrides the Segment cardinality (default
    scales with *n_rows*) — the sharded benchmark pins it so a small fit
    frame's group tables cover a much larger serve frame's groups.
    """
    rng = np.random.default_rng(seed)
    if n_groups is None:
        n_groups = max(n_rows // 200, 8)
    income = np.round(rng.lognormal(10.5, 0.6, n_rows), 2)
    income[rng.random(n_rows) < 0.03] = np.nan
    balance = np.round(rng.normal(5_000.0, 3_000.0, n_rows), 2)
    balance[rng.random(n_rows) < 0.05] = np.nan
    days = rng.integers(0, 3650, n_rows)
    dates = (
        np.datetime64("2015-01-01") + days.astype("timedelta64[D]")
    ).astype("datetime64[D]")
    return DataFrame(
        {
            "Age": Series(rng.integers(18, 81, n_rows).tolist()),
            "Income": Series(income),
            "Balance": Series(balance),
            "City": Series(rng.choice(_CITIES, n_rows).tolist()),
            "Segment": Series(
                [f"seg_{i:05d}" for i in rng.integers(0, n_groups, n_rows)]
            ),
            "SignupDate": Series(np.datetime_as_string(dates).tolist()),
            "Notes": Series(rng.choice(_NOTES, n_rows).tolist()),
            "Pair": Series(
                [
                    f"{m},{s}"
                    for m, s in zip(
                        rng.choice(_MAKES, n_rows), rng.choice(_MODELS, n_rows)
                    )
                ]
            ),
            "Target": Series(rng.integers(0, 2, n_rows).tolist()),
        }
    )


#: (name, input columns, tagged description, family) — one per codegen form.
_DEMO_SPECS: tuple[tuple[str, tuple[str, ...], str, OperatorFamily], ...] = (
    ("Age_band", ("Age",), "bucketization[age_insurance]: Age in insurance bands", OperatorFamily.UNARY),
    ("Income_z", ("Income",), "normalization[zscore]: standardized Income", OperatorFamily.UNARY),
    ("Balance_scaled", ("Balance",), "normalization[minmax]: min-max scaled Balance", OperatorFamily.UNARY),
    ("Income_log", ("Income",), "log_transform: log of Income", OperatorFamily.UNARY),
    ("Age_sq", ("Age",), "squared: Age squared", OperatorFamily.UNARY),
    ("City_onehot", ("City",), "get_dummies: one-hot City", OperatorFamily.UNARY),
    ("Signup_parts", ("SignupDate",), "date_split: signup month and day of week", OperatorFamily.EXTRACTOR),
    ("Notes_len", ("Notes",), "text_length: length of Notes", OperatorFamily.EXTRACTOR),
    ("Balance_missing", ("Balance",), "is_missing: Balance missing flag", OperatorFamily.UNARY),
    ("Income_per_Age", ("Income", "Age"), "binary[/]: Income divided by Age", OperatorFamily.BINARY),
    ("Income_plus_Balance", ("Income", "Balance"), "binary[+]: Income plus Balance", OperatorFamily.BINARY),
    ("Seg_mean_income", ("Segment", "Income"), "groupby[mean]: mean Income per Segment", OperatorFamily.HIGH_ORDER),
    ("SegCity_max_balance", ("Segment", "City", "Balance"), "groupby[max]: max Balance per Segment and City", OperatorFamily.HIGH_ORDER),
    ("City_density", ("City",), "knowledge_map[city_population_density]: City population density", OperatorFamily.EXTRACTOR),
    ("Pair_parts", ("Pair",), "split_parts[,]: make and model from Pair", OperatorFamily.EXTRACTOR),
    ("Risk_index", ("Age", "Income", "Balance"), "composite_index: composite risk index", OperatorFamily.HIGH_ORDER),
)

#: Single-use originals the drop heuristic would remove in this workload.
_DEMO_DROPPED = ("Notes", "Pair", "SignupDate")


def build_demo_result(n_rows: int, seed: int = 0, n_groups: int | None = None):
    """A synthetic fitted run covering every codegen form.

    Realizes each :data:`_DEMO_SPECS` source through the sandbox in
    install order (exactly what ``fit_transform`` would do) and wraps the
    outcome in a :class:`SmartFeatResult`.  Returns ``(result, frame)``
    with *frame* the untouched input table.  *n_groups* passes through to
    :func:`make_serving_frame`.
    """
    frame = make_serving_frame(n_rows, seed=seed, n_groups=n_groups)
    knowledge = default_knowledge()
    column_values = {"City": sorted(set(frame["City"].tolist()))}
    working = frame.column_view(frame.columns)
    new_features: dict[str, GeneratedFeature] = {}
    for name, columns, description, family in _DEMO_SPECS:
        source = generate_transform_source(
            name, list(columns), description, knowledge, column_values
        )
        out = run_transform(source, working)
        if isinstance(out, Series):
            values = {name: out.rename(name)}
        else:
            values = {c: out[c] for c in out.columns}
        for column, series in values.items():
            working[column] = series
        new_features[name] = GeneratedFeature(
            name=name,
            family=family,
            input_columns=list(columns),
            description=description,
            output_columns=list(values),
            source_code=source,
        )
    dropped = [c for c in _DEMO_DROPPED if c in working]
    working.drop(columns=dropped, inplace=True)
    result = SmartFeatResult(
        frame=working, new_features=new_features, dropped=dropped
    )
    return result, frame
