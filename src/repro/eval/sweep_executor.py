"""Pluggable execution backends for the evaluation sweep.

The sweep's (dataset, method) cells are independent, order-insensitive
jobs — exactly the shape :mod:`repro.fm.executor` handles for FM calls —
so the same contract applies one level up: a :class:`SweepExecutor` maps
a job function over the cells and returns results in submission order,
with two backends:

:class:`SerialSweepExecutor`
    One cell at a time (the seed behaviour).
:class:`ThreadPoolSweepExecutor`
    Bounded thread-pool fan-out.  Cells carry their own seeded FM
    clients and their own working frames, so thread scheduling cannot
    change any cell's outcome — only the sweep's wall clock.

Fault isolation lives in the job function (the runner catches per-cell
exceptions and degrades the cell to ``status="error"``), so ``map`` here
stays a plain order-preserving fan-out: an exception escaping a job is a
runner bug and propagates.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

__all__ = ["SerialSweepExecutor", "SweepExecutor", "ThreadPoolSweepExecutor"]

T = TypeVar("T")
R = TypeVar("R")


class SweepExecutor(abc.ABC):
    """Runs independent sweep jobs under one concurrency contract."""

    #: Number of cells that may run at once.
    concurrency: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply *fn* to every item, returning results in item order."""

    def close(self) -> None:
        """Release any backing resources (idempotent; default no-op)."""

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialSweepExecutor(SweepExecutor):
    """One cell at a time — the seed's nested-loop sweep."""

    concurrency = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadPoolSweepExecutor(SweepExecutor):
    """Bounded thread-pool fan-out over sweep cells.

    The pool is created lazily and reused across :meth:`map` calls; it is
    torn down by :meth:`close` (or interpreter exit).  Results are
    gathered in submission order regardless of completion order, so a
    parallel sweep assembles the same result mapping as a serial one.
    """

    def __init__(self, concurrency: int = 4) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.concurrency = concurrency
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.concurrency, thread_name_prefix="sweep"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]
