"""Foundation-model substrate.

The paper drives SMARTFEAT with OpenAI GPT-4 (operator selector) and
GPT-3.5-turbo (function generator) through LangChain.  This environment has
no network, so the substrate supplies:

:class:`FMClient`
    The protocol a real API client would implement (``complete(prompt) →
    FMResponse``) with a per-client :class:`CallLedger` tracking calls,
    tokens, simulated latency, and dollar cost.
:class:`SimulatedFM`
    A deterministic, seeded foundation-model simulator.  It reads only the
    prompt text (never the raw data), infers column semantics with a
    lexicon, consults an open-world knowledge store, and answers the
    operator-selector / function-generator / CAAFE prompt shapes with
    plausible natural-text responses, including executable Python.
:class:`ScriptedFM` / :class:`RecordingFM` / :class:`ReplayFM`
    Test doubles: canned responses, call recording, and replay.
:class:`SerialExecutor` / :class:`ThreadPoolFMExecutor` / :class:`AsyncFMExecutor`
    The execution layer: batches of independent calls run under one
    concurrency contract (bounded fan-out, per-call retry, summed vs
    critical-path latency accounting) with deterministic results.  The
    async backend owns its own event loop and is the seam every real
    HTTP deployment plugs into.
:class:`TransportFMClient` / :class:`SimulatedHTTPTransport`
    The production client shape: an :class:`FMClient` over a pluggable
    request/response transport with real latency and HTTP-style failure
    modes (429 + ``Retry-After``, 5xx, timeouts, resets), driving the
    :class:`RetryPolicy` backoff schedule end-to-end.  Stateless by
    construction, so the stage scheduler can physically overlap
    independent stages through it.
:class:`FMCache`
    Exact-hit LRU over ``(model, prompt, temperature)`` for the
    deterministic temperature-0 calls, optionally persisted to JSON.

Why the substitution preserves behaviour: SMARTFEAT's contribution is the
*architecture of FM interaction* — what is asked, how often, and how
answers become executable functions.  Every code path (proposal vs
sampling, parsing, codegen, row-level fallback, source suggestion, error
handling) is exercised identically whether the text comes from GPT-4 or
from the simulator.
"""

from repro.fm.adaptive import AIMDController, AsyncConcurrencyGate, ConcurrencyGate
from repro.fm.base import Budget, CallLedger, FMClient, FMResponse
from repro.fm.cache import FMCache
from repro.fm.cost import CostModel, critical_path_seconds, estimate_tokens
from repro.fm.errors import (
    FMBudgetExceededError,
    FMConnectionError,
    FMError,
    FMParseError,
    FMRateLimitError,
    FMServerError,
    FMTimeoutError,
    FMTransportError,
)
from repro.fm.executor import (
    DEFAULT_RETRY_AFTER_CAP_S,
    AsyncFMExecutor,
    ExecutionStats,
    FMExecutor,
    FMRequest,
    FMResult,
    RetryPolicy,
    SerialExecutor,
    ThreadPoolFMExecutor,
)
from repro.fm.hedging import HedgePolicy, LatencyTracker
from repro.fm.knowledge import KnowledgeStore, default_knowledge
from repro.fm.providers import (
    AnthropicMessagesTransport,
    HTTPProviderTransport,
    OpenAIChatTransport,
    live_provider_configured,
    provider_from_env,
)
from repro.fm.lexicon import ColumnRole, infer_role
from repro.fm.scripted import RecordingFM, ReplayFM, ScriptedFM
from repro.fm.simulated import SimulatedFM
from repro.fm.transport import (
    ScriptedTransport,
    SimulatedHTTPTransport,
    Transport,
    TransportConnectionReset,
    TransportFMClient,
    TransportRequest,
    TransportResponse,
    TransportTimeout,
)

__all__ = [
    "AIMDController",
    "AnthropicMessagesTransport",
    "AsyncConcurrencyGate",
    "AsyncFMExecutor",
    "Budget",
    "CallLedger",
    "ColumnRole",
    "ConcurrencyGate",
    "CostModel",
    "DEFAULT_RETRY_AFTER_CAP_S",
    "ExecutionStats",
    "FMBudgetExceededError",
    "FMCache",
    "FMClient",
    "FMConnectionError",
    "FMError",
    "FMExecutor",
    "FMParseError",
    "FMRateLimitError",
    "FMRequest",
    "FMResponse",
    "FMResult",
    "FMServerError",
    "FMTimeoutError",
    "FMTransportError",
    "HTTPProviderTransport",
    "HedgePolicy",
    "KnowledgeStore",
    "LatencyTracker",
    "OpenAIChatTransport",
    "RecordingFM",
    "ReplayFM",
    "RetryPolicy",
    "ScriptedFM",
    "ScriptedTransport",
    "SerialExecutor",
    "SimulatedFM",
    "SimulatedHTTPTransport",
    "ThreadPoolFMExecutor",
    "Transport",
    "TransportConnectionReset",
    "TransportFMClient",
    "TransportRequest",
    "TransportResponse",
    "TransportTimeout",
    "critical_path_seconds",
    "default_knowledge",
    "estimate_tokens",
    "infer_role",
    "live_provider_configured",
    "provider_from_env",
]
