"""Adaptive concurrency: AIMD control over the executors' in-flight bound.

A fixed semaphore is the wrong tool against a real, rate-limited API: set
it low and fast hours waste capacity, set it high and every sampling wave
slams into 429 storms whose retries spend budget without producing
features.  TCP solved the same problem decades ago with
additive-increase / multiplicative-decrease: probe capacity gently,
collapse quickly on congestion signals.

:class:`AIMDController`
    The policy: a float concurrency limit in ``[floor, ceiling]``.
    Every successful call adds ``increase / limit`` (≈ +1 per full
    window of successes, the classic per-RTT additive probe); every
    backpressure signal — HTTP 429 or 5xx surfaced as
    :class:`~repro.fm.errors.FMRateLimitError` /
    :class:`~repro.fm.errors.FMServerError` — multiplies the limit by
    ``decrease``.  Deterministic: the limit is a pure function of the
    observed event sequence, never of wall-clock time.
:class:`ConcurrencyGate`
    A condition-variable admission gate for the thread-backed executors:
    ``acquire`` blocks while the in-flight count is at or above the
    controller's current (integer) limit, so a collapsed limit throttles
    new dispatches immediately while already-running calls drain.
:class:`AsyncConcurrencyGate`
    The same gate for the async executor's event loop, replacing its
    fixed :class:`asyncio.Semaphore`.  ``async with gate:`` is a drop-in
    for ``async with semaphore:``.

One controller may be shared by several executors (sync eval next to an
async pipeline): every method takes the controller's lock, and the gates
re-read the limit on every wakeup, so a decrease propagates to all
parties at their next admission decision.
"""

from __future__ import annotations

import asyncio
import collections
import threading

from repro.fm.errors import FMRateLimitError, FMServerError

__all__ = ["AIMDController", "AsyncConcurrencyGate", "ConcurrencyGate", "is_backpressure"]


def is_backpressure(error: Exception) -> bool:
    """Whether *error* signals the server shedding load (429 / 5xx).

    Timeouts and connection resets are *not* backpressure: they are as
    often a network path problem as an overloaded server, and halving
    concurrency on every flaky packet would starve healthy endpoints.
    """
    return isinstance(error, (FMRateLimitError, FMServerError))


class AIMDController:
    """Additive-increase / multiplicative-decrease concurrency limit.

    Parameters
    ----------
    ceiling:
        Upper bound — the executor's configured concurrency.  The
        controller only ever *reduces* below what the caller asked for.
    floor:
        Lower bound (≥ 1): even a storm keeps one probe in flight,
        otherwise recovery could never be observed.
    start:
        Initial limit; defaults to the ceiling (optimistic start, like
        the executors behaved before adaptivity existed).
    increase:
        Additive probe size per *window* of successes: each success adds
        ``increase / current_limit``, so a full window's worth of
        successes raises the limit by ``increase``.
    decrease:
        Multiplicative factor applied per backpressure event (0.5 is
        TCP's classic halving).
    """

    def __init__(
        self,
        ceiling: int,
        floor: int = 1,
        start: float | None = None,
        increase: float = 1.0,
        decrease: float = 0.5,
    ) -> None:
        if floor < 1:
            raise ValueError(f"floor must be >= 1, got {floor}")
        if ceiling < floor:
            raise ValueError(f"ceiling {ceiling} must be >= floor {floor}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        if increase <= 0.0:
            raise ValueError(f"increase must be > 0, got {increase}")
        self.ceiling = ceiling
        self.floor = floor
        self.increase = increase
        self.decrease = decrease
        self._limit = float(ceiling if start is None else start)
        self._limit = min(float(ceiling), max(float(floor), self._limit))
        self._lock = threading.Lock()
        self.n_successes = 0
        self.n_backpressure = 0
        #: Gates subscribe so a limit raise wakes their waiters.
        self._listeners: list = []

    # ------------------------------------------------------------------
    @property
    def limit(self) -> int:
        """The current admission limit (integer, ≥ floor)."""
        with self._lock:
            return max(self.floor, int(self._limit))

    def on_success(self) -> None:
        """Additive probe: one completed call went through cleanly."""
        with self._lock:
            self.n_successes += 1
            before = max(self.floor, int(self._limit))
            self._limit = min(
                float(self.ceiling), self._limit + self.increase / max(1.0, self._limit)
            )
            raised = max(self.floor, int(self._limit)) > before
        if raised:
            self._notify()

    def on_backpressure(self) -> None:
        """Multiplicative decrease: the server shed load (429 / 5xx)."""
        with self._lock:
            self.n_backpressure += 1
            self._limit = max(float(self.floor), self._limit * self.decrease)

    def observe(self, error: Exception | None) -> None:
        """Feed one call outcome: ``None`` for success, else the error."""
        if error is None:
            self.on_success()
        elif is_backpressure(error):
            self.on_backpressure()

    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Register a gate's ``_on_limit_raised`` callback."""
        with self._lock:
            self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in list(self._listeners):
            listener()

    def snapshot(self) -> dict[str, float | int]:
        with self._lock:
            return {
                "limit": max(self.floor, int(self._limit)),
                "limit_raw": round(self._limit, 3),
                "floor": self.floor,
                "ceiling": self.ceiling,
                "n_successes": self.n_successes,
                "n_backpressure": self.n_backpressure,
            }


class ConcurrencyGate:
    """Thread admission gate driven by an :class:`AIMDController`.

    Unlike a semaphore, the bound is re-read from the controller on every
    admission decision, so a mid-batch decrease throttles the *next*
    dispatch without needing to revoke permits already handed out.
    """

    def __init__(self, controller: AIMDController) -> None:
        self.controller = controller
        self._cond = threading.Condition()
        self._active = 0
        controller.subscribe(self._on_limit_raised)

    def _on_limit_raised(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def acquire(self) -> None:
        with self._cond:
            while self._active >= self.controller.limit:
                self._cond.wait()
            self._active += 1

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def __enter__(self) -> "ConcurrencyGate":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    @property
    def active(self) -> int:
        with self._cond:
            return self._active


class AsyncConcurrencyGate:
    """Event-loop admission gate driven by an :class:`AIMDController`.

    A drop-in for the async executor's semaphore (``async with gate:``).
    Waiters are plain loop futures woken in FIFO order whenever a slot
    frees or the limit rises; the limit-raise notification arrives from
    arbitrary threads, so it is marshalled onto the owning loop with
    ``call_soon_threadsafe``.  Single-loop by construction — the async
    executor creates one gate per owned loop.
    """

    def __init__(self, controller: AIMDController) -> None:
        self.controller = controller
        self._active = 0
        self._waiters: collections.deque[asyncio.Future] = collections.deque()
        self._loop: asyncio.AbstractEventLoop | None = None
        controller.subscribe(self._on_limit_raised)

    def _wake_admissible(self) -> None:
        while self._waiters and self._active < self.controller.limit:
            waiter = self._waiters.popleft()
            if not waiter.done():
                self._active += 1
                waiter.set_result(None)

    def _on_limit_raised(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._wake_admissible)

    async def acquire(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        if self._active < self.controller.limit and not self._waiters:
            self._active += 1
            return
        waiter: asyncio.Future = loop.create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # Admitted and cancelled in the same tick: give the slot back.
                self._active -= 1
                self._wake_admissible()
            else:
                self._waiters.remove(waiter)
            raise

    def release(self) -> None:
        self._active -= 1
        self._wake_admissible()

    async def __aenter__(self) -> "AsyncConcurrencyGate":
        await self.acquire()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.release()
