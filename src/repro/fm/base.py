"""The FM client protocol and per-client call accounting.

The protocol is concurrency-aware: a call is split into *state
reservation* (:meth:`FMClient._reserve_state`, cheap and thread-safe,
always performed in submission order) and *text generation*
(:meth:`FMClient._complete_with_state`, which may run on any thread).
Deterministic backends key their entropy or cursor on the reserved state,
so a batch of calls answers identically whether it runs serially or on a
thread pool — the contract the executor layer builds on.

Cost control rides on the same accounting: a :class:`Budget` caps dollar
cost, call count, and summed latency.  One budget may be shared by
several clients (operator selector + function generator), in which case
it caps their *combined* spend; every charge funnels through the
budget's own lock, so concurrent execution cannot overshoot by more than
the batch already in flight.
"""

from __future__ import annotations

import abc
import asyncio
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fm.cost import CostModel, estimate_tokens
from repro.fm.errors import FMBudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fm.cache import FMCache
    from repro.fm.executor import FMExecutor, FMRequest, FMResult

__all__ = ["Budget", "CallLedger", "FMClient", "FMResponse"]


@dataclass(frozen=True)
class FMResponse:
    """One foundation-model completion with its accounting metadata."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    latency_s: float
    cost_usd: float
    model: str = "simulated"


@dataclass
class Budget:
    """Hard ceilings on FM spend, enforced as calls are recorded.

    ``None`` disables an axis.  The crossing call is *charged* (its cost
    was already incurred) and then raises
    :class:`~repro.fm.errors.FMBudgetExceededError`; :meth:`check` is the
    pre-flight guard executors run before dispatching a batch, so an
    exhausted budget stops new work at batch granularity — identical
    under the serial and thread-pool backends, which is what keeps a
    budgeted run deterministic across executors.

    The spend counters are mutable and lock-protected: one ``Budget``
    instance is a shared meter, not a per-client configuration.  Attach
    the same instance to several ledgers to cap their combined spend.
    """

    max_cost_usd: float | None = None
    max_calls: int | None = None
    max_latency_s: float | None = None
    spent_cost_usd: float = field(default=0.0, init=False)
    spent_calls: int = field(default=0, init=False)
    spent_latency_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        for name in ("max_cost_usd", "max_calls", "max_latency_s"):
            limit = getattr(self, name)
            if limit is not None and limit < 0:
                raise ValueError(f"{name} must be >= 0, got {limit}")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def charge(self, cost_usd: float = 0.0, latency_s: float = 0.0, calls: int = 1) -> None:
        """Record spend; raise if this charge crossed a limit.

        The charge is always applied — the call already happened — so the
        counters stay an exact account of what was spent even when the
        budget trips.
        """
        with self._lock:
            self.spent_cost_usd += cost_usd
            self.spent_latency_s += latency_s
            self.spent_calls += calls
            violation = self._violation_locked(strict=True)
        if violation is not None:
            raise FMBudgetExceededError(*violation)

    def check(self) -> None:
        """Pre-flight guard: raise if there is no headroom left."""
        with self._lock:
            violation = self._violation_locked(strict=False)
        if violation is not None:
            raise FMBudgetExceededError(*violation)

    async def acheck(self) -> None:
        """:meth:`check` for coroutine dispatch paths.

        The async executor re-checks on the event-loop side right before
        creating a batch's request tasks, so a budget that a concurrent
        (physically overlapped) stage exhausted between submission and
        dispatch stops the batch before any call is issued.  The lock
        hold is nanoseconds, so taking it on the loop thread is safe.
        """
        self.check()

    def exhausted(self) -> bool:
        """True when no headroom remains on some axis."""
        with self._lock:
            return self._violation_locked(strict=False) is not None

    def _violation_locked(self, strict: bool) -> tuple[str, str, float, float] | None:
        """The first exhausted axis as error args, or None.

        ``strict`` distinguishes post-charge (over the limit) from
        pre-flight (at the limit: the next call could only overshoot).
        """
        axes = (
            ("calls", self.max_calls, self.spent_calls),
            ("cost_usd", self.max_cost_usd, self.spent_cost_usd),
            ("latency_s", self.max_latency_s, self.spent_latency_s),
        )
        for axis, limit, spent in axes:
            if limit is None:
                continue
            if spent > limit or (not strict and spent >= limit):
                message = f"FM budget exceeded on {axis}: spent {spent:g} of {limit:g}"
                return (message, axis, float(limit), float(spent))
        return None

    def headroom(self) -> dict[str, float | None]:
        """Remaining spend per axis: ``None`` for unlimited axes, else
        ``max(0, limit - spent)``.

        This is the budget-aware planner's input: the stage scheduler
        reads the headroom before dispatching each stage node and
        right-sizes the node's sampling budget (or skips optional nodes)
        to fit, instead of letting the node trip the meter mid-flight.
        """
        with self._lock:
            return {
                "calls": (
                    None
                    if self.max_calls is None
                    else max(0, self.max_calls - self.spent_calls)
                ),
                "cost_usd": (
                    None
                    if self.max_cost_usd is None
                    else max(0.0, self.max_cost_usd - self.spent_cost_usd)
                ),
                "latency_s": (
                    None
                    if self.max_latency_s is None
                    else max(0.0, self.max_latency_s - self.spent_latency_s)
                ),
            }

    def snapshot(self) -> dict[str, float | None]:
        """Limits and spend as a plain dict (for reports and tests)."""
        with self._lock:
            return {
                "max_cost_usd": self.max_cost_usd,
                "max_calls": self.max_calls,
                "max_latency_s": self.max_latency_s,
                "spent_cost_usd": round(self.spent_cost_usd, 6),
                "spent_calls": self.spent_calls,
                "spent_latency_s": round(self.spent_latency_s, 3),
            }

    def restore_spent(
        self, cost_usd: float, calls: int, latency_s: float
    ) -> None:
        """Overwrite the spend counters from a checkpoint snapshot.

        Resuming a killed run must put the shared meter back exactly
        where the checkpointed stages left it — otherwise the remaining
        stages would be planned against headroom the original run had
        already spent.  Never raises: restoring is bookkeeping, not a
        new charge.
        """
        with self._lock:
            self.spent_cost_usd = float(cost_usd)
            self.spent_calls = int(calls)
            self.spent_latency_s = float(latency_s)


@dataclass
class CallLedger:
    """Accumulates per-call accounting across a client's lifetime.

    The evaluation harness reads these totals to reproduce the paper's
    efficiency comparisons without real API access.  Recording is
    thread-safe so batched execution cannot corrupt the totals; cache
    hits are tallied separately and never contribute calls, tokens, or
    cost.

    An attached :class:`Budget` is charged on every recorded call:
    :meth:`record` first updates the totals (the spend is real either
    way), then lets the budget raise
    :class:`~repro.fm.errors.FMBudgetExceededError` if the call crossed a
    limit.
    """

    n_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_s: float = 0.0
    cost_usd: float = 0.0
    cache_hits: int = 0
    #: Dead time spent sleeping between retry attempts (backoff and
    #: server ``Retry-After`` waits).  Charged to the budget's latency
    #: axis when recorded — a 429 storm burns wall-clock even while no
    #: call is in flight, and ``max_latency_s`` must see that.
    wait_s: float = 0.0
    #: Hedged-request accounting: duplicates issued, duplicates
    #: abandoned/cancelled after losing the race, and the dollar spend
    #: of losers that completed anyway (real spend server-side, but
    #: *never* folded into ``cost_usd``/``n_calls`` — exactly one result
    #: per logical request reaches the main totals).
    hedges_issued: int = 0
    hedges_abandoned: int = 0
    hedge_wasted_cost_usd: float = 0.0
    history: list[tuple[str, str]] = field(default_factory=list)
    keep_history: bool = False
    budget: "Budget | None" = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, prompt: str, response: FMResponse) -> None:
        with self._lock:
            self.n_calls += 1
            self.prompt_tokens += response.prompt_tokens
            self.completion_tokens += response.completion_tokens
            self.latency_s += response.latency_s
            self.cost_usd += response.cost_usd
            if self.keep_history:
                self.history.append((prompt, response.text))
        if self.budget is not None:
            self.budget.charge(cost_usd=response.cost_usd, latency_s=response.latency_s)

    def check_budget(self) -> None:
        """Raise if the attached budget (if any) has no headroom left."""
        if self.budget is not None:
            self.budget.check()

    async def acheck_budget(self) -> None:
        """Coroutine form of :meth:`check_budget` (see :meth:`Budget.acheck`)."""
        if self.budget is not None:
            await self.budget.acheck()

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_wait(self, seconds: float) -> None:
        """Account retry/backoff sleep time before it is slept.

        The wait is recorded (and the budget's latency axis charged)
        *before* the executor sleeps, so an exhausted ``max_latency_s``
        surfaces immediately instead of after one more dead wait.  The
        raise, if any, happens after the totals are updated — the time
        will be spent either way once the caller decided to wait.
        """
        if seconds <= 0:
            return
        with self._lock:
            self.wait_s += seconds
        if self.budget is not None:
            self.budget.charge(latency_s=seconds, calls=0)

    def record_hedge_issued(self) -> None:
        with self._lock:
            self.hedges_issued += 1

    def record_hedge_abandoned(self, wasted_cost_usd: float = 0.0) -> None:
        """Tally a losing hedge duplicate (cancelled or raced out).

        ``wasted_cost_usd`` is the loser's spend when it completed anyway
        (a real provider bills both sides of the race); it is tracked
        separately so the main cost totals keep meaning "what produced
        the results".
        """
        with self._lock:
            self.hedges_abandoned += 1
            self.hedge_wasted_cost_usd += wasted_cost_usd

    def snapshot(self) -> dict[str, float]:
        """Totals as a plain dict (for reports and tests)."""
        with self._lock:
            return {
                "n_calls": self.n_calls,
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.completion_tokens,
                "latency_s": round(self.latency_s, 3),
                "cost_usd": round(self.cost_usd, 6),
                "cache_hits": self.cache_hits,
                "wait_s": round(self.wait_s, 3),
                "hedges_issued": self.hedges_issued,
                "hedges_abandoned": self.hedges_abandoned,
                "hedge_wasted_cost_usd": round(self.hedge_wasted_cost_usd, 6),
            }

    def restore(self, snapshot: dict) -> None:
        """Overwrite the totals from a checkpoint snapshot.

        The inverse of :meth:`snapshot` for the resumable-run path: a
        resumed run's ledger starts where the killed run's last completed
        stage left it, so completed-stage spend is never double-counted
        (and never re-spent — the stages themselves are not re-run).
        """
        with self._lock:
            self.n_calls = int(snapshot["n_calls"])
            self.prompt_tokens = int(snapshot["prompt_tokens"])
            self.completion_tokens = int(snapshot["completion_tokens"])
            self.latency_s = float(snapshot["latency_s"])
            self.cost_usd = float(snapshot["cost_usd"])
            self.cache_hits = int(snapshot["cache_hits"])
            self.wait_s = float(snapshot.get("wait_s", 0.0))
            self.hedges_issued = int(snapshot.get("hedges_issued", 0))
            self.hedges_abandoned = int(snapshot.get("hedges_abandoned", 0))
            self.hedge_wasted_cost_usd = float(
                snapshot.get("hedge_wasted_cost_usd", 0.0)
            )

    def reset(self) -> None:
        with self._lock:
            self.n_calls = 0
            self.prompt_tokens = 0
            self.completion_tokens = 0
            self.latency_s = 0.0
            self.cost_usd = 0.0
            self.cache_hits = 0
            self.wait_s = 0.0
            self.hedges_issued = 0
            self.hedges_abandoned = 0
            self.hedge_wasted_cost_usd = 0.0
            self.history.clear()


class FMClient(abc.ABC):
    """Abstract foundation-model client: text prompt in, text response out.

    Subclasses implement :meth:`_complete_text`; the public
    :meth:`complete` wraps it with token/latency/cost accounting so every
    client — simulated or real — feeds the same efficiency bookkeeping.
    Clients that keep per-call mutable state (a sampling counter, a
    scripted cursor) additionally override :meth:`_reserve_state` and
    :meth:`_complete_with_state` so batched execution stays deterministic.
    """

    def __init__(
        self,
        model: str = "simulated",
        cost_model: CostModel | None = None,
        cache: "FMCache | None" = None,
        budget: "Budget | None" = None,
    ) -> None:
        self.model = model
        self.cost_model = cost_model or CostModel(model=model)
        self.cache = cache
        self.ledger = CallLedger(budget=budget)

    # ------------------------------------------------------------------
    # Generation protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _complete_text(self, prompt: str, temperature: float) -> str:
        """Produce the raw completion text for *prompt* (serial path)."""

    def _reserve_state(self, prompt: str, temperature: float) -> object | None:
        """Thread-safely reserve per-call state in submission order.

        Stateless clients return None.  Stateful clients (seeded
        simulator, scripted cursor) return whatever
        :meth:`_complete_with_state` needs so generation itself is pure.
        """
        return None

    def _complete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        """Generate text for a call whose state was already reserved."""
        del state
        return self._complete_text(prompt, temperature)

    async def _acomplete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        """Coroutine form of :meth:`_complete_with_state`.

        The default offloads the synchronous implementation to the
        running loop's default thread pool, so any client works under the
        async executor (concurrent, just thread-backed).  Clients with a
        native non-blocking path — a transport-backed HTTP client —
        override this to await on the loop itself, which is where real
        request-level fan-out comes from.
        """
        return await asyncio.get_running_loop().run_in_executor(
            None, self._complete_with_state, prompt, temperature, state
        )

    def _on_cache_hit(self, prompt: str, temperature: float) -> None:
        """Hook invoked when a cache hit replaces a call.  Stateful
        deterministic clients advance their per-call state here so a
        warm-cache run stays on the cold run's trajectory."""

    def is_stateless(self) -> bool:
        """True when completing a call consumes no per-call client state.

        Detected structurally: a client that overrides neither
        :meth:`_reserve_state` nor :meth:`_on_cache_hit` has nothing —
        no sampling counter, no script cursor — that call *order* could
        perturb, so any interleaving of its calls answers identically.
        The stage scheduler uses this to decide when the overlap plan may
        physically fan independent stages out instead of keeping dispatch
        in the canonical chain order that seeded (stateful) clients need.
        Stateful subclasses are free to override this with a cheaper or
        more precise answer.
        """
        return (
            type(self)._reserve_state is FMClient._reserve_state
            and type(self)._on_cache_hit is FMClient._on_cache_hit
        )

    # ------------------------------------------------------------------
    # Checkpoint protocol (resumable runs)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> object | None:
        """The client's per-call mutable state as a JSON-safe value.

        Stateless clients return ``None``.  Stateful deterministic
        clients (the simulator's sampling counter, a scripted cursor)
        return whatever :meth:`restore_checkpoint_state` needs to put a
        *fresh* instance back on the same trajectory — the mechanism that
        makes a resumed run bit-identical to an uninterrupted one.
        """
        return None

    def restore_checkpoint_state(self, state: object | None) -> None:
        """Restore state captured by :meth:`checkpoint_state`.

        The default accepts only ``None``: a stateful client that
        recorded real state into a checkpoint but cannot restore it must
        fail loudly, not resume onto a silently different trajectory.
        """
        if state is not None:
            raise ValueError(
                f"{type(self).__name__} cannot restore checkpoint state "
                f"{state!r}: override restore_checkpoint_state()"
            )

    # ------------------------------------------------------------------
    # Accounting helpers shared with the executor layer
    # ------------------------------------------------------------------
    def build_response(self, prompt: str, text: str) -> FMResponse:
        """Wrap raw completion text with token/latency/cost metadata."""
        prompt_tokens = estimate_tokens(prompt)
        completion_tokens = estimate_tokens(text)
        return FMResponse(
            text=text,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            latency_s=self.cost_model.latency(completion_tokens),
            cost_usd=self.cost_model.price(prompt_tokens, completion_tokens),
            model=self.model,
        )

    def _cache_get(self, prompt: str, temperature: float) -> FMResponse | None:
        if self.cache is None:
            return None
        return self.cache.get(self.model, prompt, temperature)

    def _cache_put(self, prompt: str, temperature: float, response: FMResponse) -> None:
        if self.cache is not None:
            self.cache.put(self.model, prompt, temperature, response)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def complete(self, prompt: str, temperature: float = 0.0) -> FMResponse:
        """Run one completion and record it in the ledger."""
        cached = self._cache_get(prompt, temperature)
        if cached is not None:
            self._on_cache_hit(prompt, temperature)
            self.ledger.record_cache_hit()
            return cached
        self.ledger.check_budget()  # cache hits are free; only real calls are gated
        state = self._reserve_state(prompt, temperature)
        text = self._complete_with_state(prompt, temperature, state)
        response = self.build_response(prompt, text)
        self._cache_put(prompt, temperature, response)
        self.ledger.record(prompt, response)
        return response

    def complete_batch(
        self,
        requests: "list[FMRequest]",
        executor: "FMExecutor | None" = None,
    ) -> "list[FMResult]":
        """Run a batch of requests under one concurrency contract.

        Without an executor the batch runs serially; any
        :class:`~repro.fm.executor.FMExecutor` backend may be substituted
        and, for deterministic clients, produces identical responses and
        ledger totals.
        """
        from repro.fm.executor import SerialExecutor

        return (executor or SerialExecutor()).run(self, requests)
