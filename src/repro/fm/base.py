"""The FM client protocol and per-client call accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.fm.cost import CostModel, estimate_tokens

__all__ = ["CallLedger", "FMClient", "FMResponse"]


@dataclass(frozen=True)
class FMResponse:
    """One foundation-model completion with its accounting metadata."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    latency_s: float
    cost_usd: float
    model: str = "simulated"


@dataclass
class CallLedger:
    """Accumulates per-call accounting across a client's lifetime.

    The evaluation harness reads these totals to reproduce the paper's
    efficiency comparisons without real API access.
    """

    n_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_s: float = 0.0
    cost_usd: float = 0.0
    history: list[tuple[str, str]] = field(default_factory=list)
    keep_history: bool = False

    def record(self, prompt: str, response: FMResponse) -> None:
        self.n_calls += 1
        self.prompt_tokens += response.prompt_tokens
        self.completion_tokens += response.completion_tokens
        self.latency_s += response.latency_s
        self.cost_usd += response.cost_usd
        if self.keep_history:
            self.history.append((prompt, response.text))

    def snapshot(self) -> dict[str, float]:
        """Totals as a plain dict (for reports and tests)."""
        return {
            "n_calls": self.n_calls,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "latency_s": round(self.latency_s, 3),
            "cost_usd": round(self.cost_usd, 6),
        }

    def reset(self) -> None:
        self.n_calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
        self.latency_s = 0.0
        self.cost_usd = 0.0
        self.history.clear()


class FMClient(abc.ABC):
    """Abstract foundation-model client: text prompt in, text response out.

    Subclasses implement :meth:`_complete_text`; the public
    :meth:`complete` wraps it with token/latency/cost accounting so every
    client — simulated or real — feeds the same efficiency bookkeeping.
    """

    def __init__(self, model: str = "simulated", cost_model: CostModel | None = None) -> None:
        self.model = model
        self.cost_model = cost_model or CostModel(model=model)
        self.ledger = CallLedger()

    @abc.abstractmethod
    def _complete_text(self, prompt: str, temperature: float) -> str:
        """Produce the raw completion text for *prompt*."""

    def complete(self, prompt: str, temperature: float = 0.0) -> FMResponse:
        """Run one completion and record it in the ledger."""
        text = self._complete_text(prompt, temperature)
        prompt_tokens = estimate_tokens(prompt)
        completion_tokens = estimate_tokens(text)
        response = FMResponse(
            text=text,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            latency_s=self.cost_model.latency(completion_tokens),
            cost_usd=self.cost_model.price(prompt_tokens, completion_tokens),
            model=self.model,
        )
        self.ledger.record(prompt, response)
        return response
