"""Exact-hit caching for deterministic FM calls.

SMARTFEAT's proposal-strategy calls run at ``temperature == 0``: the same
prompt always earns the same answer, so re-asking is pure waste.  The
sampling strategy *relies* on fresh draws, so calls with ``temperature >
0`` are never cached.  :class:`FMCache` is a thread-safe LRU keyed on
``(model, prompt, temperature)`` with an optional persistent JSON store,
shared across clients (the operator-selector and function-generator
clients can point at one cache) and across runs (repeated
``fit_transform`` on the same dataset re-issues zero temperature-0
calls).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fm.base import FMResponse

__all__ = ["FMCache"]

_KEY_SEP = "\x1f"  # unit separator: never appears in prompts


def _key(model: str, prompt: str, temperature: float) -> str:
    return _KEY_SEP.join((model, repr(float(temperature)), prompt))


class FMCache:
    """Thread-safe exact-hit LRU over ``(model, prompt, temperature)``.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used entry is evicted beyond it.
    path:
        Optional JSON store.  Existing entries are loaded eagerly;
        :meth:`save` writes the current contents back (the CLI saves on
        exit so later runs start warm).
    """

    def __init__(self, max_entries: int = 4096, path: str | Path | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        if self.path is not None and self.path.exists():
            try:
                self.load()
            except (ValueError, OSError) as exc:
                # A corrupt store should cost a cold start, not a crash.
                import sys

                print(
                    f"warning: ignoring unreadable FM cache {self.path}: {exc}",
                    file=sys.stderr,
                )

    # ------------------------------------------------------------------
    @staticmethod
    def cacheable(temperature: float) -> bool:
        """Only deterministic calls are safe to replay."""
        return temperature == 0.0

    def get(self, model: str, prompt: str, temperature: float) -> "FMResponse | None":
        """Cached response for an exact key, or None (counts hit/miss)."""
        if not self.cacheable(temperature):
            return None
        with self._lock:
            entry = self._entries.get(_key(model, prompt, temperature))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(_key(model, prompt, temperature))
            self.hits += 1
            from repro.fm.base import FMResponse

            return FMResponse(**entry)

    def put(self, model: str, prompt: str, temperature: float, response: "FMResponse") -> None:
        if not self.cacheable(temperature):
            return
        entry = {
            "text": response.text,
            "prompt_tokens": response.prompt_tokens,
            "completion_tokens": response.completion_tokens,
            "latency_s": response.latency_s,
            "cost_usd": response.cost_usd,
            "model": response.model,
        }
        with self._lock:
            key = _key(model, prompt, temperature)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, int]:
        """Counter totals for reports and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------
    def load(self) -> int:
        """Merge entries from :attr:`path`; returns how many were read.

        The store is validated entry by entry — a malformed record is
        skipped rather than poisoning a later :meth:`get`; a store whose
        overall shape is wrong raises :class:`ValueError` (which the
        eager load in ``__init__`` downgrades to a cold start).
        """
        if self.path is None:
            raise ValueError("cache has no persistent path")
        payload = json.loads(self.path.read_text())
        if not isinstance(payload, dict) or not isinstance(payload.get("entries", {}), dict):
            raise ValueError(f"malformed FM cache store: {self.path}")
        entries = payload.get("entries", {})
        loaded = 0
        with self._lock:
            for key, entry in entries.items():
                if not self._valid_entry(entry):
                    continue
                self._entries[key] = entry
                loaded += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return loaded

    _ENTRY_FIELDS = {
        "text": str,
        "prompt_tokens": int,
        "completion_tokens": int,
        "latency_s": (int, float),
        "cost_usd": (int, float),
        "model": str,
    }

    @classmethod
    def _valid_entry(cls, entry: object) -> bool:
        return (
            isinstance(entry, dict)
            and set(entry) == set(cls._ENTRY_FIELDS)
            and all(isinstance(entry[k], t) for k, t in cls._ENTRY_FIELDS.items())
        )

    def save(self) -> None:
        """Write the current entries to :attr:`path` as JSON.

        The write is atomic (tmp file + ``os.replace``, the same pattern
        as :mod:`repro.core.checkpoint`): a crash mid-save leaves the
        previous store intact instead of a truncated JSON file that
        would force a cold start on the next run.
        """
        if self.path is None:
            raise ValueError("cache has no persistent path")
        with self._lock:
            payload = {"version": 1, "entries": dict(self._entries)}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
