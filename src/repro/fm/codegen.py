"""Transformation emission for the simulated function generator.

The real system's GPT-3.5 turns a (feature name, relevant columns,
description) triple into executable pandas code.  This module is the
simulator's code-writing faculty: given the same triple — plus the data
agenda embedded in the prompt — it emits Python source defining
``def transform(df)`` that returns the new column (a Series) or columns
(a DataFrame).

Descriptions carry a machine-readable operator tag prefix (emitted by the
simulated operator selector), e.g. ``"bucketization[age_insurance]: Age
grouped into standard insurance bands"`` — mirroring how the paper reuses
the operator description as the feature description.

Each operator form is emitted as an :class:`OpForm` pairing the sandbox
source with its expression-IR mirror (:mod:`repro.dataframe.expr`): the
*source* is what fit-time executes, the *expr* is the template the
FeaturePlan compiler freezes into a pure-numpy serving program.  The two
representations are built side by side from the same inputs so they
cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fm.knowledge import KnowledgeStore

__all__ = [
    "KNOWN_TAGS",
    "OpForm",
    "derivation_tag",
    "generate_transform_expr",
    "generate_transform_form",
    "generate_transform_source",
    "parse_op_tag",
]

#: Operator tags the selector/codegen pipeline emits in descriptions.
KNOWN_TAGS = frozenset(
    {
        "normalization",
        "bucketization",
        "log_transform",
        "get_dummies",
        "date_split",
        "text_length",
        "squared",
        "is_missing",
        "binary",
        "groupby",
        "knowledge_map",
        "split_parts",
        "composite_index",
        "source",
    }
)


@dataclass(frozen=True)
class OpForm:
    """One operator's two emissions: sandbox source + expression template.

    ``expr`` may contain fit-time nodes (``fit_mean`` …) that the plan
    compiler resolves against the fitted frame; ``None`` means the form
    has no IR mirror and serving must fall back to the source.
    """

    source: str
    expr: dict | None


def derivation_tag(description: str) -> str:
    """The operator tag a generated feature's description starts with.

    Original data-card descriptions are natural language and yield ``""``;
    generated features carry tags like ``"binary"`` or ``"groupby"`` — the
    FM reads these to avoid stacking operators nonsensically.
    """
    tag, _ = parse_op_tag(description)
    return tag if tag in KNOWN_TAGS else ""


def parse_op_tag(description: str) -> tuple[str, list[str]]:
    """Split ``"op[arg1][arg2]: text"`` into ``("op", ["arg1", "arg2"])``.

    Descriptions without a recognisable tag yield ``("", [])``.
    """
    head = description.split(":", 1)[0].strip()
    if not head or " " in head.split("[", 1)[0]:
        return "", []
    if "[" in head:
        op = head[: head.index("[")]
        args = [part.rstrip("]") for part in head[head.index("[") + 1 :].split("[")]
        return op, args
    return head, []


def _quote(name: str) -> str:
    return repr(name)


# ----------------------------------------------------------------------
# Expression-node shorthands
# ----------------------------------------------------------------------
def _col(name: str) -> dict:
    return {"op": "col", "name": name}


def _const(value) -> dict:
    return {"op": "const", "value": value}


def _bin(op: str, left: dict, right: dict) -> dict:
    return {"op": op, "left": left, "right": right}


def _zscore(column: str) -> dict:
    return _bin(
        "div",
        _bin("sub", _col(column), {"op": "fit_mean", "column": column}),
        {"op": "fit_std_or1", "column": column},
    )


# ----------------------------------------------------------------------
# Operator forms
# ----------------------------------------------------------------------
def _bucketization(column: str, args: list[str], knowledge: KnowledgeStore) -> OpForm:
    domain = args[0] if args else ""
    try:
        edges = knowledge.thresholds(domain)
        edge_src = repr(edges)
        return OpForm(
            source=(
                f"def transform(df):\n"
                f"    # Domain-standard {domain or 'generic'} bands.\n"
                f"    edges = {edge_src}\n"
                f"    return pd.cut(df[{_quote(column)}], edges, labels=list(range(len(edges) - 1)))\n"
            ),
            expr={
                "op": "cut",
                "column": column,
                "edges": [float(e) for e in edges],
                "labels": list(range(len(edges) - 1)),
                "right": True,
            },
        )
    except KeyError:
        return OpForm(
            source=(
                f"def transform(df):\n"
                f"    # No domain-standard bands known; fall back to quartiles.\n"
                f"    return pd.qcut(df[{_quote(column)}], 4, labels=[0, 1, 2, 3])\n"
            ),
            expr={"op": "fit_qcut", "column": column, "q": 4, "labels": [0, 1, 2, 3]},
        )


def _normalization(column: str, args: list[str]) -> OpForm:
    mode = args[0] if args else "zscore"
    if mode == "minmax":
        return OpForm(
            source=(
                f"def transform(df):\n"
                f"    col = df[{_quote(column)}]\n"
                f"    lo, hi = col.min(), col.max()\n"
                f"    span = (hi - lo) or 1.0\n"
                f"    return (col - lo) / span\n"
            ),
            expr=_bin(
                "div",
                _bin("sub", _col(column), {"op": "fit_min", "column": column}),
                {"op": "fit_span_or1", "column": column},
            ),
        )
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    col = df[{_quote(column)}]\n"
            f"    scale = col.std() or 1.0\n"
            f"    return (col - col.mean()) / scale\n"
        ),
        expr=_zscore(column),
    )


def _log_transform(column: str) -> OpForm:
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    # log1p of the non-negative part; keeps zeros/negatives safe.\n"
            f"    # np.log dispatches as one vectorised ufunc call.\n"
            f"    return (df[{_quote(column)}].clip(0) + 1.0).apply(np.log)\n"
        ),
        expr={
            "op": "ufunc",
            "fn": "log",
            "arg": _bin(
                "add",
                {"op": "clip", "arg": _col(column), "lower": 0, "upper": None},
                _const(1.0),
            ),
        },
    )


def _squared(column: str) -> OpForm:
    return OpForm(
        source=f"def transform(df):\n    return df[{_quote(column)}] ** 2\n",
        expr=_bin("pow", _col(column), _const(2)),
    )


def _get_dummies(column: str) -> OpForm:
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    return pd.get_dummies(df[{_quote(column)}], prefix={_quote(column)})\n"
        ),
        expr={"op": "fit_categories", "column": column, "prefix": column},
    )


def _date_split(column: str) -> OpForm:
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    col = df[{_quote(column)}]\n"
            f"    return pd.DataFrame({{\n"
            f"        {_quote(column + '_month')}: col.dt.month,\n"
            f"        {_quote(column + '_dayofweek')}: col.dt.dayofweek,\n"
            f"    }})\n"
        ),
        expr={
            "op": "date_split",
            "column": column,
            "outputs": [
                ["month", f"{column}_month"],
                ["dayofweek", f"{column}_dayofweek"],
            ],
        },
    )


def _text_length(column: str) -> OpForm:
    return OpForm(
        source=f"def transform(df):\n    return df[{_quote(column)}].str.len()\n",
        expr={"op": "str_len", "column": column},
    )


def _is_missing(column: str) -> OpForm:
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    return df[{_quote(column)}].isna().astype(int)\n"
        ),
        expr={"op": "isna_int", "column": column},
    )


def _binary(op: str, columns: list[str]) -> OpForm:
    a, b = columns[0], columns[1]
    if op == "/":
        return OpForm(
            source=(
                f"def transform(df):\n"
                f"    # Guard against division by zero: zero/null denominators\n"
                f"    # become missing via one vectorised mask, and propagate.\n"
                f"    den = df[{_quote(b)}].where(df[{_quote(b)}] != 0)\n"
                f"    return df[{_quote(a)}] / den\n"
            ),
            expr=_bin("div", _col(a), {"op": "where_nonzero", "arg": _col(b)}),
        )
    symbol = {"+": "+", "-": "-", "*": "*"}[op]
    node = {"+": "add", "-": "sub", "*": "mul"}[op]
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    return df[{_quote(a)}] {symbol} df[{_quote(b)}]\n"
        ),
        expr=_bin(node, _col(a), _col(b)),
    )


def _groupby(args: list[str], columns: list[str]) -> OpForm:
    func = args[0] if args else "mean"
    agg_col = columns[-1]
    group_cols = columns[:-1]
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    return df.groupby({group_cols!r})[{_quote(agg_col)}].transform({_quote(func)})\n"
        ),
        expr={
            "op": "fit_group_table",
            "keys": list(group_cols),
            "agg_col": agg_col,
            "agg": func,
        },
    )


def _knowledge_map(
    topic: str, column: str, values: list[str], knowledge: KnowledgeStore
) -> OpForm:
    mapping = knowledge.mapping_for(topic, values)
    default = knowledge.default_for(topic)
    entries = ", ".join(f"{k!r}: {v!r}" for k, v in mapping.items())
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    # Encoded world knowledge: {topic.replace('_', ' ')}.\n"
            f"    # Dict .map runs one lookup per distinct value; unmapped and\n"
            f"    # missing inputs fall through to the default.\n"
            f"    lookup = {{{entries}}}\n"
            f"    return df[{_quote(column)}].map(lookup).fillna({default!r})\n"
        ),
        expr={
            "op": "fillna",
            "arg": {
                "op": "dict_map",
                "column": column,
                "keys": list(mapping),
                "values": list(mapping.values()),
            },
            "value": default,
        },
    )


def _split_parts(column: str, args: list[str]) -> OpForm:
    separator = args[0] if args else ","
    return OpForm(
        source=(
            f"def transform(df):\n"
            f"    parts = df[{_quote(column)}].str.split({separator!r}, expand=True)\n"
            f"    parts = parts.rename(columns={{'0': {_quote(column + '_part0')}, '1': {_quote(column + '_part1')}}})\n"
            f"    out = pd.DataFrame({{}})\n"
            f"    for name in parts.columns:\n"
            f"        out[name] = parts[name].str.strip()\n"
            f"    return out\n"
        ),
        expr={"op": "fit_split_outputs", "column": column, "sep": separator},
    )


def _composite_index(columns: list[str]) -> OpForm:
    weight = 1.0 / max(len(columns), 1)
    body = [
        "def transform(df):",
        "    # Equal-weight z-score composite of the inputs.",
        "    total = None",
    ]
    total: dict | None = None
    for col in columns:
        body.append(f"    col = df[{_quote(col)}]")
        body.append("    scale = col.std() or 1.0")
        body.append(f"    part = ((col - col.mean()) / scale) * {weight!r}")
        body.append("    total = part if total is None else total + part")
        part = _bin("mul", _zscore(col), _const(weight))
        total = part if total is None else _bin("add", total, part)
    body.append("    return total")
    return OpForm(source="\n".join(body) + "\n", expr=total)


def generate_transform_form(
    name: str,
    columns: list[str],
    description: str,
    knowledge: KnowledgeStore,
    column_values: dict[str, list[str]] | None = None,
) -> OpForm:
    """Emit one feature candidate's :class:`OpForm`.

    Parameters mirror the function-generator prompt: the feature *name*,
    its *columns*, the tagged *description*, and the categorical domains
    (*column_values*) parsed from the agenda in the prompt.
    """
    op, args = parse_op_tag(description)
    column = columns[0] if columns else ""
    values = (column_values or {}).get(column, [])
    if op == "bucketization":
        return _bucketization(column, args, knowledge)
    if op == "normalization":
        return _normalization(column, args)
    if op == "log_transform":
        return _log_transform(column)
    if op == "squared":
        return _squared(column)
    if op == "get_dummies":
        return _get_dummies(column)
    if op == "date_split":
        return _date_split(column)
    if op == "text_length":
        return _text_length(column)
    if op == "is_missing":
        return _is_missing(column)
    if op == "binary" and args and len(columns) >= 2:
        return _binary(args[0], columns)
    if op == "groupby":
        return _groupby(args, columns)
    if op == "knowledge_map" and args:
        return _knowledge_map(args[0], column, values, knowledge)
    if op == "split_parts":
        return _split_parts(column, args)
    if op == "composite_index":
        return _composite_index(columns)
    # Unknown intent: a defensible generic fallback (identity copy) that the
    # validator will reject as redundant — mirroring an FM low-quality answer.
    return OpForm(
        source=f"def transform(df):\n    return df[{_quote(column)}]\n",
        expr=_col(column),
    )


def generate_transform_source(
    name: str,
    columns: list[str],
    description: str,
    knowledge: KnowledgeStore,
    column_values: dict[str, list[str]] | None = None,
) -> str:
    """Emit ``def transform(df)`` source for one feature candidate."""
    return generate_transform_form(
        name, columns, description, knowledge, column_values
    ).source


def generate_transform_expr(
    name: str,
    columns: list[str],
    description: str,
    knowledge: KnowledgeStore,
    column_values: dict[str, list[str]] | None = None,
) -> dict | None:
    """Emit the expression-IR template for one feature candidate.

    The result may contain fit-time nodes; freeze with
    :func:`repro.dataframe.expr.freeze_expr` before serving.  ``None``
    means the form has no IR mirror.
    """
    return generate_transform_form(
        name, columns, description, knowledge, column_values
    ).expr
