"""API cost and latency model.

The paper's efficiency argument (Figure 1, Section 1) is that row-level FM
interactions are impractical on large tables because cost and latency grow
with the number of rows, while feature-level interactions cost O(#features)
calls.  This module makes that measurable: every simulated call is priced
and timed with public API-style rates, so the Figure 1 benchmark can report
calls, tokens, dollars, and modelled latency for both interaction styles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["CostModel", "PRICE_TABLE", "critical_path_seconds", "estimate_tokens"]


def estimate_tokens(text: str) -> int:
    """Rough BPE token count: ~4 characters per token, at least 1."""
    return max(1, len(text) // 4)


#: $ per 1M tokens (prompt, completion) — public list prices at the time of
#: the paper's evaluation (GPT-4 8k and GPT-3.5-turbo).
PRICE_TABLE: dict[str, tuple[float, float]] = {
    "gpt-4": (30.0, 60.0),
    "gpt-3.5-turbo": (0.5, 1.5),
    "simulated": (30.0, 60.0),  # priced as GPT-4 so cost shapes match
}


@dataclass(frozen=True)
class CostModel:
    """Prices and latency parameters for one model family.

    Latency is modelled as ``base_latency_s + completion_tokens *
    per_token_s`` — a fixed round-trip overhead plus autoregressive
    decoding time, the structure that makes row-level loops slow.
    """

    model: str = "simulated"
    base_latency_s: float = 0.6
    per_token_s: float = 0.02

    def price(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Dollar cost of one call."""
        per_in, per_out = PRICE_TABLE.get(self.model, PRICE_TABLE["simulated"])
        return (prompt_tokens * per_in + completion_tokens * per_out) / 1e6

    def latency(self, completion_tokens: int) -> float:
        """Modelled wall-clock seconds for one call."""
        return self.base_latency_s + completion_tokens * self.per_token_s


def critical_path_seconds(latencies: list[float], concurrency: int) -> float:
    """Makespan of running *latencies* on ``concurrency`` workers in order.

    Summed latency is what the calls *cost*; this is how long they *take*
    when up to ``concurrency`` may be in flight at once.  Calls are
    assigned greedily, in submission order, to the earliest-free worker —
    exactly what a bounded thread pool does.  With ``concurrency == 1``
    this degenerates to the plain sum.
    """
    if not latencies:
        return 0.0
    if concurrency <= 1:
        return float(sum(latencies))
    workers = [0.0] * min(concurrency, len(latencies))
    heapq.heapify(workers)
    for latency in latencies:
        heapq.heapreplace(workers, workers[0] + latency)
    return max(workers)
