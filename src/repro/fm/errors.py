"""Exception hierarchy for the foundation-model substrate."""

from __future__ import annotations

__all__ = [
    "FMBudgetExceededError",
    "FMConnectionError",
    "FMError",
    "FMParseError",
    "FMRateLimitError",
    "FMServerError",
    "FMTimeoutError",
    "FMTransportError",
]


class FMError(Exception):
    """Base class for foundation-model interaction failures."""


class FMParseError(FMError):
    """An FM response could not be parsed into the expected structure."""


class FMTransportError(FMError):
    """A request failed at the transport layer, below the FM protocol.

    Covers everything a real HTTP backend can do to a call besides
    answering it: server errors, wire timeouts, dropped connections.
    Transient like a rate limit — a :class:`~repro.fm.executor.RetryPolicy`
    whose ``retry_on`` includes :class:`FMError` (the default) retries it.
    """


class FMServerError(FMTransportError):
    """The backend answered with a server-side failure (HTTP 5xx)."""

    def __init__(self, message: str = "server error", status: int | None = None):
        super().__init__(message)
        self.status = status


class FMTimeoutError(FMTransportError):
    """The call exceeded the transport's deadline before answering."""


class FMConnectionError(FMTransportError):
    """The connection dropped mid-request (reset, broken pipe)."""


class FMRateLimitError(FMError):
    """The backend rejected a call with a rate limit (HTTP 429).

    Transient by definition: a :class:`~repro.fm.executor.RetryPolicy`
    with backoff is the intended recovery path.  ``retry_after_s`` carries
    the server's suggested wait when one was provided.
    """

    def __init__(self, message: str = "rate limited", retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class FMBudgetExceededError(FMError):
    """A call/cost/latency budget was exhausted mid-interaction.

    ``axis`` names the exhausted dimension (``"calls"``, ``"cost_usd"``,
    or ``"latency_s"``); ``limit`` and ``spent`` quantify it.  Budget
    exhaustion is terminal for the run that hit it — it is never retried
    (retrying spends more of what is already gone).
    """

    def __init__(
        self,
        message: str,
        axis: str | None = None,
        limit: float | None = None,
        spent: float | None = None,
    ):
        super().__init__(message)
        self.axis = axis
        self.limit = limit
        self.spent = spent
