"""Exception hierarchy for the foundation-model substrate."""

__all__ = ["FMBudgetExceededError", "FMError", "FMParseError"]


class FMError(Exception):
    """Base class for foundation-model interaction failures."""


class FMParseError(FMError):
    """An FM response could not be parsed into the expected structure."""


class FMBudgetExceededError(FMError):
    """A call/token/cost budget was exhausted mid-interaction."""
