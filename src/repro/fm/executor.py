"""The FM execution layer: one concurrency contract for every client.

SMARTFEAT's interactions are feature-level, and most of them are
independent of one another: the unary proposals for different attributes,
the i.i.d. samples of one sampling wave, and the first-attempt function
generations for a wave's surviving candidates share no state.  An
:class:`FMExecutor` runs such a batch of :class:`FMRequest` records
against one :class:`~repro.fm.base.FMClient` and returns per-request
:class:`FMResult` records, with two backends:

:class:`SerialExecutor`
    One blocking call at a time (the seed behaviour).
:class:`ThreadPoolFMExecutor`
    Bounded thread-pool fan-out.  Determinism is preserved by reserving
    each request's per-call client state (the simulator's sampling
    counter, a scripted client's cursor) in submission order *before*
    any thread runs, and by recording ledger entries in submission order
    after all threads finish.  A batch therefore produces byte-identical
    responses and ledger totals under either backend.
:class:`AsyncFMExecutor`
    ``asyncio`` fan-out on an event loop the executor owns (a dedicated
    daemon thread), bounded by a semaphore.  The same submission-order
    reservation contract applies, so seeded clients stay bit-identical;
    clients with a native coroutine path
    (:meth:`~repro.fm.base.FMClient._acomplete_with_state`, e.g. a
    transport-backed HTTP client) overlap their waits on the loop itself,
    while plain synchronous clients are offloaded to worker threads.

All backends apply a per-call :class:`RetryPolicy` and accumulate
:class:`ExecutionStats`, which separates **summed latency** (what the
calls cost — the accounting view) from **critical-path latency** (how
long the batch takes on the wall clock under bounded concurrency).
"""

from __future__ import annotations

import abc
import asyncio
import concurrent.futures
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fm.adaptive import AIMDController, AsyncConcurrencyGate, ConcurrencyGate
from repro.fm.cost import critical_path_seconds
from repro.fm.errors import FMBudgetExceededError, FMError
from repro.fm.hedging import HedgePolicy, LatencyTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fm.base import FMClient, FMResponse

__all__ = [
    "AsyncFMExecutor",
    "BatchRecord",
    "DEFAULT_RETRY_AFTER_CAP_S",
    "ExecutionStats",
    "FMExecutor",
    "FMRequest",
    "FMResult",
    "RetryPolicy",
    "SerialExecutor",
    "ThreadPoolFMExecutor",
]

#: Ceiling on a server-supplied ``Retry-After`` when the policy sets no
#: ``max_backoff_s`` of its own.  A hostile or buggy server answering
#: ``Retry-After: 3600`` must not park a worker for an hour — an hour of
#: dead time is indistinguishable from a hang to everything upstream.
DEFAULT_RETRY_AFTER_CAP_S = 60.0


@dataclass(frozen=True)
class FMRequest:
    """One completion to run: prompt text plus sampling temperature."""

    prompt: str
    temperature: float = 0.0


@dataclass
class FMResult:
    """Outcome of one request: a response, or the exception it raised."""

    request: FMRequest
    response: "FMResponse | None" = None
    error: Exception | None = None
    cached: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.response is not None

    def unwrap(self) -> "FMResponse":
        """The response, re-raising the recorded error on failure."""
        if self.response is None:
            assert self.error is not None
            raise self.error
        return self.response


@dataclass(frozen=True)
class RetryPolicy:
    """Per-call retry behaviour.

    ``max_attempts`` counts the first try; the default of 1 disables
    retries (deterministic clients gain nothing from them).  Only
    exceptions matching ``retry_on`` are retried — parse-level failures
    happen downstream of the client and never reach the executor, and
    :class:`~repro.fm.errors.FMBudgetExceededError` is never retried
    (retrying only spends more of an already-exhausted budget).

    ``backoff_s`` is the sleep before the second attempt; each further
    attempt multiplies it by ``backoff_multiplier`` (2.0 gives the
    classic exponential schedule HTTP 429 handling wants), capped at
    ``max_backoff_s``.  The defaults keep simulated backends at zero
    sleep.
    """

    max_attempts: int = 1
    retry_on: tuple[type[Exception], ...] = (FMError,)
    backoff_s: float = 0.0
    backoff_multiplier: float = 1.0
    max_backoff_s: float | None = None

    def should_retry(self, error: Exception, attempt: int) -> bool:
        if isinstance(error, FMBudgetExceededError):
            return False
        return attempt < self.max_attempts and isinstance(error, self.retry_on)

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt number *attempt* (1-based)."""
        delay = self.backoff_s * (self.backoff_multiplier ** (attempt - 1))
        if self.max_backoff_s is not None:
            delay = min(delay, self.max_backoff_s)
        return delay

    def delay_for(self, error: Exception, attempt: int) -> float:
        """Seconds to sleep before retrying *error* after attempt *attempt*.

        A server-provided ``Retry-After`` hint (an
        :class:`~repro.fm.errors.FMRateLimitError` with ``retry_after_s``)
        overrides the computed backoff schedule — the server knows when
        capacity returns; guessing earlier only earns another 429.  The
        hint is never honoured verbatim: ``max_backoff_s`` caps it when
        set, and :data:`DEFAULT_RETRY_AFTER_CAP_S` otherwise, so a
        hostile ``Retry-After: 3600`` cannot park a worker for an hour.
        """
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            cap = (
                self.max_backoff_s
                if self.max_backoff_s is not None
                else DEFAULT_RETRY_AFTER_CAP_S
            )
            return min(max(0.0, float(retry_after)), cap)
        return self.backoff_for(attempt)


@dataclass(frozen=True)
class BatchRecord:
    """Accounting for one executed batch, attributed to a pipeline stage.

    ``stage`` is whatever scope the caller opened with
    :meth:`FMExecutor.stage` (the stage-graph scheduler tags every batch
    a stage node dispatches with the node's name; untagged batches record
    ``None``).  The stage scheduler sums these records per node to report
    per-stage FM spend and modelled critical path — the submission
    interleaving across stages stays visible in one ordered log.
    """

    stage: str | None
    model: str
    n_calls: int
    n_cached: int
    n_errors: int
    summed_latency_s: float
    critical_path_s: float
    #: Real elapsed seconds the run() call took (0.0 when unmeasured) —
    #: lets schedule accounting separate time *blocked in the executor*
    #: from a stage's own data-plane work.
    wall_s: float = 0.0
    #: Dollar spend of the batch's successful calls.  With physically
    #: overlapped stages the stage scheduler cannot attribute spend by
    #: ledger deltas (several stages charge one ledger concurrently), so
    #: the batch record carries it.
    cost_usd: float = 0.0


@dataclass
class ExecutionStats:
    """Cumulative accounting across every batch an executor has run.

    ``summed_latency_s`` adds up each executed call's modelled latency —
    the cost-accounting view, identical under any backend.
    ``critical_path_s`` is the modelled wall-clock: per batch, the
    makespan of scheduling the calls' latencies onto ``concurrency``
    workers in submission order.  Cache hits cost nothing on either axis.
    """

    n_batches: int = 0
    n_calls: int = 0
    n_errors: int = 0
    n_retries: int = 0
    cache_hits: int = 0
    summed_latency_s: float = 0.0
    critical_path_s: float = 0.0
    #: Hedged-request outcomes (always zero against stateful clients,
    #: where hedging is structurally inert).
    hedges_issued: int = 0
    hedges_won: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "n_batches": self.n_batches,
            "n_calls": self.n_calls,
            "n_errors": self.n_errors,
            "n_retries": self.n_retries,
            "cache_hits": self.cache_hits,
            "summed_latency_s": round(self.summed_latency_s, 3),
            "critical_path_s": round(self.critical_path_s, 3),
            "hedges_issued": self.hedges_issued,
            "hedges_won": self.hedges_won,
        }


class FMExecutor(abc.ABC):
    """Runs batches of FM requests under one concurrency contract."""

    #: Number of calls that may be in flight at once.
    concurrency: int = 1

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        adaptive: AIMDController | bool | None = None,
        hedge: HedgePolicy | None = None,
    ) -> None:
        self.retry = retry or RetryPolicy()
        self.stats = ExecutionStats()
        #: Ordered per-batch accounting (one BatchRecord per run() call).
        #: Grows with the executor's lifetime; pipeline runs create
        #: per-instance executors, so the log stays run-sized in practice.
        self.batch_log: list[BatchRecord] = []
        self._stage_slot = threading.local()
        # Physically overlapped stages finish batches from several
        # threads at once; stats and the batch log are shared.
        self._account_lock = threading.Lock()
        #: AIMD controller throttling admission on 429/5xx backpressure.
        #: ``True`` builds one bounded by this executor's concurrency; a
        #: passed-in controller may be shared across executors.
        if adaptive is True:
            adaptive = AIMDController(ceiling=max(1, self.concurrency))
        self.adaptive: AIMDController | None = adaptive or None
        #: Hedged-request policy; only applied to stateless clients (a
        #: hedge re-sends a logical call, which is undefined when calls
        #: consume client state — so seeded clients are never hedged).
        self.hedge: HedgePolicy | None = hedge
        self.hedge_tracker = LatencyTracker()
        self._hedge_pool: ThreadPoolExecutor | None = None
        self._hedge_pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Traffic-policy plumbing (AIMD feedback, hedge workers)
    # ------------------------------------------------------------------
    def _observe_outcome(self, error: Exception | None) -> None:
        """Feed one attempt outcome to the adaptive controller (if any)."""
        if self.adaptive is not None:
            self.adaptive.observe(error)

    def _ensure_hedge_pool(self) -> ThreadPoolExecutor:
        with self._hedge_pool_lock:
            if self._hedge_pool is None:
                # Primary + shadow per in-flight logical call, so a fully
                # hedged batch can never starve itself.
                self._hedge_pool = ThreadPoolExecutor(
                    max_workers=2 * max(1, self.concurrency),
                    thread_name_prefix="fm-hedge",
                )
            return self._hedge_pool

    def _close_hedge_pool(self) -> None:
        with self._hedge_pool_lock:
            pool, self._hedge_pool = self._hedge_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        """Release executor-owned workers (idempotent; subclasses extend)."""
        self._close_hedge_pool()

    def policy_snapshot(self) -> dict:
        """Current adaptive/hedging state, for reports and benchmarks."""
        return {
            "adaptive": None if self.adaptive is None else self.adaptive.snapshot(),
            "hedge": (
                None
                if self.hedge is None
                else {
                    "quantile": self.hedge.quantile,
                    "latency": self.hedge_tracker.snapshot(),
                    "issued": self.stats.hedges_issued,
                    "won": self.stats.hedges_won,
                }
            ),
        }

    @property
    def _stage_tag(self) -> str | None:
        return getattr(self._stage_slot, "tag", None)

    @contextmanager
    def stage(self, tag: str):
        """Attribute every batch finished inside this scope to *tag*.

        The scope is thread-local: a run() call is tagged with the scope
        open on *its* dispatching thread, so two pipeline runs sharing
        one executor from different threads cannot cross-tag each
        other's batches.  Scopes nest, restoring the enclosing tag on
        exit.
        """
        previous = self._stage_tag
        self._stage_slot.tag = tag
        try:
            yield self
        finally:
            self._stage_slot.tag = previous

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        """Execute *requests* against *client*, preserving request order."""

    def complete(self, client: "FMClient", prompt: str, temperature: float = 0.0):
        """Run a single call through the executor (raises on failure)."""
        return self.run(client, [FMRequest(prompt, temperature)])[0].unwrap()

    # ------------------------------------------------------------------
    def _attempt(self, client: "FMClient", request: FMRequest, state: object) -> FMResult:
        """One request through the retry loop (no ledger side effects).

        The submission-order *state* is consumed by the first attempt;
        retries reserve fresh state (only reachable for clients that
        raise, which the deterministic backends never do).

        Retry sleeps are charged to the client's wait accounting (and so
        to the budget's latency axis) *before* they are slept — a 429
        storm's dead time is spend, and ``max_latency_s`` must meter it.
        A wait that trips the budget is returned as this request's error
        (budget errors are never retried) instead of being slept at all.
        """
        attempt = 1
        while True:
            try:
                text = client._complete_with_state(
                    request.prompt, request.temperature, state
                )
                response = client.build_response(request.prompt, text)
                self._observe_outcome(None)
                return FMResult(request=request, response=response, attempts=attempt)
            except Exception as exc:  # noqa: BLE001 - surfaced via FMResult
                self._observe_outcome(exc)
                if not self.should_retry_error(exc, attempt):
                    return FMResult(request=request, error=exc, attempts=attempt)
                delay = self.retry.delay_for(exc, attempt)
                attempt += 1
                if delay > 0:
                    try:
                        client.ledger.record_wait(delay)
                    except FMBudgetExceededError as budget_exc:
                        return FMResult(
                            request=request, error=budget_exc, attempts=attempt - 1
                        )
                    time.sleep(delay)
                state = client._reserve_state(request.prompt, request.temperature)

    def should_retry_error(self, error: Exception, attempt: int) -> bool:
        return self.retry.should_retry(error, attempt)

    # ------------------------------------------------------------------
    def _hedging_active(self, client: "FMClient") -> bool:
        """Hedging applies only to stateless clients: re-sending a call
        that consumes client state (a counter, a cursor) would double-
        consume it and break the submission-order reservation contract —
        so seeded deterministic clients never see a hedge."""
        return self.hedge is not None and client.is_stateless()

    def _run_one(self, client: "FMClient", request: FMRequest, state: object) -> FMResult:
        """One logical request: adaptive admission, then (hedged) attempt.

        This is what the serial loop and the thread-pool workers call.
        The gate bounds *logical* calls; a hedge shadow rides its
        primary's slot (bounded over-commit of one duplicate per armed
        hedge — the point is to spend a little extra capacity rescuing
        the tail).
        """
        gate = self._thread_gate()
        if gate is None:
            return self._attempt_maybe_hedged(client, request, state)
        with gate:
            return self._attempt_maybe_hedged(client, request, state)

    def _thread_gate(self) -> ConcurrencyGate | None:
        """The adaptive admission gate for thread-backed dispatch, if any
        (subclasses with real fan-out create one; serial needs none)."""
        return None

    def _attempt_maybe_hedged(
        self, client: "FMClient", request: FMRequest, state: object
    ) -> FMResult:
        if not self._hedging_active(client):
            return self._attempt(client, request, state)
        assert self.hedge is not None
        delay = self.hedge.delay_s(self.hedge_tracker)
        if delay is None:
            # Cold start with no fallback delay: run plain, feed the tracker.
            started = time.monotonic()
            result = self._attempt(client, request, state)
            if result.ok:
                self.hedge_tracker.observe(time.monotonic() - started)
            return result
        pool = self._ensure_hedge_pool()

        def timed() -> tuple[FMResult, float]:
            started = time.monotonic()
            outcome = self._attempt(client, request, state)
            return outcome, time.monotonic() - started

        primary = pool.submit(timed)
        done, _ = concurrent.futures.wait([primary], timeout=delay)
        if primary in done:
            result, elapsed = primary.result()
            if result.ok:
                self.hedge_tracker.observe(elapsed)
            return result
        # The primary outlived the armed quantile: issue the duplicate
        # and take whichever lands first.
        shadow = pool.submit(timed)
        with self._account_lock:
            self.stats.hedges_issued += 1
        client.ledger.record_hedge_issued()
        done, pending = concurrent.futures.wait(
            [primary, shadow], return_when=concurrent.futures.FIRST_COMPLETED
        )
        winner = primary if primary in done else shadow
        loser = shadow if winner is primary else primary
        if winner is shadow:
            with self._account_lock:
                self.stats.hedges_won += 1
        if loser.done():
            self._settle_hedge_loser(client, loser)
        else:
            # A blocking call cannot be interrupted; abandon the loser —
            # its result never reaches _finish_batch, so the ledger's
            # main totals see exactly one result per logical request.
            loser.add_done_callback(
                lambda future: self._settle_hedge_loser(client, future)
            )
        result, elapsed = winner.result()
        if result.ok:
            self.hedge_tracker.observe(elapsed)
        return result

    @staticmethod
    def _settle_hedge_loser(client: "FMClient", future) -> None:
        wasted = 0.0
        if not future.cancelled():
            try:
                outcome, _ = future.result()
            except BaseException:  # noqa: BLE001 - loser accounting only
                outcome = None
            if outcome is not None and outcome.ok:
                wasted = outcome.response.cost_usd
        client.ledger.record_hedge_abandoned(wasted)

    # ------------------------------------------------------------------
    def _prepare_batch(
        self, client: "FMClient", requests: list[FMRequest]
    ) -> tuple[list[FMResult | None], list[tuple[int, FMRequest, object]]]:
        """Phase 1 of the batch-backend contract, on the calling thread
        in submission order: serve cache hits, run the one-shot budget
        pre-flight before the first uncached request, and reserve every
        remaining request's per-call client state up front.  This single
        implementation is what keeps the thread-pool and async backends
        bit-identical on seeded clients.  (SerialExecutor reserves
        lazily, one request at a time, and does not use it.)
        """
        budget_checked = False
        results: list[FMResult | None] = [None] * len(requests)
        pending: list[tuple[int, FMRequest, object]] = []
        for index, request in enumerate(requests):
            cached = client._cache_get(request.prompt, request.temperature)
            if cached is not None:
                client._on_cache_hit(request.prompt, request.temperature)
                results[index] = FMResult(request=request, response=cached, cached=True)
            else:
                if not budget_checked:
                    client.ledger.check_budget()
                    budget_checked = True
                state = client._reserve_state(request.prompt, request.temperature)
                pending.append((index, request, state))
        return results, pending

    # ------------------------------------------------------------------
    def _finish_batch(
        self, client: "FMClient", results: list[FMResult], started_at: float | None = None
    ) -> list[FMResult]:
        """Record ledger/cache entries and stats in submission order.

        A budget that trips mid-batch is re-raised only after every
        executed call has been accounted for — the calls already
        happened, so the ledger and stats must reflect them exactly.

        The whole pass holds the executor's accounting lock: physically
        overlapped stages finish batches from several threads, and stats
        plus the batch log must stay coherent under that interleaving.
        """
        budget_error: FMBudgetExceededError | None = None
        latencies: list[float] = []
        cost_usd = 0.0
        n_cached = 0
        n_errors = 0
        with self._account_lock:
            for result in results:
                self.stats.n_retries += result.attempts - 1
                if result.cached:
                    self.stats.cache_hits += 1
                    n_cached += 1
                    client.ledger.record_cache_hit()
                    continue
                if result.ok:
                    response = result.response
                    try:
                        client.ledger.record(result.request.prompt, response)
                    except FMBudgetExceededError as exc:
                        budget_error = budget_error or exc
                    client._cache_put(
                        result.request.prompt, result.request.temperature, response
                    )
                    latencies.append(response.latency_s)
                    cost_usd += response.cost_usd
                    self.stats.n_calls += 1
                    self.stats.summed_latency_s += response.latency_s
                else:
                    self.stats.n_errors += 1
                    n_errors += 1
            self.stats.n_batches += 1
            batch_critical = critical_path_seconds(latencies, self.concurrency)
            self.stats.critical_path_s += batch_critical
            self.batch_log.append(
                BatchRecord(
                    stage=self._stage_tag,
                    model=client.model,
                    n_calls=len(latencies),
                    n_cached=n_cached,
                    n_errors=n_errors,
                    summed_latency_s=sum(latencies),
                    critical_path_s=batch_critical,
                    wall_s=(
                        time.perf_counter() - started_at
                        if started_at is not None
                        else 0.0
                    ),
                    cost_usd=cost_usd,
                )
            )
        if budget_error is not None:
            raise budget_error
        return results


class SerialExecutor(FMExecutor):
    """One blocking call at a time — the paper's (and the seed's) loop."""

    concurrency = 1

    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        # Budget is enforced at batch granularity — one pre-flight check
        # before the batch's *first real call* (cache hits are free, so a
        # fully-cached batch is served even after exhaustion), plus a
        # post-hoc raise if the batch crossed the line — so serial and
        # threaded backends issue exactly the same calls.
        started = time.perf_counter()
        budget_checked = False
        results: list[FMResult] = []
        for request in requests:
            cached = client._cache_get(request.prompt, request.temperature)
            if cached is not None:
                client._on_cache_hit(request.prompt, request.temperature)
                results.append(FMResult(request=request, response=cached, cached=True))
                continue
            if not budget_checked:
                client.ledger.check_budget()
                budget_checked = True
            state = client._reserve_state(request.prompt, request.temperature)
            results.append(self._run_one(client, request, state))
        return self._finish_batch(client, results, started_at=started)


class ThreadPoolFMExecutor(FMExecutor):
    """Bounded thread-pool fan-out with deterministic state assignment.

    One pool is created lazily and reused for the executor's lifetime;
    it is torn down by :meth:`close` (or interpreter exit).
    """

    def __init__(
        self,
        concurrency: int = 8,
        retry: RetryPolicy | None = None,
        adaptive: AIMDController | bool | None = None,
        hedge: HedgePolicy | None = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        # Set before super().__init__ so adaptive=True sizes its ceiling
        # (and the hedge pool its workers) to the real fan-out bound.
        self.concurrency = concurrency
        super().__init__(retry=retry, adaptive=adaptive, hedge=hedge)
        self._gate = ConcurrencyGate(self.adaptive) if self.adaptive else None
        self._pool: ThreadPoolExecutor | None = None
        # Physically overlapped stages call run() concurrently; pool
        # creation and teardown must not race.
        self._pool_lock = threading.Lock()

    def _thread_gate(self) -> ConcurrencyGate | None:
        return self._gate

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.concurrency, thread_name_prefix="fm-executor"
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._close_hedge_pool()

    def __enter__(self) -> "ThreadPoolFMExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        # Phase 1 (main thread, submission order): see _prepare_batch —
        # this is what keeps seeded clients deterministic regardless of
        # thread scheduling.
        started = time.perf_counter()
        results, pending = self._prepare_batch(client, requests)
        # Phase 2: fan out the uncached calls.  A batch of one (single
        # proposal calls, repairs, removal prompts) runs inline — no
        # point paying a thread hand-off for zero parallelism.
        if len(pending) == 1:
            index, request, state = pending[0]
            results[index] = self._run_one(client, request, state)
        elif pending:
            pool = self._ensure_pool()
            futures = [
                (index, pool.submit(self._run_one, client, request, state))
                for index, request, state in pending
            ]
            for index, future in futures:
                results[index] = future.result()
        # Phase 3 (main thread, submission order): ledger + stats.
        final = [result for result in results if result is not None]
        assert len(final) == len(requests)
        return self._finish_batch(client, final, started_at=started)


class AsyncFMExecutor(FMExecutor):
    """``asyncio`` fan-out on an event loop the executor owns.

    The loop runs on one dedicated daemon thread, created lazily on the
    first batch and torn down by :meth:`close` (idempotent; the executor
    is reusable afterwards — the next batch starts a fresh loop).
    Because the loop is private, ``run()`` works from any thread,
    including threads that already have a running event loop of their
    own, and several threads may run batches concurrently — in-flight
    requests across all of them share one semaphore bounded by
    ``concurrency``.  This is what lets the stage scheduler physically
    fan independent stages out through a single shared backend.

    The determinism contract is the thread-pool executor's: cache
    lookups, the budget pre-flight check, and per-call state reservation
    happen on the *calling* thread in submission order before anything is
    dispatched, and ledger recording happens on the calling thread in
    submission order after the batch completes.  Seeded clients are
    therefore bit-identical across serial, threaded, and async backends.

    Clients that implement the coroutine path
    (:meth:`~repro.fm.base.FMClient._acomplete_with_state`, e.g.
    :class:`~repro.fm.transport.TransportFMClient`) overlap their waits
    on the loop itself; plain synchronous clients fall back to the base
    implementation, which offloads the blocking call to the loop's
    default thread pool — still concurrent, just thread-backed.  Note
    the fallback's cancellation caveat: a cancelled coroutine abandons
    its worker thread, it cannot interrupt the blocking call itself.
    """

    def __init__(
        self,
        concurrency: int = 8,
        retry: RetryPolicy | None = None,
        adaptive: AIMDController | bool | None = None,
        hedge: HedgePolicy | None = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        # Set before super().__init__ so adaptive=True sizes its ceiling
        # to the real fan-out bound.
        self.concurrency = concurrency
        super().__init__(retry=retry, adaptive=adaptive, hedge=hedge)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._limiter: asyncio.Semaphore | AsyncConcurrencyGate | None = None
        self._lifecycle = threading.Lock()
        # Batch futures whose run() is still blocked on them; close()
        # cancels any that the loop drain could not resolve (a submission
        # racing the shutdown may never get its task created).
        self._pending: set[concurrent.futures.Future] = set()

    # ------------------------------------------------------------------
    # Event-loop lifecycle
    # ------------------------------------------------------------------
    def _ensure_loop(
        self,
    ) -> tuple[asyncio.AbstractEventLoop, "asyncio.Semaphore | AsyncConcurrencyGate"]:
        with self._lifecycle:
            return self._ensure_loop_locked()

    def _ensure_loop_locked(
        self,
    ) -> tuple[asyncio.AbstractEventLoop, "asyncio.Semaphore | AsyncConcurrencyGate"]:
        if self._loop is None:
            loop = asyncio.new_event_loop()
            ready = threading.Event()
            thread = threading.Thread(
                target=self._loop_main,
                args=(loop, ready),
                name="fm-async-executor",
                daemon=True,
            )
            thread.start()
            ready.wait()
            self._loop = loop
            self._thread = thread
            # Binds to the loop on first await (3.10+ semantics); a
            # fresh loop after close() gets a fresh limiter.  With an
            # adaptive controller the fixed semaphore becomes an
            # AIMD-driven admission gate (same async-with surface).
            if self.adaptive is not None:
                self._limiter = AsyncConcurrencyGate(self.adaptive)
            else:
                self._limiter = asyncio.Semaphore(self.concurrency)
        assert self._limiter is not None
        return self._loop, self._limiter

    def _submit(self, client: "FMClient", pending) -> concurrent.futures.Future:
        """Create (if needed) the loop and submit one batch, atomically
        with respect to :meth:`close` — either the batch lands on a loop
        close() has not stopped yet (the drain, or failing that close()'s
        future sweep, resolves it), or on a fresh loop created after the
        close.  Either way the returned future always resolves."""
        with self._lifecycle:
            loop, limiter = self._ensure_loop_locked()
            future = asyncio.run_coroutine_threadsafe(
                self._run_batch(client, pending, limiter), loop
            )
            self._pending.add(future)
            return future

    def _loop_main(self, loop: asyncio.AbstractEventLoop, ready: threading.Event) -> None:
        asyncio.set_event_loop(loop)
        # Sync clients fall back to run_in_executor(None, ...); size the
        # loop's default pool to the executor's own bound, or a small
        # machine's cpu+4 default would silently cap effective fan-out
        # below the semaphore.  The drain's shutdown_default_executor()
        # tears it down.
        loop.set_default_executor(
            ThreadPoolExecutor(
                max_workers=self.concurrency, thread_name_prefix="fm-async-worker"
            )
        )
        loop.call_soon(ready.set)
        try:
            loop.run_forever()
        finally:
            # Drain: whatever close() interrupted gets cancelled and
            # awaited, so no in-flight request outlives the executor.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            asyncio.set_event_loop(None)
            loop.close()

    def close(self) -> None:
        """Stop the loop, cancel in-flight requests, join the thread.

        Idempotent; a later :meth:`run` starts a fresh loop.  Batches
        blocked in :meth:`run` on other threads raise
        :class:`~repro.fm.errors.FMError` once their tasks are cancelled.
        """
        with self._lifecycle:
            loop, thread = self._loop, self._thread
            self._loop = self._thread = self._limiter = None
            stale = list(self._pending)
            self._pending.clear()
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join()
        # A submission that raced the stop may have landed in the
        # callback queue after the drain snapshotted its tasks — its
        # batch future would never resolve and the waiting run() would
        # block forever.  Cancelling here wakes every such waiter (a
        # no-op for futures the drain already resolved).
        for future in stale:
            future.cancel()
        self._close_hedge_pool()

    def __enter__(self) -> "AsyncFMExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        # Phase 1 (calling thread, submission order): _prepare_batch —
        # the same cache/budget/reservation contract as the thread pool.
        started = time.perf_counter()
        results, pending = self._prepare_batch(client, requests)
        # Phase 2: fan the uncached calls out on the owned loop and block
        # until the whole batch resolves.
        if pending:
            future = self._submit(client, pending)
            try:
                outcomes = future.result()
            except (asyncio.CancelledError, concurrent.futures.CancelledError):
                raise FMError(
                    "async executor closed while a batch was in flight"
                ) from None
            finally:
                with self._lifecycle:
                    self._pending.discard(future)
            for (index, _, _), outcome in zip(pending, outcomes):
                results[index] = outcome
        # Phase 3 (calling thread, submission order): ledger + stats.
        final = [result for result in results if result is not None]
        assert len(final) == len(requests)
        return self._finish_batch(client, final, started_at=started)

    async def _run_batch(
        self,
        client: "FMClient",
        pending: list[tuple[int, FMRequest, object]],
        limiter: "asyncio.Semaphore | AsyncConcurrencyGate",
    ) -> list[FMResult]:
        # Async-aware budget re-check on the loop side: with physically
        # overlapped stages another batch may have exhausted the shared
        # budget between this batch's submission and its dispatch.  On a
        # single-dispatch (sequential) run the phase-1 check already
        # passed and budget state cannot have changed, so this repeat is
        # a no-op — backend equivalence on seeded clients is preserved.
        await client.ledger.acheck_budget()
        tasks = [
            asyncio.create_task(
                self._attempt_async(client, request, state, limiter),
                name=f"fm-call-{index}",
            )
            for index, request, state in pending
        ]
        return await asyncio.gather(*tasks)

    async def _attempt_async(
        self,
        client: "FMClient",
        request: FMRequest,
        state: object,
        limiter: "asyncio.Semaphore | AsyncConcurrencyGate",
    ) -> FMResult:
        """One logical request: admission, then a (possibly hedged) attempt.

        The limiter bounds *logical* calls; as in the sync path, a hedge
        shadow rides its primary's slot (bounded over-commit of one
        duplicate per armed hedge).
        """
        async with limiter:
            if self._hedging_active(client):
                return await self._attempt_async_hedged(client, request, state)
            return await self._attempt_async_plain(client, request, state)

    async def _attempt_async_plain(
        self, client: "FMClient", request: FMRequest, state: object
    ) -> FMResult:
        """One request through the retry loop, without blocking the loop.

        Mirrors :meth:`FMExecutor._attempt`: the reserved *state* feeds
        the first attempt; retries honour the server's ``Retry-After``
        hint (else the computed backoff) via ``asyncio.sleep``, then
        reserve fresh state.  Retry sleeps are charged to the ledger's
        wait accounting before they are slept, exactly as in the sync
        loop; a wait that trips the budget becomes the request's error.
        Cancellation propagates — the surrounding batch translates it
        into a clean executor-closed error.
        """
        attempt = 1
        while True:
            try:
                text = await client._acomplete_with_state(
                    request.prompt, request.temperature, state
                )
                response = client.build_response(request.prompt, text)
                self._observe_outcome(None)
                return FMResult(request=request, response=response, attempts=attempt)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - surfaced via FMResult
                self._observe_outcome(exc)
                if not self.should_retry_error(exc, attempt):
                    return FMResult(request=request, error=exc, attempts=attempt)
                delay = self.retry.delay_for(exc, attempt)
                attempt += 1
                if delay > 0:
                    try:
                        client.ledger.record_wait(delay)
                    except FMBudgetExceededError as budget_exc:
                        return FMResult(
                            request=request, error=budget_exc, attempts=attempt - 1
                        )
                    await asyncio.sleep(delay)
                state = client._reserve_state(request.prompt, request.temperature)

    async def _attempt_async_hedged(
        self, client: "FMClient", request: FMRequest, state: object
    ) -> FMResult:
        """The hedged race on the loop: primary task, quantile-armed
        shadow task, first completion wins, loser *cancelled* (the async
        path can actually interrupt its loser, unlike the sync pool).
        The loser's outcome — if it completed before cancellation — is
        tallied only in the ledger's hedge counters, never its main
        totals, preserving one-result-per-logical-request."""
        assert self.hedge is not None
        loop = asyncio.get_running_loop()

        async def timed() -> tuple[FMResult, float]:
            started = loop.time()
            outcome = await self._attempt_async_plain(client, request, state)
            return outcome, loop.time() - started

        delay = self.hedge.delay_s(self.hedge_tracker)
        if delay is None:
            # Cold start with no fallback delay: run plain, feed the tracker.
            started = loop.time()
            result = await self._attempt_async_plain(client, request, state)
            if result.ok:
                self.hedge_tracker.observe(loop.time() - started)
            return result
        primary = asyncio.ensure_future(timed())
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if primary in done:
            result, elapsed = primary.result()
            if result.ok:
                self.hedge_tracker.observe(elapsed)
            return result
        # The primary outlived the armed quantile: issue the duplicate
        # and take whichever lands first.
        shadow = asyncio.ensure_future(timed())
        with self._account_lock:
            self.stats.hedges_issued += 1
        client.ledger.record_hedge_issued()
        done, _ = await asyncio.wait(
            {primary, shadow}, return_when=asyncio.FIRST_COMPLETED
        )
        winner = primary if primary in done else shadow
        loser = shadow if winner is primary else primary
        if winner is shadow:
            with self._account_lock:
                self.stats.hedges_won += 1
        if not loser.done():
            loser.cancel()
            # gather(return_exceptions=True) swallows the loser's
            # CancelledError without masking cancellation of *this* task.
            await asyncio.gather(loser, return_exceptions=True)
        wasted = 0.0
        if loser.done() and not loser.cancelled() and loser.exception() is None:
            outcome, _ = loser.result()
            if outcome.ok:
                wasted = outcome.response.cost_usd
        client.ledger.record_hedge_abandoned(wasted)
        result, elapsed = winner.result()
        if result.ok:
            self.hedge_tracker.observe(elapsed)
        return result
