"""The FM execution layer: one concurrency contract for every client.

SMARTFEAT's interactions are feature-level, and most of them are
independent of one another: the unary proposals for different attributes,
the i.i.d. samples of one sampling wave, and the first-attempt function
generations for a wave's surviving candidates share no state.  An
:class:`FMExecutor` runs such a batch of :class:`FMRequest` records
against one :class:`~repro.fm.base.FMClient` and returns per-request
:class:`FMResult` records, with two backends:

:class:`SerialExecutor`
    One blocking call at a time (the seed behaviour).
:class:`ThreadPoolFMExecutor`
    Bounded thread-pool fan-out.  Determinism is preserved by reserving
    each request's per-call client state (the simulator's sampling
    counter, a scripted client's cursor) in submission order *before*
    any thread runs, and by recording ledger entries in submission order
    after all threads finish.  A batch therefore produces byte-identical
    responses and ledger totals under either backend.

Both backends apply a per-call :class:`RetryPolicy` and accumulate
:class:`ExecutionStats`, which separates **summed latency** (what the
calls cost — the accounting view) from **critical-path latency** (how
long the batch takes on the wall clock under bounded concurrency).
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fm.cost import critical_path_seconds
from repro.fm.errors import FMBudgetExceededError, FMError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fm.base import FMClient, FMResponse

__all__ = [
    "BatchRecord",
    "ExecutionStats",
    "FMExecutor",
    "FMRequest",
    "FMResult",
    "RetryPolicy",
    "SerialExecutor",
    "ThreadPoolFMExecutor",
]


@dataclass(frozen=True)
class FMRequest:
    """One completion to run: prompt text plus sampling temperature."""

    prompt: str
    temperature: float = 0.0


@dataclass
class FMResult:
    """Outcome of one request: a response, or the exception it raised."""

    request: FMRequest
    response: "FMResponse | None" = None
    error: Exception | None = None
    cached: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.response is not None

    def unwrap(self) -> "FMResponse":
        """The response, re-raising the recorded error on failure."""
        if self.response is None:
            assert self.error is not None
            raise self.error
        return self.response


@dataclass(frozen=True)
class RetryPolicy:
    """Per-call retry behaviour.

    ``max_attempts`` counts the first try; the default of 1 disables
    retries (deterministic clients gain nothing from them).  Only
    exceptions matching ``retry_on`` are retried — parse-level failures
    happen downstream of the client and never reach the executor, and
    :class:`~repro.fm.errors.FMBudgetExceededError` is never retried
    (retrying only spends more of an already-exhausted budget).

    ``backoff_s`` is the sleep before the second attempt; each further
    attempt multiplies it by ``backoff_multiplier`` (2.0 gives the
    classic exponential schedule HTTP 429 handling wants), capped at
    ``max_backoff_s``.  The defaults keep simulated backends at zero
    sleep.
    """

    max_attempts: int = 1
    retry_on: tuple[type[Exception], ...] = (FMError,)
    backoff_s: float = 0.0
    backoff_multiplier: float = 1.0
    max_backoff_s: float | None = None

    def should_retry(self, error: Exception, attempt: int) -> bool:
        if isinstance(error, FMBudgetExceededError):
            return False
        return attempt < self.max_attempts and isinstance(error, self.retry_on)

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt number *attempt* (1-based)."""
        delay = self.backoff_s * (self.backoff_multiplier ** (attempt - 1))
        if self.max_backoff_s is not None:
            delay = min(delay, self.max_backoff_s)
        return delay


@dataclass(frozen=True)
class BatchRecord:
    """Accounting for one executed batch, attributed to a pipeline stage.

    ``stage`` is whatever scope the caller opened with
    :meth:`FMExecutor.stage` (the stage-graph scheduler tags every batch
    a stage node dispatches with the node's name; untagged batches record
    ``None``).  The stage scheduler sums these records per node to report
    per-stage FM spend and modelled critical path — the submission
    interleaving across stages stays visible in one ordered log.
    """

    stage: str | None
    model: str
    n_calls: int
    n_cached: int
    n_errors: int
    summed_latency_s: float
    critical_path_s: float
    #: Real elapsed seconds the run() call took (0.0 when unmeasured) —
    #: lets schedule accounting separate time *blocked in the executor*
    #: from a stage's own data-plane work.
    wall_s: float = 0.0


@dataclass
class ExecutionStats:
    """Cumulative accounting across every batch an executor has run.

    ``summed_latency_s`` adds up each executed call's modelled latency —
    the cost-accounting view, identical under any backend.
    ``critical_path_s`` is the modelled wall-clock: per batch, the
    makespan of scheduling the calls' latencies onto ``concurrency``
    workers in submission order.  Cache hits cost nothing on either axis.
    """

    n_batches: int = 0
    n_calls: int = 0
    n_errors: int = 0
    n_retries: int = 0
    cache_hits: int = 0
    summed_latency_s: float = 0.0
    critical_path_s: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "n_batches": self.n_batches,
            "n_calls": self.n_calls,
            "n_errors": self.n_errors,
            "n_retries": self.n_retries,
            "cache_hits": self.cache_hits,
            "summed_latency_s": round(self.summed_latency_s, 3),
            "critical_path_s": round(self.critical_path_s, 3),
        }


class FMExecutor(abc.ABC):
    """Runs batches of FM requests under one concurrency contract."""

    #: Number of calls that may be in flight at once.
    concurrency: int = 1

    def __init__(self, retry: RetryPolicy | None = None) -> None:
        self.retry = retry or RetryPolicy()
        self.stats = ExecutionStats()
        #: Ordered per-batch accounting (one BatchRecord per run() call).
        #: Grows with the executor's lifetime; pipeline runs create
        #: per-instance executors, so the log stays run-sized in practice.
        self.batch_log: list[BatchRecord] = []
        self._stage_slot = threading.local()

    @property
    def _stage_tag(self) -> str | None:
        return getattr(self._stage_slot, "tag", None)

    @contextmanager
    def stage(self, tag: str):
        """Attribute every batch finished inside this scope to *tag*.

        The scope is thread-local: a run() call is tagged with the scope
        open on *its* dispatching thread, so two pipeline runs sharing
        one executor from different threads cannot cross-tag each
        other's batches.  Scopes nest, restoring the enclosing tag on
        exit.
        """
        previous = self._stage_tag
        self._stage_slot.tag = tag
        try:
            yield self
        finally:
            self._stage_slot.tag = previous

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        """Execute *requests* against *client*, preserving request order."""

    def complete(self, client: "FMClient", prompt: str, temperature: float = 0.0):
        """Run a single call through the executor (raises on failure)."""
        return self.run(client, [FMRequest(prompt, temperature)])[0].unwrap()

    # ------------------------------------------------------------------
    def _attempt(self, client: "FMClient", request: FMRequest, state: object) -> FMResult:
        """One request through the retry loop (no ledger side effects).

        The submission-order *state* is consumed by the first attempt;
        retries reserve fresh state (only reachable for clients that
        raise, which the deterministic backends never do).
        """
        attempt = 1
        while True:
            try:
                text = client._complete_with_state(
                    request.prompt, request.temperature, state
                )
                response = client.build_response(request.prompt, text)
                return FMResult(request=request, response=response, attempts=attempt)
            except Exception as exc:  # noqa: BLE001 - surfaced via FMResult
                if not self.should_retry_error(exc, attempt):
                    return FMResult(request=request, error=exc, attempts=attempt)
                delay = self.retry.backoff_for(attempt)
                attempt += 1
                if delay > 0:
                    time.sleep(delay)
                state = client._reserve_state(request.prompt, request.temperature)

    def should_retry_error(self, error: Exception, attempt: int) -> bool:
        return self.retry.should_retry(error, attempt)

    # ------------------------------------------------------------------
    def _finish_batch(
        self, client: "FMClient", results: list[FMResult], started_at: float | None = None
    ) -> list[FMResult]:
        """Record ledger/cache entries and stats in submission order.

        A budget that trips mid-batch is re-raised only after every
        executed call has been accounted for — the calls already
        happened, so the ledger and stats must reflect them exactly.
        """
        budget_error: FMBudgetExceededError | None = None
        latencies: list[float] = []
        n_cached = 0
        n_errors = 0
        for result in results:
            self.stats.n_retries += result.attempts - 1
            if result.cached:
                self.stats.cache_hits += 1
                n_cached += 1
                client.ledger.record_cache_hit()
                continue
            if result.ok:
                response = result.response
                try:
                    client.ledger.record(result.request.prompt, response)
                except FMBudgetExceededError as exc:
                    budget_error = budget_error or exc
                client._cache_put(
                    result.request.prompt, result.request.temperature, response
                )
                latencies.append(response.latency_s)
                self.stats.n_calls += 1
                self.stats.summed_latency_s += response.latency_s
            else:
                self.stats.n_errors += 1
                n_errors += 1
        self.stats.n_batches += 1
        batch_critical = critical_path_seconds(latencies, self.concurrency)
        self.stats.critical_path_s += batch_critical
        self.batch_log.append(
            BatchRecord(
                stage=self._stage_tag,
                model=client.model,
                n_calls=len(latencies),
                n_cached=n_cached,
                n_errors=n_errors,
                summed_latency_s=sum(latencies),
                critical_path_s=batch_critical,
                wall_s=(
                    time.perf_counter() - started_at if started_at is not None else 0.0
                ),
            )
        )
        if budget_error is not None:
            raise budget_error
        return results


class SerialExecutor(FMExecutor):
    """One blocking call at a time — the paper's (and the seed's) loop."""

    concurrency = 1

    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        # Budget is enforced at batch granularity — one pre-flight check
        # before the batch's *first real call* (cache hits are free, so a
        # fully-cached batch is served even after exhaustion), plus a
        # post-hoc raise if the batch crossed the line — so serial and
        # threaded backends issue exactly the same calls.
        started = time.perf_counter()
        budget_checked = False
        results: list[FMResult] = []
        for request in requests:
            cached = client._cache_get(request.prompt, request.temperature)
            if cached is not None:
                client._on_cache_hit(request.prompt, request.temperature)
                results.append(FMResult(request=request, response=cached, cached=True))
                continue
            if not budget_checked:
                client.ledger.check_budget()
                budget_checked = True
            state = client._reserve_state(request.prompt, request.temperature)
            results.append(self._attempt(client, request, state))
        return self._finish_batch(client, results, started_at=started)


class ThreadPoolFMExecutor(FMExecutor):
    """Bounded thread-pool fan-out with deterministic state assignment.

    One pool is created lazily and reused for the executor's lifetime;
    it is torn down by :meth:`close` (or interpreter exit).
    """

    def __init__(self, concurrency: int = 8, retry: RetryPolicy | None = None) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        super().__init__(retry=retry)
        self.concurrency = concurrency
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.concurrency, thread_name_prefix="fm-executor"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadPoolFMExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, client: "FMClient", requests: list[FMRequest]) -> list[FMResult]:
        # Same batch-granular budget contract as SerialExecutor.run: the
        # check runs once, before the first uncached request reserves
        # state, so fully-cached batches stay free after exhaustion.
        started = time.perf_counter()
        budget_checked = False
        results: list[FMResult | None] = [None] * len(requests)
        pending: list[tuple[int, FMRequest, object]] = []
        # Phase 1 (main thread, submission order): cache lookups and
        # per-call state reservation.  This is what keeps seeded clients
        # deterministic regardless of thread scheduling.
        for index, request in enumerate(requests):
            cached = client._cache_get(request.prompt, request.temperature)
            if cached is not None:
                client._on_cache_hit(request.prompt, request.temperature)
                results[index] = FMResult(request=request, response=cached, cached=True)
            else:
                if not budget_checked:
                    client.ledger.check_budget()
                    budget_checked = True
                state = client._reserve_state(request.prompt, request.temperature)
                pending.append((index, request, state))
        # Phase 2: fan out the uncached calls.  A batch of one (single
        # proposal calls, repairs, removal prompts) runs inline — no
        # point paying a thread hand-off for zero parallelism.
        if len(pending) == 1:
            index, request, state = pending[0]
            results[index] = self._attempt(client, request, state)
        elif pending:
            pool = self._ensure_pool()
            futures = [
                (index, pool.submit(self._attempt, client, request, state))
                for index, request, state in pending
            ]
            for index, future in futures:
                results[index] = future.result()
        # Phase 3 (main thread, submission order): ledger + stats.
        final = [result for result in results if result is not None]
        assert len(final) == len(requests)
        return self._finish_batch(client, final, started_at=started)
