"""Hedged requests: duplicate the slow tail, keep the first answer.

A sampling wave's makespan is its slowest call; against a real provider
the p99 call is routinely 10× the median (a cold shard, a bad pop, a GC
pause server-side).  The classic tail-latency remedy (Dean & Barroso,
"The Tail at Scale") is to *hedge*: once a call has outlived a high
quantile of observed latency, issue a duplicate and take whichever
answer lands first.

:class:`HedgePolicy`
    Configuration: which latency quantile arms the hedge, how many
    observations the estimate needs before quantiles are trusted, and a
    fixed fallback delay for the cold start.
:class:`LatencyTracker`
    A bounded, thread-safe reservoir of observed call latencies and the
    quantile estimate over it.

The executors only hedge calls against **stateless** clients
(:meth:`~repro.fm.base.FMClient.is_stateless`): a hedge is a second
physical send of the *same* logical call, which is only well-defined
when completing a call consumes no per-call client state.  Seeded
deterministic clients (simulator counter, scripted cursor) therefore
never see a hedge — enabling hedging cannot perturb their
submission-order reservation contract, which is what keeps the
serial == thread == async identity suites green with hedging on.

Exactly one :class:`~repro.fm.executor.FMResult` per logical request
reaches the ledger: the loser is abandoned (sync) or cancelled (async)
and its response — if it ever materialises — is tallied only in the
ledger's dedicated hedge counters, never in ``n_calls``/``cost_usd``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["HedgePolicy", "LatencyTracker"]


@dataclass(frozen=True)
class HedgePolicy:
    """When to issue a duplicate request.

    ``quantile`` of the observed latency distribution arms the hedge
    (0.95: only the slowest ~5% of calls ever pay for a duplicate).
    Until ``min_observations`` latencies have been seen the tracker has
    no trustworthy tail estimate; ``initial_delay_s`` bridges that cold
    start (``None`` disables hedging until the estimate warms up).
    ``min_delay_s`` floors the armed delay so a tight latency
    distribution cannot degenerate into hedging every call instantly.
    """

    quantile: float = 0.95
    min_observations: int = 10
    initial_delay_s: float | None = None
    min_delay_s: float = 0.001

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )

    def delay_s(self, tracker: "LatencyTracker") -> float | None:
        """Seconds to wait before hedging, or ``None`` (don't hedge)."""
        estimate = tracker.quantile(self.quantile, self.min_observations)
        if estimate is None:
            if self.initial_delay_s is None:
                return None
            return max(self.min_delay_s, self.initial_delay_s)
        return max(self.min_delay_s, estimate)


class LatencyTracker:
    """Bounded reservoir of observed per-call wall latencies.

    Keeps the most recent ``window`` observations (a deque, O(1) insert)
    so the estimate tracks the provider's *current* behaviour instead of
    averaging over a whole run.  Thread-safe: executors observe from
    worker threads and the async loop alike.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.n_observed = 0

    def observe(self, latency_s: float) -> None:
        if latency_s < 0:
            return
        with self._lock:
            self._window.append(latency_s)
            self.n_observed += 1

    def quantile(self, q: float, min_observations: int = 1) -> float | None:
        """The *q*-quantile of the window, or ``None`` below the floor.

        Nearest-rank on the sorted window — simple, monotone, and exact
        for the small windows involved.
        """
        with self._lock:
            if len(self._window) < min_observations:
                return None
            ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self) -> dict[str, float | int | None]:
        with self._lock:
            window = list(self._window)
        return {
            "n_observed": self.n_observed,
            "window": len(window),
            "p50": self._rank(window, 0.50),
            "p95": self._rank(window, 0.95),
        }

    @staticmethod
    def _rank(ordered_source: list[float], q: float) -> float | None:
        if not ordered_source:
            return None
        ordered = sorted(ordered_source)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return round(ordered[rank], 6)
