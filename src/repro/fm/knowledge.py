"""Open-world knowledge store: the simulator's stand-in for FM pre-training.

The paper's flagship extractor example derives *City Population Density*
from a city name — knowledge no traditional AFE tool has.  The store below
plays the role of the FM's encoded world knowledge.  Crucially, the
synthetic dataset generators draw on the *same* store when planting label
signal, so knowledge-based features genuinely correlate with the target
for the same mechanistic reason they do in the paper.

Topics are small curated tables plus a deterministic fallback estimator
("an FM's plausible guess") for unseen keys.
"""

from __future__ import annotations

import hashlib

__all__ = ["KnowledgeStore", "default_knowledge"]

#: people per square mile (approximate public figures).
CITY_POPULATION_DENSITY: dict[str, float] = {
    "SF": 18630.0,
    "San Francisco": 18630.0,
    "NYC": 29300.0,
    "New York": 29300.0,
    "LA": 8300.0,
    "Los Angeles": 8300.0,
    "SEA": 9000.0,
    "Seattle": 9000.0,
    "CHI": 11840.0,
    "Chicago": 11840.0,
    "HOU": 3600.0,
    "Houston": 3600.0,
    "PHX": 3100.0,
    "Phoenix": 3100.0,
    "PHL": 11700.0,
    "Philadelphia": 11700.0,
    "SD": 4300.0,
    "San Diego": 4300.0,
    "DAL": 3850.0,
    "Dallas": 3850.0,
    "AUS": 3000.0,
    "Austin": 3000.0,
    "DEN": 4700.0,
    "Denver": 4700.0,
    "BOS": 13900.0,
    "Boston": 13900.0,
    "MIA": 12600.0,
    "Miami": 12600.0,
    "ATL": 3700.0,
    "Atlanta": 3700.0,
    "POR": 4900.0,
    "Portland": 4900.0,
}

#: median household income, thousands of dollars (approximate).
CITY_MEDIAN_INCOME: dict[str, float] = {
    "SF": 126.0,
    "San Francisco": 126.0,
    "NYC": 75.0,
    "New York": 75.0,
    "LA": 70.0,
    "Los Angeles": 70.0,
    "SEA": 110.0,
    "Seattle": 110.0,
    "CHI": 66.0,
    "Chicago": 66.0,
    "HOU": 57.0,
    "Houston": 57.0,
    "PHX": 64.0,
    "Phoenix": 64.0,
    "PHL": 53.0,
    "Philadelphia": 53.0,
    "SD": 89.0,
    "San Diego": 89.0,
    "DAL": 58.0,
    "Dallas": 58.0,
    "AUS": 79.0,
    "Austin": 79.0,
    "DEN": 78.0,
    "Denver": 78.0,
    "BOS": 81.0,
    "Boston": 81.0,
    "MIA": 47.0,
    "Miami": 47.0,
    "ATL": 70.0,
    "Atlanta": 70.0,
    "POR": 76.0,
    "Portland": 76.0,
}

#: car make → (segment, typical insurance risk multiplier ≥ 1.0).
CAR_MAKE_RISK: dict[str, float] = {
    "Honda": 1.00,
    "Toyota": 0.95,
    "Ford": 1.15,
    "Chevrolet": 1.12,
    "BMW": 1.45,
    "Volkswagen": 1.05,
    "Mercedes": 1.40,
    "Audi": 1.38,
    "Subaru": 0.92,
    "Mazda": 0.98,
    "Nissan": 1.08,
    "Hyundai": 1.02,
    "Kia": 1.03,
    "Tesla": 1.30,
    "Dodge": 1.35,
    "Jeep": 1.18,
}

#: fraction of sporty/performance trims in the make's fleet.
CAR_MAKE_SPORTY: dict[str, float] = {
    "Honda": 0.15,
    "Toyota": 0.10,
    "Ford": 0.35,
    "Chevrolet": 0.30,
    "BMW": 0.55,
    "Volkswagen": 0.20,
    "Mercedes": 0.45,
    "Audi": 0.50,
    "Subaru": 0.25,
    "Mazda": 0.30,
    "Nissan": 0.25,
    "Hyundai": 0.15,
    "Kia": 0.15,
    "Tesla": 0.60,
    "Dodge": 0.60,
    "Jeep": 0.20,
}

#: domain-standard bucket boundaries an FM would recall.
DOMAIN_THRESHOLDS: dict[str, list[float]] = {
    "age_insurance": [0, 21, 25, 35, 50, 65, 120],
    "age_generic": [0, 18, 30, 45, 60, 75, 120],
    "bmi": [0, 18.5, 25, 30, 35, 100],
    "glucose": [0, 100, 126, 200, 500],
    "blood_pressure": [0, 80, 90, 120, 140, 250],
    "income_k": [0, 25, 50, 75, 100, 150, 10000],
}

_DATA_SOURCES: dict[str, list[str]] = {
    "city_population_density": [
        "US Census Bureau QuickFacts (census.gov/quickfacts)",
        "Simplemaps US Cities Database (simplemaps.com/data/us-cities)",
    ],
    "city_median_income": [
        "American Community Survey 5-year estimates (census.gov/programs-surveys/acs)",
    ],
    "car_make_risk": [
        "IIHS insurance loss tables (iihs.org/ratings/insurance-losses-by-make-and-model)",
    ],
    "weather_history": [
        "NOAA Climate Data Online (ncdc.noaa.gov/cdo-web)",
    ],
}


def _plausible_guess(topic: str, key: str, low: float, high: float) -> float:
    """Deterministic 'FM hallucination': a stable in-range value for unseen keys."""
    digest = hashlib.sha256(f"{topic}:{key}".encode()).digest()
    fraction = int.from_bytes(digest[:4], "big") / 2**32
    return low + fraction * (high - low)


class KnowledgeStore:
    """Queryable world knowledge with topic tables and guess fallbacks."""

    def __init__(self) -> None:
        self._tables: dict[str, dict[str, float]] = {
            "city_population_density": dict(CITY_POPULATION_DENSITY),
            "city_median_income": dict(CITY_MEDIAN_INCOME),
            "car_make_risk": dict(CAR_MAKE_RISK),
            "car_make_sporty": dict(CAR_MAKE_SPORTY),
        }
        self._guess_ranges: dict[str, tuple[float, float]] = {
            "city_population_density": (1500.0, 6000.0),
            "city_median_income": (45.0, 85.0),
            "car_make_risk": (0.9, 1.3),
            "car_make_sporty": (0.1, 0.5),
        }

    @property
    def topics(self) -> list[str]:
        return sorted(self._tables)

    def lookup(self, topic: str, key: str) -> float:
        """Exact table value, or a deterministic plausible guess for unseen keys."""
        if topic not in self._tables:
            raise KeyError(f"unknown knowledge topic: {topic!r}")
        table = self._tables[topic]
        if key in table:
            return table[key]
        low, high = self._guess_ranges[topic]
        return _plausible_guess(topic, key, low, high)

    def knows(self, topic: str, key: str) -> bool:
        """True when the value is curated rather than guessed."""
        return topic in self._tables and key in self._tables[topic]

    def mapping_for(self, topic: str, keys: list[str]) -> dict[str, float]:
        """A literal ``{key: value}`` mapping for *keys* — what the FM embeds
        in generated transformation code."""
        return {key: round(self.lookup(topic, key), 2) for key in keys}

    def default_for(self, topic: str) -> float:
        """A sensible default for keys not in a generated mapping."""
        low, high = self._guess_ranges[topic]
        return round((low + high) / 2.0, 2)

    def thresholds(self, domain: str) -> list[float]:
        """Domain-standard bucket boundaries (e.g. insurance age bands)."""
        if domain not in DOMAIN_THRESHOLDS:
            raise KeyError(f"unknown threshold domain: {domain!r}")
        return list(DOMAIN_THRESHOLDS[domain])

    def sources_for(self, topic: str) -> list[str]:
        """External data sources an FM would suggest for *topic*."""
        return list(_DATA_SOURCES.get(topic, ["Kaggle Datasets (kaggle.com/datasets)"]))


_DEFAULT = KnowledgeStore()


def default_knowledge() -> KnowledgeStore:
    """The shared knowledge store used by the simulator and the dataset
    generators (same world, same facts)."""
    return _DEFAULT
