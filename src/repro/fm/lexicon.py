"""Semantic column-role inference.

A foundation model reads a column name like ``Age of car`` or ``FSW.1`` and
brings world knowledge about what transformations make sense.  The
simulator's stand-in for that capability is a lexicon that maps column
names *and their data-card descriptions* to semantic roles; roles then
drive which operators the simulated FM proposes and with what parameters
(e.g. actuarial age bands for AGE, log-scaling for MONEY).

The lexicon deliberately works better with descriptions than with bare
abbreviated names — reproducing the paper's "Impact of Feature
Descriptions" finding that opaque names like ``FSW.1`` degrade output.
"""

from __future__ import annotations

import enum
import re

__all__ = ["ColumnRole", "infer_role", "tokenize_identifier"]


class ColumnRole(enum.Enum):
    """Semantic interpretation of a column, as an FM would perceive it."""

    AGE = "age"
    YEAR = "year"
    DATE = "date"
    DURATION = "duration"
    MONEY = "money"
    RATE = "rate"
    PERCENTAGE = "percentage"
    COUNT = "count"
    SCORE = "score"
    MEASUREMENT = "measurement"
    CITY = "city"
    REGION = "region"
    CATEGORY = "category"
    BINARY = "binary"
    IDENTIFIER = "identifier"
    TEXT = "text"
    VEHICLE = "vehicle"
    OCCUPATION = "occupation"
    EDUCATION = "education"
    SPECIES = "species"
    UNKNOWN = "unknown"


_ROLE_KEYWORDS: list[tuple[ColumnRole, tuple[str, ...]]] = [
    # Order matters: first match wins, most specific roles first.
    (ColumnRole.CITY, ("city", "town", "municipality", "metro")),
    (ColumnRole.REGION, ("state", "region", "county", "country", "zip", "postcode", "district", "neighborhood", "address", "location")),
    (ColumnRole.AGE, ("age",)),
    (ColumnRole.SPECIES, ("species", "breed", "variety", "strain")),
    (ColumnRole.VEHICLE, ("vehicle", "car", "make", "model of car", "automobile")),
    (ColumnRole.YEAR, ("year", "vintage", "yr")),
    (ColumnRole.DATE, ("date", "timestamp", "datetime", "day of", "birthdate", "dob")),
    (ColumnRole.DURATION, ("duration", "tenure", "months since", "days since", "length of stay", "elapsed")),
    (ColumnRole.MONEY, ("income", "price", "salary", "balance", "cost", "revenue", "amount", "loan", "wage", "fee", "value in dollars", "budget", "payment", "earnings")),
    (ColumnRole.PERCENTAGE, ("percent", "percentage", "pct", "proportion", "share of")),
    (ColumnRole.RATE, ("rate", "ratio", "frequency", "per capita", "speed")),
    (ColumnRole.SCORE, ("score", "gpa", "grade", "rank", "rating", "index", "lsat", "ugpa", "points won", "serve percentage")),
    (ColumnRole.MEASUREMENT, ("pressure", "glucose", "insulin", "bmi", "cholesterol", "temperature", "humidity", "weight", "height", "thickness", "concentration", "measurement", "level")),
    (ColumnRole.COUNT, ("count", "number of", "num ", "n_", "children", "dependents", "claims", "visits", "aces", "faults", "wins", "attempts", "occurrences", "quantity", "mosquitos", "population", "households", "rooms", "bedrooms")),
    (ColumnRole.OCCUPATION, ("occupation", "job", "profession", "employment", "workclass")),
    (ColumnRole.EDUCATION, ("education", "degree", "school", "academic")),
    (ColumnRole.TEXT, ("comment", "description text", "notes", "review", "title")),
    (ColumnRole.IDENTIFIER, ("identifier", " id", "_id", "uuid", "serial", "ssn", "account number")),
    (ColumnRole.BINARY, ("flag", "is ", "has ", "binary", "yes/no", "boolean", "default", "subscribed", "married")),
]


def tokenize_identifier(name: str) -> list[str]:
    """Split an identifier into lowercase word tokens.

    Handles snake_case, camelCase, dotted abbreviations, and digits:
    ``"AgeOfCar"`` → ``["age", "of", "car"]``; ``"FSW.1"`` → ``["fsw", "1"]``.
    """
    spaced = re.sub(r"([a-z0-9])([A-Z])", r"\1 \2", name)
    spaced = re.sub(r"[_\.\-/,:]+", " ", spaced)
    return [t for t in spaced.lower().split() if t]


_POSITIVE_STAT_WORDS = frozenset(
    {"won", "win", "wins", "winners", "aces", "created", "success", "successful", "gained"}
)
_NEGATIVE_STAT_WORDS = frozenset(
    {"errors", "error", "faults", "fault", "unforced", "lost", "losses", "failures", "missed"}
)


def stat_polarity(name: str, description: str = "") -> int:
    """+1 for "good" stats (winners, aces), -1 for "bad" ones (errors,
    faults), 0 otherwise.

    An FM pairing ``winners`` with ``unforced errors`` knows they oppose —
    which is why differentials/ratios of opposing stats rank highly in its
    binary-operator proposals.
    """
    tokens = set(tokenize_identifier(name)) | set(tokenize_identifier(description))
    positive = bool(tokens & _POSITIVE_STAT_WORDS)
    negative = bool(tokens & _NEGATIVE_STAT_WORDS)
    if positive and not negative:
        return 1
    if negative and not positive:
        return -1
    return 0


def infer_role(name: str, description: str = "", dtype: str = "") -> ColumnRole:
    """Infer the semantic role of a column from name + description + dtype.

    The description dominates when present (an FM reads the data card); a
    bare cryptic name often yields :attr:`ColumnRole.UNKNOWN` — which is
    what degrades SMARTFEAT's output in the names-only ablation.
    """
    haystacks = []
    if description:
        haystacks.append(" " + " ".join(tokenize_identifier(description)) + " ")
    haystacks.append(" " + " ".join(tokenize_identifier(name)) + " ")
    for role, keywords in _ROLE_KEYWORDS:
        for haystack in haystacks:
            for keyword in keywords:
                needle = keyword if keyword.startswith(" ") or keyword.endswith(" ") else f" {keyword}"
                if needle in haystack or haystack.strip().startswith(keyword.strip()):
                    return role
    if dtype == "categorical":
        return ColumnRole.CATEGORY
    return ColumnRole.UNKNOWN
