"""Live provider transports: real HTTP endpoints behind the Transport seam.

Everything in the repo runs against simulated/scripted transports; this
module is the one place that speaks to an actual completion API.  Two
wire dialects cover the field — the OpenAI ``chat/completions`` shape
(which most open-weight servers also speak) and the Anthropic
``messages`` shape — each as a :class:`Transport` subclass, so the whole
executor stack (retry, AIMD, hedging, checkpointing) applies to live
traffic unchanged.

Built on :mod:`urllib.request` only: no SDK dependency, and the HTTP
``opener`` is injectable so every parse/error path is unit-testable
offline.  Error mapping mirrors :class:`SimulatedHTTPTransport`'s
contract: HTTP 429 becomes a 429 :class:`TransportResponse` carrying the
server's ``Retry-After``; 5xx becomes a 5xx response; wire-level
timeouts raise :class:`TransportTimeout` and connection failures raise
:class:`TransportConnectionReset` — so the executor's
:class:`~repro.fm.executor.RetryPolicy` and the AIMD controller see live
providers exactly as they see the simulator.

Live use is **opt-in via environment variables** and never exercised in
CI (tests requiring a live provider are *skipped*, visibly, when the
variables are unset):

- ``SMARTFEAT_PROVIDER`` — ``openai`` or ``anthropic``
- ``SMARTFEAT_API_KEY`` — bearer / x-api-key credential
- ``SMARTFEAT_MODEL`` — model name sent on the wire
- ``SMARTFEAT_BASE_URL`` — optional endpoint override (proxies,
  OpenAI-compatible local servers)
"""

from __future__ import annotations

import abc
import json
import os
import time
import urllib.error
import urllib.request
from collections.abc import Callable, Mapping

from repro.fm.cost import CostModel
from repro.fm.transport import (
    Transport,
    TransportConnectionReset,
    TransportFMClient,
    TransportRequest,
    TransportResponse,
    TransportTimeout,
)

__all__ = [
    "AnthropicMessagesTransport",
    "ENV_API_KEY",
    "ENV_BASE_URL",
    "ENV_MODEL",
    "ENV_PROVIDER",
    "HTTPProviderTransport",
    "OpenAIChatTransport",
    "live_provider_configured",
    "provider_from_env",
]

ENV_PROVIDER = "SMARTFEAT_PROVIDER"
ENV_API_KEY = "SMARTFEAT_API_KEY"
ENV_BASE_URL = "SMARTFEAT_BASE_URL"
ENV_MODEL = "SMARTFEAT_MODEL"


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        # HTTP-date form (or garbage): no usable hint; let the retry
        # policy fall back to its computed backoff schedule.
        return None


class HTTPProviderTransport(Transport):
    """Shared machinery for JSON-over-HTTP completion providers.

    Subclasses define the dialect: :meth:`build_request` maps a
    :class:`TransportRequest` to ``(url, headers, body)``, and
    :meth:`parse_success` extracts the completion text from a decoded
    2xx payload.

    ``opener`` is the function that actually performs the HTTP exchange
    (default :func:`urllib.request.urlopen`); tests inject a fake to
    exercise every status/error path without a network.
    """

    def __init__(
        self,
        api_key: str,
        model: str,
        base_url: str,
        timeout_s: float = 120.0,
        max_tokens: int = 1024,
        opener: Callable | None = None,
    ) -> None:
        if not api_key:
            raise ValueError("api_key must be non-empty")
        self.api_key = api_key
        self.model = model
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_tokens = max_tokens
        self._opener = opener or urllib.request.urlopen

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_request(
        self, request: TransportRequest
    ) -> tuple[str, dict[str, str], bytes]:
        """The wire form: ``(url, headers, encoded JSON body)``."""

    @abc.abstractmethod
    def parse_success(self, payload: dict) -> str:
        """Extract the completion text from a decoded 2xx payload."""

    # ------------------------------------------------------------------
    def send(self, request: TransportRequest) -> TransportResponse:
        url, headers, body = self.build_request(request)
        http_request = urllib.request.Request(
            url, data=body, headers=headers, method="POST"
        )
        started = time.monotonic()
        try:
            with self._opener(http_request, timeout=self.timeout_s) as raw:
                payload = json.loads(raw.read().decode("utf-8"))
                status = getattr(raw, "status", 200)
        except urllib.error.HTTPError as exc:
            latency = time.monotonic() - started
            retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
            return TransportResponse(
                status=exc.code, retry_after_s=retry_after, latency_s=latency
            )
        except TimeoutError as exc:  # socket.timeout is TimeoutError on 3.10+
            raise TransportTimeout(
                f"provider did not answer within {self.timeout_s}s"
            ) from exc
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, TimeoutError):
                raise TransportTimeout(
                    f"provider did not answer within {self.timeout_s}s"
                ) from exc
            raise TransportConnectionReset(str(exc.reason)) from exc
        except (ConnectionError, OSError) as exc:
            raise TransportConnectionReset(str(exc)) from exc
        latency = time.monotonic() - started
        return TransportResponse(
            status=status, text=self.parse_success(payload), latency_s=latency
        )


class OpenAIChatTransport(HTTPProviderTransport):
    """The OpenAI ``chat/completions`` dialect (and its many imitators)."""

    DEFAULT_BASE_URL = "https://api.openai.com/v1"

    def __init__(
        self,
        api_key: str,
        model: str = "gpt-4o-mini",
        base_url: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(
            api_key=api_key,
            model=model,
            base_url=base_url or self.DEFAULT_BASE_URL,
            **kwargs,
        )

    def build_request(
        self, request: TransportRequest
    ) -> tuple[str, dict[str, str], bytes]:
        body = {
            "model": self.model,
            "messages": [{"role": "user", "content": request.prompt}],
            "temperature": request.temperature,
            "max_tokens": self.max_tokens,
        }
        headers = {
            "Content-Type": "application/json",
            "Authorization": f"Bearer {self.api_key}",
        }
        return (
            f"{self.base_url}/chat/completions",
            headers,
            json.dumps(body).encode("utf-8"),
        )

    def parse_success(self, payload: dict) -> str:
        return payload["choices"][0]["message"]["content"]


class AnthropicMessagesTransport(HTTPProviderTransport):
    """The Anthropic ``messages`` dialect."""

    DEFAULT_BASE_URL = "https://api.anthropic.com"
    API_VERSION = "2023-06-01"

    def __init__(
        self,
        api_key: str,
        model: str = "claude-3-5-haiku-latest",
        base_url: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(
            api_key=api_key,
            model=model,
            base_url=base_url or self.DEFAULT_BASE_URL,
            **kwargs,
        )

    def build_request(
        self, request: TransportRequest
    ) -> tuple[str, dict[str, str], bytes]:
        body = {
            "model": self.model,
            "max_tokens": self.max_tokens,
            "temperature": request.temperature,
            "messages": [{"role": "user", "content": request.prompt}],
        }
        headers = {
            "Content-Type": "application/json",
            "x-api-key": self.api_key,
            "anthropic-version": self.API_VERSION,
        }
        return (
            f"{self.base_url}/v1/messages",
            headers,
            json.dumps(body).encode("utf-8"),
        )

    def parse_success(self, payload: dict) -> str:
        blocks = payload.get("content", [])
        return "".join(
            block.get("text", "") for block in blocks if block.get("type") == "text"
        )


# ----------------------------------------------------------------------
# Env-var opt-in factory
# ----------------------------------------------------------------------
_PROVIDERS: dict[str, type[HTTPProviderTransport]] = {
    "openai": OpenAIChatTransport,
    "anthropic": AnthropicMessagesTransport,
}


def live_provider_configured(env: Mapping[str, str] | None = None) -> bool:
    """Whether the environment opts in to a live provider.

    This is the gate CI relies on: when it returns False, live-provider
    tests must *skip* (visibly), never silently pass.
    """
    env = os.environ if env is None else env
    return bool(env.get(ENV_PROVIDER)) and bool(env.get(ENV_API_KEY))


def provider_from_env(
    env: Mapping[str, str] | None = None,
    opener: Callable | None = None,
    **client_kwargs,
) -> TransportFMClient:
    """Build the config-selected live client from environment variables.

    Raises :class:`ValueError` when the environment does not opt in or
    names an unknown provider — callers that want optional behaviour
    check :func:`live_provider_configured` first.
    """
    env = os.environ if env is None else env
    provider = (env.get(ENV_PROVIDER) or "").strip().lower()
    if not provider:
        raise ValueError(f"{ENV_PROVIDER} is unset: no live provider configured")
    if provider not in _PROVIDERS:
        known = ", ".join(sorted(_PROVIDERS))
        raise ValueError(f"unknown provider {provider!r} (known: {known})")
    api_key = env.get(ENV_API_KEY) or ""
    if not api_key:
        raise ValueError(f"{ENV_API_KEY} is unset: refusing to build a live client")
    transport_kwargs: dict = {"api_key": api_key}
    if env.get(ENV_MODEL):
        transport_kwargs["model"] = env[ENV_MODEL]
    if env.get(ENV_BASE_URL):
        transport_kwargs["base_url"] = env[ENV_BASE_URL]
    if opener is not None:
        transport_kwargs["opener"] = opener
    transport = _PROVIDERS[provider](**transport_kwargs)
    return TransportFMClient(
        transport,
        model=transport.model,
        cost_model=CostModel(model=transport.model),
        **client_kwargs,
    )
