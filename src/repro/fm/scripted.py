"""Test doubles for FM clients: scripted, recording, and replay wrappers."""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

from repro.fm.base import FMClient, FMResponse
from repro.fm.errors import FMError

__all__ = ["RecordingFM", "ReplayFM", "ScriptedFM"]


class ScriptedFM(FMClient):
    """Returns canned responses.

    Accepts either a list (consumed in order; raises when exhausted) or a
    callable ``prompt -> text`` for pattern-based stubs.  The list cursor
    is reserved thread-safely in submission order, so scripted clients
    behave identically under batched and serial execution.
    """

    def __init__(self, responses: Sequence[str] | Callable[[str], str], model: str = "scripted") -> None:
        super().__init__(model=model)
        self._responses = responses
        self._cursor = 0
        self._cursor_lock = threading.Lock()

    def _reserve_state(self, prompt: str, temperature: float) -> int | None:
        if callable(self._responses):
            return None
        with self._cursor_lock:
            position = self._cursor
            self._cursor += 1
            return position

    def _complete_text(self, prompt: str, temperature: float) -> str:
        return self._complete_with_state(
            prompt, temperature, self._reserve_state(prompt, temperature)
        )

    def _complete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        if callable(self._responses):
            return self._responses(prompt)
        assert isinstance(state, int)
        if state >= len(self._responses):
            raise FMError(
                f"ScriptedFM exhausted after {len(self._responses)} responses; "
                f"prompt was: {prompt[:80]}..."
            )
        return self._responses[state]

    # ------------------------------------------------------------------
    # Checkpoint protocol: the script cursor is the per-call state.
    def checkpoint_state(self) -> object | None:
        if callable(self._responses):
            return None
        with self._cursor_lock:
            return {"cursor": self._cursor}

    def restore_checkpoint_state(self, state: object | None) -> None:
        if state is None:
            return
        if not isinstance(state, dict) or "cursor" not in state:
            raise ValueError(f"unrecognised ScriptedFM checkpoint state: {state!r}")
        with self._cursor_lock:
            self._cursor = int(state["cursor"])


class RecordingFM(FMClient):
    """Wraps another client and records every ``(prompt, response)`` pair.

    The state-reservation protocol is forwarded to the inner client, so a
    recording wrapper around a stateful deterministic client answers
    identically under batched and serial execution.  Prompt/response
    pairs are always matched; under a threaded executor they append in
    completion order (replay such a recording serially).
    """

    def __init__(self, inner: FMClient) -> None:
        super().__init__(model=inner.model, cost_model=inner.cost_model)
        self.inner = inner
        self.recording: list[tuple[str, str]] = []
        self._recording_lock = threading.Lock()

    def _reserve_state(self, prompt: str, temperature: float) -> object | None:
        return self.inner._reserve_state(prompt, temperature)

    def _on_cache_hit(self, prompt: str, temperature: float) -> None:
        self.inner._on_cache_hit(prompt, temperature)

    def _complete_text(self, prompt: str, temperature: float) -> str:
        return self._complete_with_state(
            prompt, temperature, self._reserve_state(prompt, temperature)
        )

    def _complete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        text = self.inner._complete_with_state(prompt, temperature, state)
        with self._recording_lock:
            self.recording.append((prompt, text))
        return text


class ReplayFM(FMClient):
    """Replays a recording captured by :class:`RecordingFM`.

    Matches calls by sequence position and verifies the prompt prefix so
    drifting call order fails loudly rather than silently mis-answering.
    """

    def __init__(self, recording: Sequence[tuple[str, str]], strict: bool = True) -> None:
        super().__init__(model="replay")
        self._recording = list(recording)
        self._cursor = 0
        self._cursor_lock = threading.Lock()
        self.strict = strict

    def _reserve_state(self, prompt: str, temperature: float) -> int:
        with self._cursor_lock:
            position = self._cursor
            self._cursor += 1
            return position

    def _complete_text(self, prompt: str, temperature: float) -> str:
        return self._complete_with_state(
            prompt, temperature, self._reserve_state(prompt, temperature)
        )

    def _complete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        assert isinstance(state, int)
        if state >= len(self._recording):
            raise FMError("ReplayFM exhausted: more calls than the recording contains")
        recorded_prompt, text = self._recording[state]
        if self.strict and recorded_prompt[:120] != prompt[:120]:
            raise FMError(
                "ReplayFM prompt mismatch at call "
                f"{state + 1}: expected {recorded_prompt[:60]!r}..., got {prompt[:60]!r}..."
            )
        return text

    # ------------------------------------------------------------------
    # Checkpoint protocol: the replay cursor is the per-call state.
    def checkpoint_state(self) -> object | None:
        with self._cursor_lock:
            return {"cursor": self._cursor}

    def restore_checkpoint_state(self, state: object | None) -> None:
        if state is None:
            return
        if not isinstance(state, dict) or "cursor" not in state:
            raise ValueError(f"unrecognised ReplayFM checkpoint state: {state!r}")
        with self._cursor_lock:
            self._cursor = int(state["cursor"])
