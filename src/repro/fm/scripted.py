"""Test doubles for FM clients: scripted, recording, and replay wrappers."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.fm.base import FMClient, FMResponse
from repro.fm.errors import FMError

__all__ = ["RecordingFM", "ReplayFM", "ScriptedFM"]


class ScriptedFM(FMClient):
    """Returns canned responses.

    Accepts either a list (consumed in order; raises when exhausted) or a
    callable ``prompt -> text`` for pattern-based stubs.
    """

    def __init__(self, responses: Sequence[str] | Callable[[str], str], model: str = "scripted") -> None:
        super().__init__(model=model)
        self._responses = responses
        self._cursor = 0

    def _complete_text(self, prompt: str, temperature: float) -> str:
        if callable(self._responses):
            return self._responses(prompt)
        if self._cursor >= len(self._responses):
            raise FMError(
                f"ScriptedFM exhausted after {self._cursor} responses; prompt was: {prompt[:80]}..."
            )
        text = self._responses[self._cursor]
        self._cursor += 1
        return text


class RecordingFM(FMClient):
    """Wraps another client and records every ``(prompt, response)`` pair."""

    def __init__(self, inner: FMClient) -> None:
        super().__init__(model=inner.model, cost_model=inner.cost_model)
        self.inner = inner
        self.recording: list[tuple[str, str]] = []

    def _complete_text(self, prompt: str, temperature: float) -> str:
        text = self.inner._complete_text(prompt, temperature)
        self.recording.append((prompt, text))
        return text


class ReplayFM(FMClient):
    """Replays a recording captured by :class:`RecordingFM`.

    Matches calls by sequence position and verifies the prompt prefix so
    drifting call order fails loudly rather than silently mis-answering.
    """

    def __init__(self, recording: Sequence[tuple[str, str]], strict: bool = True) -> None:
        super().__init__(model="replay")
        self._recording = list(recording)
        self._cursor = 0
        self.strict = strict

    def _complete_text(self, prompt: str, temperature: float) -> str:
        if self._cursor >= len(self._recording):
            raise FMError("ReplayFM exhausted: more calls than the recording contains")
        recorded_prompt, text = self._recording[self._cursor]
        self._cursor += 1
        if self.strict and recorded_prompt[:120] != prompt[:120]:
            raise FMError(
                "ReplayFM prompt mismatch at call "
                f"{self._cursor}: expected {recorded_prompt[:60]!r}..., got {prompt[:60]!r}..."
            )
        return text
