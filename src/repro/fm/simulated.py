"""A deterministic, knowledge-based foundation-model simulator.

:class:`SimulatedFM` answers the prompt shapes of the SMARTFEAT operator
selector, the function generator, row-level completion, source suggestion,
and the CAAFE baseline.  It sees *only the prompt text* — never the raw
dataframe — exactly like a real FM:

* column semantics come from :mod:`repro.fm.lexicon` applied to the names
  and descriptions serialised into the prompt's data agenda;
* open-world answers come from :mod:`repro.fm.knowledge`;
* executable code comes from :mod:`repro.fm.codegen`;
* sampling-strategy diversity comes from a seeded generator keyed on the
  call counter when ``temperature > 0`` (the i.i.d. sampling of the
  paper's Tree-of-Thoughts-style search), and on the prompt hash when
  ``temperature == 0`` (deterministic proposals).

``error_rate`` injects malformed responses (refusals, broken JSON, code
that raises) to exercise SMARTFEAT's error threshold, mirroring the
paper's observation that FMs are "susceptible to unpredicted errors".
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.fm.base import Budget, FMClient
from repro.fm.codegen import derivation_tag, generate_transform_source
from repro.fm.cost import CostModel
from repro.fm.knowledge import KnowledgeStore, default_knowledge
from repro.fm.lexicon import ColumnRole, infer_role, stat_polarity

__all__ = ["AgendaView", "SimulatedFM"]

_FEATURE_LINE = re.compile(
    r"^- (?P<name>.+?) \((?P<kind>numeric|categorical|binary)"
    r"(?:, values: (?P<values>[^)]*))?\): (?P<desc>.*)$",
    re.MULTILINE,
)
_TARGET_LINE = re.compile(r"^Prediction class: (?P<name>[^—\n]+?)(?: — (?P<desc>.*))?$", re.MULTILINE)
_MODEL_LINE = re.compile(r"^Downstream model: (?P<model>.+)$", re.MULTILINE)
_TITLE_LINE = re.compile(r"^Dataset description: (?P<title>.+)$", re.MULTILINE)


@dataclass
class _FeatureInfo:
    name: str
    kind: str
    values: list[str]
    description: str
    role: ColumnRole = ColumnRole.UNKNOWN


@dataclass
class AgendaView:
    """The simulator's parse of the data agenda embedded in a prompt."""

    title: str = ""
    features: dict[str, _FeatureInfo] = field(default_factory=dict)
    target: str = ""
    target_description: str = ""
    model: str = ""

    @property
    def numeric(self) -> list[_FeatureInfo]:
        return [f for f in self.features.values() if f.kind == "numeric"]

    @property
    def categorical(self) -> list[_FeatureInfo]:
        return [f for f in self.features.values() if f.kind == "categorical"]

    @property
    def groupable(self) -> list[_FeatureInfo]:
        """Columns that partition rows into subsets (categorical / binary)."""
        return [f for f in self.features.values() if f.kind in ("categorical", "binary")]

    @property
    def aggregatable(self) -> list[_FeatureInfo]:
        """Columns whose per-group aggregate is meaningful: numerics plus
        binary indicators (whose group mean is a rate — the paper's
        claim-probability-per-car-model example)."""
        return [f for f in self.features.values() if f.kind in ("numeric", "binary")]

    def column_values(self) -> dict[str, list[str]]:
        return {name: info.values for name, info in self.features.items() if info.values}


def parse_agenda(prompt: str) -> AgendaView:
    """Extract the serialised data agenda from a prompt."""
    view = AgendaView()
    title = _TITLE_LINE.search(prompt)
    if title:
        view.title = title.group("title").strip()
    for match in _FEATURE_LINE.finditer(prompt):
        values = [v.strip() for v in (match.group("values") or "").split("|") if v.strip()]
        info = _FeatureInfo(
            name=match.group("name").strip(),
            kind=match.group("kind"),
            values=values,
            description=match.group("desc").strip(),
        )
        info.role = infer_role(info.name, info.description, info.kind)
        view.features[info.name] = info
    target = _TARGET_LINE.search(prompt)
    if target:
        view.target = target.group("name").strip()
        view.target_description = (target.group("desc") or "").strip()
    model = _MODEL_LINE.search(prompt)
    if model:
        view.model = model.group("model").strip().lower()
    return view


def _stable_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class SimulatedFM(FMClient):
    """Seeded knowledge-based simulator implementing :class:`FMClient`.

    Parameters
    ----------
    seed:
        Controls all sampling; two clients with the same seed answer the
        same call sequence identically.
    model:
        Model label used for pricing (``gpt-4`` or ``gpt-3.5-turbo``).
    knowledge:
        World-knowledge store; defaults to the shared store the dataset
        generators also use.
    error_rate:
        Probability of answering with a malformed response.
    """

    def __init__(
        self,
        seed: int = 0,
        model: str = "gpt-4",
        knowledge: KnowledgeStore | None = None,
        error_rate: float = 0.0,
        cost_model: CostModel | None = None,
        budget: "Budget | None" = None,
    ) -> None:
        super().__init__(
            model=model, cost_model=cost_model or CostModel(model=model), budget=budget
        )
        self.seed = seed
        self.knowledge = knowledge or default_knowledge()
        self.error_rate = error_rate
        self._counter = 0
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _reserve_state(self, prompt: str, temperature: float) -> int:
        """Every call consumes the seeded counter, in submission order.

        Sampling (``temperature > 0``) calls key their entropy on the
        reserved counter value — the i.i.d. draws of the paper's search —
        while deterministic calls key on the prompt text, so reordering
        them inside a batch cannot change any answer.
        """
        with self._counter_lock:
            self._counter += 1
            return self._counter

    def _on_cache_hit(self, prompt: str, temperature: float) -> None:
        """A cache hit replaces a call the serial run would have made, so
        it still consumes the counter — keeping warm-cache reruns on the
        same sampling trajectory as the run that filled the cache."""
        self._reserve_state(prompt, temperature)

    # ------------------------------------------------------------------
    # Checkpoint protocol: the sampling counter IS the client's per-call
    # state, so restoring it puts a resumed run back on the exact
    # sampling trajectory the interrupted run was on.
    def checkpoint_state(self) -> object | None:
        with self._counter_lock:
            return {"counter": self._counter}

    def restore_checkpoint_state(self, state: object | None) -> None:
        if state is None:
            return
        if not isinstance(state, dict) or "counter" not in state:
            raise ValueError(f"unrecognised SimulatedFM checkpoint state: {state!r}")
        with self._counter_lock:
            self._counter = int(state["counter"])

    def _complete_text(self, prompt: str, temperature: float) -> str:
        return self._complete_with_state(
            prompt, temperature, self._reserve_state(prompt, temperature)
        )

    def _complete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        entropy = state if temperature > 0 and state is not None else _stable_hash(prompt)
        rng = np.random.default_rng([self.seed, int(entropy) % 2**32])
        if self.error_rate > 0 and rng.uniform() < self.error_rate:
            return self._garbled(rng)
        agenda = parse_agenda(prompt)
        if "Consider the unary operators on the attribute" in prompt:
            return self._answer_unary(prompt, agenda)
        if "List up to" in prompt and "binary arithmetic operator" in prompt:
            return self._answer_binary_proposal(prompt, agenda)
        if "binary arithmetic operator" in prompt:
            return self._answer_binary(prompt, agenda, rng)
        if "Generate a groupby feature" in prompt:
            return self._answer_high_order(prompt, agenda, rng)
        if "Propose ONE extractor feature" in prompt:
            return self._answer_extractor(prompt, agenda, rng)
        if "Generate the optimal Python function" in prompt or "Generate a corrected" in prompt:
            return self._answer_function(prompt, agenda)
        if "Respond with the value only" in prompt:
            return self._answer_row_completion(prompt)
        if "cannot be computed by a" in prompt and "suggest external" in prompt:
            return self._answer_sources(prompt)
        if "should be removed before training" in prompt:
            return self._answer_feature_removal(agenda)
        if "You are an automated feature engineering assistant (CAAFE" in prompt:
            return self._answer_caafe(prompt, agenda, rng)
        return (
            "I am a language model. Please provide a data agenda and a task "
            "description so I can help with feature engineering."
        )

    @staticmethod
    def _garbled(rng: np.random.Generator) -> str:
        """A malformed answer: refusal, broken JSON, or crashing code."""
        options = [
            "I'm sorry, I can't assist with that request.",
            '{"operator": "-", "columns": ["only_one"',
            "```python\ndef transform(df):\n    return df[undefined_name] + 1\n```",
            "As an AI model, here are some general thoughts about features...",
        ]
        return options[int(rng.integers(0, len(options)))]

    # ------------------------------------------------------------------
    # Unary proposals
    # ------------------------------------------------------------------
    def _answer_unary(self, prompt: str, agenda: AgendaView) -> str:
        match = re.search(r'unary operators on the attribute "([^"]+)"', prompt)
        if not match or match.group(1) not in agenda.features:
            return "none (certain): attribute not found in the provided agenda"
        info = agenda.features[match.group(1)]
        insurance_context = "insur" in (agenda.title + agenda.target_description).lower()
        prefers_scaling = any(tag in agenda.model for tag in ("knn", "dnn", "neural", "mlp"))
        norm_mode = "minmax" if prefers_scaling else "zscore"
        lines: list[str] = []

        def add(op_tag: str, confidence: str, text: str) -> None:
            lines.append(f"{op_tag} ({confidence}): {text}")

        role = info.role
        name = info.name
        if info.kind == "numeric":
            if role == ColumnRole.AGE:
                domain = "age_insurance" if insurance_context else "age_generic"
                add(
                    f"bucketization[{domain}]",
                    "certain",
                    f"{name} grouped into standard {'insurance ' if insurance_context else ''}age bands",
                )
                add(
                    f"normalization[{norm_mode}]",
                    "high" if prefers_scaling else "medium",
                    f"{name} rescaled for distance-sensitive models",
                )
            elif role == ColumnRole.MONEY:
                add("log_transform", "certain", f"log of {name} to compress its heavy tail")
                add(
                    f"normalization[{norm_mode}]",
                    "high" if prefers_scaling else "medium",
                    f"{name} rescaled to a comparable range",
                )
                add("bucketization[income_k]", "medium", f"{name} grouped into income bands")
            elif role == ColumnRole.COUNT:
                add("log_transform", "high", f"log of {name} to dampen large counts")
                add("is_missing", "low", f"indicator for missing {name}")
            elif role == ColumnRole.MEASUREMENT:
                domain = self._measurement_domain(name, info.description)
                if domain:
                    add(
                        f"bucketization[{domain}]",
                        "certain",
                        f"{name} grouped into clinically standard {domain.replace('_', ' ')} ranges",
                    )
                add(
                    f"normalization[{norm_mode}]",
                    "high" if prefers_scaling else "medium",
                    f"{name} standardised for model input",
                )
            elif role in (ColumnRole.SCORE, ColumnRole.RATE, ColumnRole.PERCENTAGE):
                add(
                    f"normalization[{norm_mode}]",
                    "high" if prefers_scaling else "medium",
                    f"{name} rescaled to a comparable range",
                )
                add("squared", "low", f"squared {name} to expose non-linear effects")
            elif role == ColumnRole.YEAR:
                add("bucketization[age_generic]", "low", f"{name} grouped into coarse eras")
            elif role == ColumnRole.DURATION:
                add("log_transform", "high", f"log of {name} to compress long durations")
                add(f"normalization[{norm_mode}]", "medium", f"{name} rescaled")
            elif role == ColumnRole.IDENTIFIER:
                add("none", "certain", "identifiers carry no predictive signal")
            else:
                # Cryptic or unknown numeric column: the FM hedges.
                add(f"normalization[{norm_mode}]", "medium", f"{name} rescaled as a generic treatment")
                add("squared", "low", f"squared {name} in case of non-linearity")
        elif info.kind == "categorical":
            if role == ColumnRole.DATE:
                add("date_split", "certain", f"calendar components extracted from {name}")
            elif info.values and len(info.values) <= 12:
                add("get_dummies", "certain", f"one-hot indicators for {name}")
            else:
                add("get_dummies", "low", f"one-hot {name} (high cardinality, likely too sparse)")
            if role == ColumnRole.TEXT:
                add("text_length", "medium", f"length of the {name} text")
        else:  # binary
            add("none", "certain", f"{name} is already a binary indicator")
        return "\n".join(lines)

    @staticmethod
    def _measurement_domain(name: str, description: str) -> str | None:
        haystack = f"{name} {description}".lower()
        if "bmi" in haystack or "body mass" in haystack:
            return "bmi"
        if "glucose" in haystack:
            return "glucose"
        if "pressure" in haystack:
            return "blood_pressure"
        return None

    # ------------------------------------------------------------------
    # Binary sampling
    # ------------------------------------------------------------------
    _AFFINITY: dict[tuple[ColumnRole, ColumnRole], tuple[tuple[str, float], ...]] = {
        (ColumnRole.MONEY, ColumnRole.COUNT): (("/", 4.0),),
        (ColumnRole.MONEY, ColumnRole.MONEY): (("-", 4.0), ("/", 2.0)),
        (ColumnRole.COUNT, ColumnRole.COUNT): (("-", 4.2), ("/", 3.5)),
        (ColumnRole.SCORE, ColumnRole.SCORE): (("-", 4.0),),
        (ColumnRole.PERCENTAGE, ColumnRole.PERCENTAGE): (("-", 3.2),),
        (ColumnRole.PERCENTAGE, ColumnRole.COUNT): (("*", 2.5),),
        (ColumnRole.AGE, ColumnRole.DURATION): (("-", 4.5),),
        (ColumnRole.AGE, ColumnRole.AGE): (("-", 4.0),),
        (ColumnRole.MEASUREMENT, ColumnRole.MEASUREMENT): (("-", 3.0), ("/", 2.5)),
        (ColumnRole.RATE, ColumnRole.COUNT): (("*", 3.0),),
        (ColumnRole.MONEY, ColumnRole.DURATION): (("/", 3.0),),
        (ColumnRole.COUNT, ColumnRole.DURATION): (("/", 3.5),),
    }

    _OP_WORD = {"+": "plus", "-": "minus", "*": "times", "/": "div"}

    #: Derivation tags usable as binary-operator inputs: original columns
    #: plus semantically meaningful derived quantities (group rates,
    #: knowledge lookups, composites).  Arithmetic on bucket codes,
    #: one-hot flags, z-scores, logs, or already-combined features is the
    #: kind of nonsense an FM's semantic understanding avoids.
    _BINARY_INPUT_TAGS = frozenset({"", "knowledge_map", "composite_index", "groupby"})
    #: Tags usable as group-by keys (bucketised / split columns partition well).
    _GROUP_COL_TAGS = frozenset({"", "bucketization", "split_parts"})
    #: Tags usable as aggregate columns (no nested group-bys, no arithmetic
    #: combinations — aggregate the interpretable quantities).
    _AGG_COL_TAGS = frozenset({"", "normalization", "log_transform", "knowledge_map"})

    _STOPWORDS = frozenset(
        {"the", "of", "by", "for", "player", "1", "2", "number", "in", "a", "an",
         "per", "total", "and", "to", "hit", "served"}
    )

    _OPPORTUNITY_WORDS = frozenset({"created", "attempted", "attempts", "chances", "opportunities", "total"})

    @classmethod
    def _is_opportunity_stat(cls, info: _FeatureInfo) -> bool:
        """True for "chances" stats (created/attempted) — natural ratio
        denominators."""
        from repro.fm.lexicon import tokenize_identifier

        tokens = set(tokenize_identifier(info.name)) | set(tokenize_identifier(info.description))
        return bool(tokens & cls._OPPORTUNITY_WORDS)

    @classmethod
    def _shared_concept(cls, a: _FeatureInfo, b: _FeatureInfo) -> bool:
        """True when two columns describe the same underlying quantity
        (≥2 shared content words in their descriptions)."""
        from repro.fm.lexicon import tokenize_identifier

        words_a = set(tokenize_identifier(a.description)) - cls._STOPWORDS
        words_b = set(tokenize_identifier(b.description)) - cls._STOPWORDS
        return len(words_a & words_b) >= 2

    @staticmethod
    def _base_name(info: _FeatureInfo) -> str:
        """The underlying column a derived feature was built from.

        Generated names follow ``{tag}_{base}``; originals are their own
        base."""
        tag = derivation_tag(info.description)
        if tag and info.name.startswith(f"{tag}_"):
            return info.name[len(tag) + 1 :]
        return info.name

    def _binary_candidates(self, agenda: AgendaView) -> list[tuple[float, str, str, str]]:
        numeric = [
            f for f in agenda.numeric if derivation_tag(f.description) in self._BINARY_INPUT_TAGS
        ]
        existing = set(agenda.features)
        out: list[tuple[float, str, str, str]] = []
        for i, a in enumerate(numeric):
            for b in numeric[i + 1 :]:
                if self._base_name(a) == self._base_name(b):
                    continue  # two views of the same underlying column
                options = self._AFFINITY.get(
                    (a.role, b.role), self._AFFINITY.get((b.role, a.role), ())
                )
                if not options:
                    weak = 0.5 if ColumnRole.UNKNOWN in (a.role, b.role) else 1.0
                    options = (("-", weak),)
                pol_a = stat_polarity(a.name, a.description)
                pol_b = stat_polarity(b.name, b.description)
                tokens = (a.name + " " + b.name).lower()
                swap = False
                if pol_a * pol_b == -1:
                    # Opposing stats (winners vs errors): the differential
                    # and the ratio are the analyst's first instincts —
                    # always oriented positive-over-negative.
                    options = (("-", 6.0), ("/", 5.0))
                    swap = pol_a < 0
                elif self._shared_concept(a, b) and a.role == b.role == ColumnRole.COUNT:
                    # Same underlying concept measured twice ("break points
                    # won" / "break points created") -> a conversion ratio,
                    # oriented outcomes-over-opportunities.
                    options = (("/", 6.5),)
                    swap = self._is_opportunity_stat(a) and not self._is_opportunity_stat(b)
                elif "glucose" in tokens and "insulin" in tokens:
                    # The glucose-to-insulin ratio is a textbook clinical
                    # index an FM recalls immediately.
                    options = (("/", 7.0),)
                    swap = "insulin" in a.name.lower()
                left, right = (b, a) if swap else (a, b)
                for op, score in options:
                    name = f"{left.name}_{self._OP_WORD[op]}_{right.name}"
                    if name in existing:
                        continue
                    out.append((score, op, left.name, right.name))
        out.sort(key=lambda item: (-item[0], item[2], item[3]))
        return out

    def _answer_binary(self, prompt: str, agenda: AgendaView, rng: np.random.Generator) -> str:
        candidates = self._binary_candidates(agenda)
        if not candidates:
            return json.dumps(
                {"operator": None, "columns": [], "name": "", "description": "no suitable numeric pair"}
            )
        weights = np.array([c[0] for c in candidates])
        pick = candidates[int(rng.choice(len(candidates), p=weights / weights.sum()))]
        _, op, a, b = pick
        name = f"{a}_{self._OP_WORD[op]}_{b}"
        nature = {"+": "sum", "-": "difference", "*": "product", "/": "ratio"}[op]
        return json.dumps(
            {
                "operator": op,
                "columns": [a, b],
                "name": name,
                "description": f"binary[{op}]: {nature} of {a} and {b}",
            }
        )

    def _answer_binary_proposal(self, prompt: str, agenda: AgendaView) -> str:
        """Proposal strategy: the deterministic top-k, one JSON per line."""
        match = re.search(r"List up to (\d+)", prompt)
        k = int(match.group(1)) if match else 5
        lines = []
        for score, op, a, b in self._binary_candidates(agenda)[:k]:
            del score
            nature = {"+": "sum", "-": "difference", "*": "product", "/": "ratio"}[op]
            lines.append(
                json.dumps(
                    {
                        "operator": op,
                        "columns": [a, b],
                        "name": f"{a}_{self._OP_WORD[op]}_{b}",
                        "description": f"binary[{op}]: {nature} of {a} and {b}",
                    }
                )
            )
        return "\n".join(lines) if lines else json.dumps(
            {"operator": None, "columns": [], "name": "", "description": "no suitable numeric pair"}
        )

    # ------------------------------------------------------------------
    # High-order sampling
    # ------------------------------------------------------------------
    def _answer_high_order(self, prompt: str, agenda: AgendaView, rng: np.random.Generator) -> str:
        group_candidates = [
            f
            for f in agenda.groupable
            if (not f.values or len(f.values) <= 20)
            and derivation_tag(f.description) in self._GROUP_COL_TAGS
        ]
        agg_candidates = [
            f
            for f in agenda.aggregatable
            if derivation_tag(f.description) in self._AGG_COL_TAGS
        ]
        if not group_candidates or not agg_candidates:
            return json.dumps({"groupby_col": [], "agg_col": None, "function": None})
        existing = set(agenda.features)
        target_words = set(re.findall(r"\w+", agenda.target.lower()))

        def agg_weight(info: _FeatureInfo) -> float:
            weight = 1.0
            if info.role in (ColumnRole.COUNT, ColumnRole.RATE, ColumnRole.BINARY):
                weight += 2.0
            words = set(re.findall(r"\w+", (info.name + " " + info.description).lower()))
            if words & target_words:
                weight += 3.0  # aggregate the historical signal (claim-rate style)
            return weight

        combos: list[tuple[float, str, str, str]] = []
        for g in group_candidates:
            for a in agg_candidates:
                if a.name == g.name:
                    continue
                if a.kind == "binary":
                    # Mean of a 0/1 column is a per-group rate (the paper's
                    # claim-probability-per-car-model feature); max/min/count
                    # of an indicator are uninformative.
                    functions = [("mean", 0.8), ("sum", 0.2)]
                else:
                    functions = [
                        ("mean", 0.5), ("max", 0.15), ("min", 0.1), ("sum", 0.15), ("count", 0.1),
                    ]
                for func, fw in functions:
                    name = f"GroupBy_{g.name}_{func}_{a.name}"
                    if name in existing:
                        continue
                    combos.append((agg_weight(a) * fw, g.name, a.name, func))
        if not combos:
            return json.dumps({"groupby_col": [], "agg_col": None, "function": None})
        weights = np.array([c[0] for c in combos])
        pick = combos[int(rng.choice(len(combos), p=weights / weights.sum()))]
        _, gcol, acol, func = pick
        return json.dumps({"groupby_col": [gcol], "agg_col": acol, "function": func})

    # ------------------------------------------------------------------
    # Extractor sampling
    # ------------------------------------------------------------------
    def _extractor_candidates(self, agenda: AgendaView) -> list[dict]:
        existing = set(agenda.features)
        out: list[dict] = []
        for info in agenda.features.values():
            if info.role == ColumnRole.CITY and info.kind == "categorical":
                for topic, suffix, noun in (
                    ("city_population_density", "population_density", "population density"),
                    ("city_median_income", "median_income", "median household income"),
                ):
                    name = f"{info.name}_{suffix}"
                    if name in existing:
                        continue
                    kind = "function" if info.values and len(info.values) <= 30 else "row_level"
                    out.append(
                        {
                            "name": name,
                            "columns": [info.name],
                            "description": f"knowledge_map[{topic}]: approximate {noun} of {info.name}",
                            "kind": kind,
                        }
                    )
            if info.role == ColumnRole.VEHICLE and info.kind == "categorical":
                has_comma = any("," in v for v in info.values)
                if has_comma and f"{info.name}_part0" not in existing:
                    out.append(
                        {
                            "name": f"{info.name}_split",
                            "columns": [info.name],
                            "description": f"split_parts[,]: make and model split out of {info.name}",
                            "kind": "function",
                        }
                    )
                make_col = info.name if not has_comma else f"{info.name}_part0"
                if make_col in agenda.features or make_col == info.name:
                    name = f"{make_col}_insurance_risk"
                    if name not in existing:
                        out.append(
                            {
                                "name": name,
                                "columns": [make_col],
                                "description": f"knowledge_map[car_make_risk]: typical insurance risk factor of the {make_col} make",
                                "kind": "function",
                            }
                        )
        score_cols = [
            f.name
            for f in agenda.numeric
            if f.role
            in (ColumnRole.SCORE, ColumnRole.MEASUREMENT, ColumnRole.RATE, ColumnRole.PERCENTAGE)
            and derivation_tag(f.description) == ""
        ]
        if len(score_cols) >= 3:
            chosen = score_cols[:3]
            name = "composite_index_" + "_".join(c.split()[0] for c in chosen)[:40]
            if name not in existing:
                out.append(
                    {
                        "name": name,
                        "columns": chosen,
                        "description": "composite_index: equal-weight z-score composite of "
                        + ", ".join(chosen),
                        "kind": "function",
                    }
                )
        haystack = " ".join(
            f"{f.name} {f.description}" for f in agenda.features.values()
        ).lower()
        if any(word in haystack for word in ("trap", "mosquito", "virus", "outbreak")):
            if "historical_weather_conditions" not in existing:
                out.append(
                    {
                        "name": "historical_weather_conditions",
                        "columns": [],
                        "description": "source[weather_history]: recent precipitation and "
                        "temperature history near each observation site",
                        "kind": "source",
                    }
                )
        return out

    def _answer_extractor(self, prompt: str, agenda: AgendaView, rng: np.random.Generator) -> str:
        candidates = self._extractor_candidates(agenda)
        if not candidates:
            return json.dumps(
                {"name": "", "columns": [], "description": "no extractor applies", "kind": "none"}
            )
        pick = candidates[int(rng.integers(0, len(candidates)))]
        return json.dumps(pick)

    # ------------------------------------------------------------------
    # Function generation
    # ------------------------------------------------------------------
    def _answer_function(self, prompt: str, agenda: AgendaView) -> str:
        name_match = re.search(r'new feature\s+"([^"]+)"', prompt)
        cols_match = re.search(r"(?:using feature\(s\)|\(inputs)\s+(\[[^\]]*\])", prompt)
        desc_match = re.search(r"Feature description:\s*(.*)", prompt)
        if not (name_match and cols_match and desc_match):
            return "```python\ndef transform(df):\n    return None\n```"
        try:
            columns = [c.strip().strip("'\"") for c in cols_match.group(1).strip("[]").split(",") if c.strip()]
        except ValueError:  # pragma: no cover - defensive
            columns = []
        source = generate_transform_source(
            name=name_match.group(1),
            columns=columns,
            description=desc_match.group(1).strip(),
            knowledge=self.knowledge,
            column_values=agenda.column_values(),
        )
        return f"```python\n{source}```"

    # ------------------------------------------------------------------
    # Row-level completion
    # ------------------------------------------------------------------
    _TOPIC_HINTS = (
        ("density", "city_population_density"),
        ("income", "city_median_income"),
        ("risk", "car_make_risk"),
        ("sport", "car_make_sporty"),
    )

    def _answer_row_completion(self, prompt: str) -> str:
        masked = re.search(r"^(?P<attr>[^:\n]+): \?$", prompt, re.MULTILINE)
        record = re.search(r"^Record: (?P<body>.+)$", prompt, re.MULTILINE)
        if not masked or not record:
            return "unknown"
        attr = masked.group("attr").strip().lower()
        topic = next((t for hint, t in self._TOPIC_HINTS if hint in attr), None)
        pairs = {}
        for part in record.group("body").split(","):
            if ":" in part:
                key, value = part.split(":", 1)
                pairs[key.strip()] = value.strip()
        if topic is None:
            return "unknown"
        key_role = ColumnRole.CITY if topic.startswith("city") else ColumnRole.VEHICLE
        for key, value in pairs.items():
            if infer_role(key) == key_role:
                return str(self.knowledge.lookup(topic, value))
        # Fall back to the first non-numeric value (the FM guesses the entity).
        for value in pairs.values():
            if not re.fullmatch(r"-?\d+(\.\d+)?", value):
                return str(self.knowledge.lookup(topic, value))
        return "unknown"

    # ------------------------------------------------------------------
    # Source suggestion
    # ------------------------------------------------------------------
    def _answer_sources(self, prompt: str) -> str:
        # Scope topic inference to the feature being asked about (the
        # agenda above it may mention other knowledge features).
        match = re.search(r'The feature "([^"]+)" \(([^)]*)\)', prompt, re.DOTALL)
        lowered = (f"{match.group(1)} {match.group(2)}" if match else prompt).lower()
        if "weather" in lowered or "precipitation" in lowered or "temperature" in lowered:
            topic = "weather_history"
        elif "density" in lowered:
            topic = "city_population_density"
        elif "income" in lowered:
            topic = "city_median_income"
        elif "risk" in lowered or "insurance" in lowered:
            topic = "car_make_risk"
        else:
            topic = "generic"
        sources = self.knowledge.sources_for(topic)
        return "\n".join(f"- {s}" for s in sources)

    # ------------------------------------------------------------------
    # FM-driven feature removal (§3.2 future work)
    # ------------------------------------------------------------------
    def _answer_feature_removal(self, agenda: AgendaView) -> str:
        """Flag redundant generated features.

        The FM reads the descriptions: when several monotone transforms of
        the same base column coexist (normalization + log of X), all but
        the domain-preferred one are redundant; features derived from
        identifier-like columns carry no signal."""
        remove: list[str] = []
        monotone_by_base: dict[str, list[_FeatureInfo]] = {}
        for info in agenda.features.values():
            tag = derivation_tag(info.description)
            if tag in ("normalization", "log_transform", "squared"):
                base = self._base_name(info)
                if base != info.name:
                    monotone_by_base.setdefault(base, []).append(info)
            if tag and infer_role(self._base_name(info)) == ColumnRole.IDENTIFIER:
                remove.append(info.name)
        preference = {"log_transform": 0, "normalization": 1, "squared": 2}
        for base, variants in monotone_by_base.items():
            if len(variants) < 2:
                continue
            ordered = sorted(
                variants, key=lambda v: preference.get(derivation_tag(v.description), 9)
            )
            remove.extend(v.name for v in ordered[1:])
        return json.dumps({"remove": sorted(set(remove))})

    # ------------------------------------------------------------------
    # CAAFE-style unguided code generation
    # ------------------------------------------------------------------
    def _answer_caafe(self, prompt: str, agenda: AgendaView, rng: np.random.Generator) -> str:
        """Free-form feature code in CAAFE's style.

        Same semantic pair scoring as the binary operator (the FM is the
        same model), but unguided: the combinations drift toward numeric
        attributes, the walk is iteration-indexed rather than budgeted,
        and — crucially — the emitted code carries **no NaN or zero
        guards** (CAAFE's prompt does not ask for them)."""
        combos = self._binary_candidates(agenda)
        if not combos:
            return "```python\n# no further features\n```"
        # Weighted sampling over the ranked space, like the operator
        # selector's sampling strategy but without guards or budget logic.
        weights = np.array([c[0] for c in combos])
        _, op, a, b = combos[int(rng.choice(len(combos), p=weights / weights.sum()))]
        name = f"{a}_{self._OP_WORD[op]}_{b}"
        comment = {"/": "ratio", "*": "interaction", "-": "difference", "+": "sum"}[op]
        code = (
            f"# {comment} of {a} and {b}\n"
            f"df[{name!r}] = df[{a!r}] {op} df[{b!r}]\n"
        )
        return f"```python\n{code}```"
