"""A transport-backed FM client: the shape of a real HTTP backend.

Everything above this module treats a foundation model as ``prompt in,
text out``; this module supplies the layer a production deployment puts
under that contract — a request/response **transport** with the failure
modes real APIs actually have (rate limits with ``Retry-After``, server
errors, timeouts, connection resets) and the latency that makes
request-level concurrency worth building.

:class:`Transport`
    The protocol: ``send(TransportRequest) -> TransportResponse``, plus a
    coroutine ``asend`` (default: ``send`` offloaded to a worker thread)
    so the async executor can overlap waits on its event loop.
:class:`SimulatedHTTPTransport`
    A stand-in HTTP server: per-request latency drawn from a seeded
    distribution, failure injection on every axis, and *real* sleeps
    (``time.sleep`` / ``asyncio.sleep``) so measured makespans mean what
    they claim.  Outcomes are a deterministic function of
    ``(seed, prompt, attempt)`` — independent of thread or task
    interleaving — so failure-injection tests are reproducible under any
    executor.
:class:`ScriptedTransport`
    Exact outcome scripting for adversarial tests: a list of responses
    and exceptions consumed in send order.
:class:`TransportFMClient`
    An :class:`~repro.fm.base.FMClient` over any transport.  It keeps no
    per-call state (``is_stateless()`` is True) — entropy, retries, and
    rate limiting all live server-side — which is exactly what lets the
    stage scheduler physically fan independent stages out through one
    shared async executor.

Status mapping (client side): 2xx returns the body text; 429 raises
:class:`~repro.fm.errors.FMRateLimitError` carrying the server's
``Retry-After``; 5xx raises :class:`~repro.fm.errors.FMServerError`;
wire-level :class:`TransportTimeout` / :class:`TransportConnectionReset`
raise :class:`~repro.fm.errors.FMTimeoutError` /
:class:`~repro.fm.errors.FMConnectionError`.  All of these are
:class:`~repro.fm.errors.FMError` subclasses, so the executor's
:class:`~repro.fm.executor.RetryPolicy` drives recovery end-to-end —
including honouring ``Retry-After`` over the computed backoff schedule.
"""

from __future__ import annotations

import abc
import asyncio
import contextvars
import hashlib
import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.fm.base import FMClient
from repro.fm.cost import CostModel
from repro.fm.errors import (
    FMConnectionError,
    FMError,
    FMRateLimitError,
    FMServerError,
    FMTimeoutError,
)

__all__ = [
    "ScriptedTransport",
    "SimulatedHTTPTransport",
    "Transport",
    "TransportConnectionReset",
    "TransportFMClient",
    "TransportRequest",
    "TransportResponse",
    "TransportTimeout",
]


@dataclass(frozen=True)
class TransportRequest:
    """One wire-level completion request."""

    model: str
    prompt: str
    temperature: float = 0.0


@dataclass(frozen=True)
class TransportResponse:
    """One wire-level answer: an HTTP-style status plus the body text.

    ``retry_after_s`` carries the server's ``Retry-After`` header on 429
    responses; ``latency_s`` is how long the server took (the simulated
    transport reports the latency it actually slept).
    """

    status: int
    text: str = ""
    retry_after_s: float | None = None
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class TransportTimeout(Exception):
    """The wire-level deadline expired before the server answered."""


class TransportConnectionReset(Exception):
    """The connection dropped mid-request (reset, broken pipe)."""


class Transport(abc.ABC):
    """Pluggable request/response channel under :class:`TransportFMClient`.

    Implementations may *return* failure statuses (429, 5xx) or *raise*
    :class:`TransportTimeout` / :class:`TransportConnectionReset` for
    failures that never produce a response — mirroring how an HTTP
    library behaves.
    """

    @abc.abstractmethod
    def send(self, request: TransportRequest) -> TransportResponse:
        """Execute one request, blocking until the response (or failure)."""

    async def asend(self, request: TransportRequest) -> TransportResponse:
        """Coroutine form of :meth:`send`.

        The default offloads the blocking :meth:`send` to the running
        loop's default thread pool; transports with a native async path
        override this to await on the loop itself.
        """
        return await asyncio.get_running_loop().run_in_executor(
            None, self.send, request
        )


# ----------------------------------------------------------------------
# Simulated HTTP transport: latency + failure injection, deterministic.
# ----------------------------------------------------------------------
@dataclass
class TransportStats:
    """Counters a transport accumulates across its lifetime (lock-free
    reads are fine; writers hold the transport's lock)."""

    n_sent: int = 0
    n_ok: int = 0
    n_rate_limited: int = 0
    n_server_errors: int = 0
    n_timeouts: int = 0
    n_resets: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "n_sent": self.n_sent,
            "n_ok": self.n_ok,
            "n_rate_limited": self.n_rate_limited,
            "n_server_errors": self.n_server_errors,
            "n_timeouts": self.n_timeouts,
            "n_resets": self.n_resets,
        }


def _default_responder(request: TransportRequest) -> str:
    digest = hashlib.sha256(request.prompt.encode()).hexdigest()[:12]
    return f"simulated completion {digest}"


class SimulatedHTTPTransport(Transport):
    """Models a rate-limited HTTP completion endpoint.

    Parameters
    ----------
    responder:
        ``TransportRequest -> str`` producing the success body.  The
        *server* may be stateful (e.g. delegating to a seeded
        :class:`~repro.fm.simulated.SimulatedFM` for sampling diversity);
        the *client* above this transport stays stateless either way.
    base_latency_s / jitter_s:
        Per-request service time: ``base + U(0, jitter)``, drawn from a
        seeded RNG keyed on ``(seed, prompt, attempt)``.
    rate_limit_rate / server_error_rate / timeout_rate / reset_rate:
        Per-request failure probabilities, evaluated in that order from
        one uniform draw keyed the same way — so a given ``(prompt,
        attempt)`` pair always meets the same fate regardless of how the
        executor interleaves it.  An *attempt* is the per-prompt send
        count this transport has seen, which is how retry recovery
        happens naturally: the first send of a prompt may 429, its retry
        is a different attempt and re-rolls.
    retry_after_s:
        The ``Retry-After`` value attached to 429 responses.
    spike_rate / spike_latency_s:
        Tail-latency injection: with probability ``spike_rate`` a request
        pays ``spike_latency_s`` *extra* service time (a cold shard, a GC
        pause).  The spike roll is drawn *after* the latency and outcome
        rolls from the same keyed RNG, so enabling spikes changes
        nothing about which requests succeed or fail under a given seed —
        it is what hedging benchmarks point their p99 at.
    capacity:
        In-flight admission cap modelling a concurrency-limited server:
        while ``capacity`` requests are being serviced, further sends are
        answered instantly with 429 + ``Retry-After`` (no service time
        consumed).  ``None`` (default) disables the cap.  This is the
        load shape AIMD adapts to — a fixed high client concurrency
        slams into 429 storms, an adaptive one settles near capacity.
    sleep:
        When True (default), actually sleep the drawn latency —
        ``time.sleep`` in :meth:`send`, ``asyncio.sleep`` in
        :meth:`asend` — so measured wall clocks reflect real overlap.
        Set False for fast logical tests.
    """

    def __init__(
        self,
        responder: Callable[[TransportRequest], str] | None = None,
        base_latency_s: float = 0.02,
        jitter_s: float = 0.01,
        rate_limit_rate: float = 0.0,
        server_error_rate: float = 0.0,
        timeout_rate: float = 0.0,
        reset_rate: float = 0.0,
        retry_after_s: float = 0.05,
        spike_rate: float = 0.0,
        spike_latency_s: float = 0.0,
        capacity: int | None = None,
        seed: int = 0,
        sleep: bool = True,
    ) -> None:
        total = rate_limit_rate + server_error_rate + timeout_rate + reset_rate
        if total > 1.0:
            raise ValueError(f"failure rates sum to {total}, must be <= 1")
        if not 0.0 <= spike_rate <= 1.0:
            raise ValueError(f"spike_rate must be in [0, 1], got {spike_rate}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.responder = responder or _default_responder
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self.rate_limit_rate = rate_limit_rate
        self.server_error_rate = server_error_rate
        self.timeout_rate = timeout_rate
        self.reset_rate = reset_rate
        self.retry_after_s = retry_after_s
        self.spike_rate = spike_rate
        self.spike_latency_s = spike_latency_s
        self.capacity = capacity
        self.seed = seed
        self.sleep = sleep
        self.stats = TransportStats()
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._in_flight = 0

    # ------------------------------------------------------------------
    def _next_attempt(self, prompt: str) -> int:
        with self._lock:
            attempt = self._attempts.get(prompt, 0) + 1
            self._attempts[prompt] = attempt
            self.stats.n_sent += 1
            return attempt

    def _plan(self, request: TransportRequest) -> tuple[float, str]:
        """Draw (latency, outcome) for this send, keyed on request identity."""
        attempt = self._next_attempt(request.prompt)
        key = f"{self.seed}:{attempt}:{request.prompt}"
        rng = random.Random(key)
        latency = self.base_latency_s + rng.uniform(0.0, self.jitter_s)
        roll = rng.random()
        if roll < self.rate_limit_rate:
            outcome = "rate_limit"
        elif roll < self.rate_limit_rate + self.server_error_rate:
            outcome = "server_error"
        elif roll < self.rate_limit_rate + self.server_error_rate + self.timeout_rate:
            outcome = "timeout"
        elif roll < (
            self.rate_limit_rate
            + self.server_error_rate
            + self.timeout_rate
            + self.reset_rate
        ):
            outcome = "reset"
        else:
            outcome = "ok"
        # Spike roll drawn last so enabling spikes never perturbs the
        # latency/outcome draws of an existing seed.
        if self.spike_rate > 0.0 and rng.random() < self.spike_rate:
            latency += self.spike_latency_s
        return latency, outcome

    def _settle(self, request: TransportRequest, latency: float, outcome: str) -> TransportResponse:
        """Turn a planned outcome into a response or a raised failure."""
        with self._lock:
            if outcome == "ok":
                self.stats.n_ok += 1
            elif outcome == "rate_limit":
                self.stats.n_rate_limited += 1
            elif outcome == "server_error":
                self.stats.n_server_errors += 1
            elif outcome == "timeout":
                self.stats.n_timeouts += 1
            else:
                self.stats.n_resets += 1
        if outcome == "timeout":
            raise TransportTimeout(f"deadline expired after {latency:.3f}s")
        if outcome == "reset":
            raise TransportConnectionReset("connection reset by peer")
        if outcome == "rate_limit":
            return TransportResponse(
                status=429, retry_after_s=self.retry_after_s, latency_s=latency
            )
        if outcome == "server_error":
            return TransportResponse(status=503, latency_s=latency)
        return TransportResponse(
            status=200, text=self.responder(request), latency_s=latency
        )

    # ------------------------------------------------------------------
    # Capacity admission: a concurrency-limited server sheds load with
    # an instant 429 instead of queueing.  Only meaningful when requests
    # spend real time in flight (``sleep=True``).
    def _try_admit(self) -> bool:
        if self.capacity is None:
            return True
        with self._lock:
            if self._in_flight >= self.capacity:
                self.stats.n_sent += 1
                self.stats.n_rate_limited += 1
                return False
            self._in_flight += 1
            return True

    def _release(self) -> None:
        if self.capacity is not None:
            with self._lock:
                self._in_flight -= 1

    def _overload_response(self) -> TransportResponse:
        return TransportResponse(
            status=429, retry_after_s=self.retry_after_s, latency_s=0.0
        )

    # ------------------------------------------------------------------
    def send(self, request: TransportRequest) -> TransportResponse:
        if not self._try_admit():
            return self._overload_response()
        try:
            latency, outcome = self._plan(request)
            if self.sleep and latency > 0:
                time.sleep(latency)
        finally:
            self._release()
        return self._settle(request, latency, outcome)

    async def asend(self, request: TransportRequest) -> TransportResponse:
        if not self._try_admit():
            return self._overload_response()
        try:
            latency, outcome = self._plan(request)
            if self.sleep and latency > 0:
                await asyncio.sleep(latency)
        finally:
            self._release()
        return self._settle(request, latency, outcome)


# ----------------------------------------------------------------------
# Scripted transport: exact adversarial schedules for tests.
# ----------------------------------------------------------------------
class ScriptedTransport(Transport):
    """Replays a scripted sequence of outcomes in send order.

    Each script entry is a :class:`TransportResponse`, an exception
    *instance* to raise (e.g. ``TransportTimeout(...)``), or a plain
    string (shorthand for a 200 response with that body).  The cursor is
    lock-protected; exhaustion raises :class:`TransportConnectionReset`
    (the server hung up), which keeps exhaustion itself retryable and
    visible rather than a test-harness crash.  Every request is appended
    to :attr:`requests` for assertion.
    """

    def __init__(
        self, script: list[TransportResponse | Exception | str]
    ) -> None:
        self.script = list(script)
        self.requests: list[TransportRequest] = []
        self._cursor = 0
        self._lock = threading.Lock()

    def _next(self, request: TransportRequest) -> TransportResponse | Exception:
        with self._lock:
            self.requests.append(request)
            position = self._cursor
            self._cursor += 1
        if position >= len(self.script):
            return TransportConnectionReset(
                f"scripted transport exhausted after {len(self.script)} sends"
            )
        entry = self.script[position]
        if isinstance(entry, str):
            return TransportResponse(status=200, text=entry)
        return entry

    def send(self, request: TransportRequest) -> TransportResponse:
        outcome = self._next(request)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    async def asend(self, request: TransportRequest) -> TransportResponse:
        # No wire to wait on; yield once so cancellation points exist.
        await asyncio.sleep(0)
        return self.send(request)


# ----------------------------------------------------------------------
# The client: FMClient protocol over a transport.
# ----------------------------------------------------------------------
#: Latency the transport reported for the call this context is building a
#: response for.  A ContextVar is the one mechanism that is correct on
#: both dispatch paths: each worker thread has its own context, and each
#: asyncio task gets a copy of the context at creation — so concurrent
#: calls can never see each other's measurement, and the client itself
#: stays stateless.
_MEASURED_LATENCY: contextvars.ContextVar[float | None] = contextvars.ContextVar(
    "transport_measured_latency", default=None
)


class TransportFMClient(FMClient):
    """An :class:`~repro.fm.base.FMClient` speaking through a transport.

    This is the production shape: all per-call state (rate limiting,
    sampling entropy, retries-seen) lives on the server side of the
    transport, so the client itself is stateless —
    :meth:`~repro.fm.base.FMClient.is_stateless` is True and the stage
    scheduler may physically overlap independent stages through it.

    Under a synchronous executor, calls go through :meth:`Transport.send`
    (blocking); under :class:`~repro.fm.executor.AsyncFMExecutor`, the
    overridden coroutine path awaits :meth:`Transport.asend` on the
    executor's loop — thousands of in-flight requests without a thread
    apiece.
    """

    def __init__(
        self,
        transport: Transport,
        model: str = "transport",
        cost_model: CostModel | None = None,
        cache=None,
        budget=None,
    ) -> None:
        super().__init__(
            model=model,
            cost_model=cost_model or CostModel(model=model),
            cache=cache,
            budget=budget,
        )
        self.transport = transport

    # ------------------------------------------------------------------
    def build_response(self, prompt: str, text: str):
        """Wrap the completion, preferring the transport's *measured*
        latency over the token-modelled estimate.

        Real backends have real latency; reporting the cost model's
        token-based guess for them would make the ledger and per-stage
        schedule attribution fiction.  A transport that reported no
        latency (``latency_s=0.0``, e.g. a bare scripted response) keeps
        the modelled value.
        """
        response = super().build_response(prompt, text)
        measured = _MEASURED_LATENCY.get()
        if measured is not None:
            _MEASURED_LATENCY.set(None)
            if measured > 0:
                response = replace(response, latency_s=measured)
        return response

    def _raise_for_response(self, response: TransportResponse) -> str:
        if response.ok:
            _MEASURED_LATENCY.set(response.latency_s)
            return response.text
        if response.status == 429:
            raise FMRateLimitError(
                "rate limited (HTTP 429)", retry_after_s=response.retry_after_s
            )
        if response.status >= 500:
            raise FMServerError(
                f"server error (HTTP {response.status})", status=response.status
            )
        raise FMError(f"transport request failed (HTTP {response.status})")

    @staticmethod
    def _raise_for_wire_failure(exc: Exception) -> str:
        """One mapping for wire-level failures, shared by both paths so
        sync and async executors always classify them identically."""
        if isinstance(exc, TransportTimeout):
            raise FMTimeoutError(str(exc)) from exc
        if isinstance(exc, TransportConnectionReset):
            raise FMConnectionError(str(exc)) from exc
        raise exc

    def _complete_text(self, prompt: str, temperature: float) -> str:
        request = TransportRequest(self.model, prompt, temperature)
        try:
            response = self.transport.send(request)
        except (TransportTimeout, TransportConnectionReset) as exc:
            return self._raise_for_wire_failure(exc)
        return self._raise_for_response(response)

    async def _acomplete_with_state(
        self, prompt: str, temperature: float, state: object | None
    ) -> str:
        del state  # stateless: nothing was reserved
        request = TransportRequest(self.model, prompt, temperature)
        try:
            response = await self.transport.asend(request)
        except (TransportTimeout, TransportConnectionReset) as exc:
            return self._raise_for_wire_failure(exc)
        return self._raise_for_response(response)
