"""Mini scikit-learn substrate for the SMARTFEAT reproduction.

Implements exactly what the paper's evaluation needs, with a
scikit-learn-compatible estimator API (``fit`` / ``predict`` /
``predict_proba``):

* the five downstream classifiers of Section 4.1 — LR, GaussianNB,
  Random Forest, Extra Trees, and a 2×100-unit ReLU DNN;
* Area Under the ROC Curve as the primary metric;
* 75/25 splitting and (stratified) k-fold cross-validation;
* the three Table 6 feature-selection metrics: information gain (mutual
  information), recursive feature elimination, and Gini-based tree
  feature importance.
"""

from repro.ml.base import BaseEstimator, clone
from repro.ml.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    SimpleImputer,
    StandardScaler,
)
from repro.ml.metrics import accuracy_score, log_loss, roc_auc_score
from repro.ml.linear import LinearRegressionScorer, LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import ExtraTreesClassifier, RandomForestClassifier
from repro.ml.neural import MLPClassifier
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_auc,
    train_test_split,
)
from repro.ml.feature_selection import (
    mutual_info_classif,
    rfe_ranking,
    tree_feature_importance,
)
from repro.ml.registry import MODEL_NAMES, make_model

__all__ = [
    "BaseEstimator",
    "DecisionTreeClassifier",
    "ExtraTreesClassifier",
    "GaussianNB",
    "KFold",
    "KNeighborsClassifier",
    "LabelEncoder",
    "LinearRegressionScorer",
    "LogisticRegression",
    "MLPClassifier",
    "MODEL_NAMES",
    "MinMaxScaler",
    "RandomForestClassifier",
    "SimpleImputer",
    "StandardScaler",
    "StratifiedKFold",
    "accuracy_score",
    "clone",
    "cross_val_auc",
    "log_loss",
    "make_model",
    "mutual_info_classif",
    "rfe_ranking",
    "roc_auc_score",
    "train_test_split",
    "tree_feature_importance",
]
