"""Estimator base class and cloning, mirroring the scikit-learn contract."""

from __future__ import annotations

import copy
import inspect
from typing import Any

__all__ = ["BaseEstimator", "clone"]


class BaseEstimator:
    """Base class giving estimators ``get_params`` / ``set_params`` / ``repr``.

    Subclasses must store every constructor argument as an attribute of the
    same name (the scikit-learn convention); :func:`clone` relies on it.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, p in signature.parameters.items()
            if name != "self" and p.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> dict[str, Any]:
        """Return constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({args})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of *estimator* with identical parameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))
