"""Feature-selection metrics for Table 6: information gain, RFE, tree importance.

The paper evaluates the percentage of generated features appearing in the
top-10 under three scikit-learn selectors: mutual information (IG),
recursive feature elimination (RFE), and the Gini-based tree feature
importance (FI).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import StandardScaler

__all__ = ["mutual_info_classif", "rfe_ranking", "tree_feature_importance"]


def _discretise(column: np.ndarray, max_bins: int = 10) -> np.ndarray:
    """Quantile-bin a continuous column into at most *max_bins* codes."""
    distinct = np.unique(column)
    if len(distinct) <= max_bins:
        codes = np.searchsorted(distinct, column)
        return codes
    edges = np.quantile(column, np.linspace(0, 1, max_bins + 1)[1:-1])
    return np.searchsorted(edges, column)


def mutual_info_classif(X: np.ndarray, y: np.ndarray, max_bins: int = 10) -> np.ndarray:
    """Mutual information (information gain) of each feature with *y*.

    Continuous features are quantile-discretised; the estimator is the
    plug-in MI over the empirical joint distribution, which preserves the
    ranking behaviour the Table 6 comparison needs.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    n = len(y)
    scores = np.zeros(X.shape[1])
    y_vals, y_counts = np.unique(y, return_counts=True)
    p_y = y_counts / n
    for j in range(X.shape[1]):
        codes = _discretise(X[:, j], max_bins=max_bins)
        mi = 0.0
        for code in np.unique(codes):
            mask = codes == code
            p_x = mask.mean()
            for yi, p_yi in zip(y_vals, p_y):
                p_joint = (mask & (y == yi)).mean()
                if p_joint > 0:
                    mi += p_joint * np.log(p_joint / (p_x * p_yi))
        scores[j] = max(mi, 0.0)
    return scores


def rfe_ranking(
    X: np.ndarray,
    y: np.ndarray,
    estimator: BaseEstimator | None = None,
    step: int = 1,
) -> np.ndarray:
    """Recursive feature elimination ranking (1 = most important).

    Repeatedly fits *estimator* (default: standardised logistic regression)
    and removes the weakest feature(s) until none remain; the elimination
    order, reversed, is the ranking — mirroring ``sklearn.RFE.ranking_``.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    n_features = X.shape[1]
    estimator = estimator if estimator is not None else LogisticRegression()
    remaining = list(range(n_features))
    ranking = np.zeros(n_features, dtype=np.int64)
    next_rank = n_features
    while remaining:
        if len(remaining) == 1:
            ranking[remaining[0]] = 1
            break
        sub = StandardScaler().fit_transform(X[:, remaining])
        model = clone(estimator)
        model.fit(sub, y)
        if hasattr(model, "coef_") and model.coef_ is not None:
            weights = np.abs(model.coef_)
        elif getattr(model, "feature_importances_", None) is not None:
            weights = model.feature_importances_
        else:
            raise ValueError("estimator exposes neither coef_ nor feature_importances_")
        drop_count = min(step, len(remaining) - 1)
        weakest = np.argsort(weights)[:drop_count]
        for local in sorted(weakest, key=lambda i: weights[i]):
            ranking[remaining[local]] = next_rank
            next_rank -= 1
        remaining = [f for i, f in enumerate(remaining) if i not in set(weakest.tolist())]
    return ranking


def tree_feature_importance(
    X: np.ndarray, y: np.ndarray, n_estimators: int = 25, seed: int = 0
) -> np.ndarray:
    """Gini-based feature importances from a random forest (Table 6's "FI")."""
    from repro.ml.forest import RandomForestClassifier

    forest = RandomForestClassifier(n_estimators=n_estimators, max_depth=8, seed=seed)
    forest.fit(np.asarray(X, dtype=np.float64), np.asarray(y).astype(np.int64))
    return forest.feature_importances_


def top_k_features(scores: np.ndarray, names: list[str], k: int = 10) -> list[str]:
    """Names of the *k* highest-scoring features (stable on ties)."""
    order = np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")
    return [names[i] for i in order[:k]]
