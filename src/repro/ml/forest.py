"""Tree ensembles: Random Forest and Extra Trees (the paper's RF and ET)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["ExtraTreesClassifier", "RandomForestClassifier"]


class _BaseForest(BaseEstimator):
    """Shared fit/predict machinery for bagged tree ensembles."""

    _splitter = "best"
    _bootstrap = True

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int | None = 12,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseForest":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        rng = np.random.default_rng(self.seed)
        self.estimators_ = []
        importances = np.zeros(X.shape[1])
        for i in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self._splitter,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if self._bootstrap:
                idx = rng.integers(0, len(X), size=len(X))
                # A bootstrap draw can miss a class on small data; redraw a few times.
                for _ in range(10):
                    if len(np.unique(y[idx])) > 1:
                        break
                    idx = rng.integers(0, len(X), size=len(X))
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        X = np.asarray(X, dtype=np.float64)
        p1 = np.zeros(len(X))
        for tree in self.estimators_:
            p1 += tree.predict_proba(X)[:, 1]
        p1 /= len(self.estimators_)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)


class RandomForestClassifier(_BaseForest):
    """Bootstrap-bagged CART trees with per-node ``sqrt`` feature sampling."""

    _splitter = "best"
    _bootstrap = True


class ExtraTreesClassifier(_BaseForest):
    """Extremely randomised trees: no bootstrap, random per-feature thresholds."""

    _splitter = "random"
    _bootstrap = False
