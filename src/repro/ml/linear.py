"""Linear models: logistic regression (the paper's "LR") and a least-squares scorer."""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator

__all__ = ["LinearRegressionScorer", "LogisticRegression"]


class LogisticRegression(BaseEstimator):
    """L2-regularised binary logistic regression fitted with L-BFGS.

    Matches the scikit-learn default configuration (``C=1.0``, lbfgs,
    intercept).  The paper's "Linear Regression (LR)" downstream model is a
    linear classifier scored with AUC; logistic regression is the
    scikit-learn estimator fitting that description.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        self.C = C
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("LogisticRegression expects binary 0/1 targets")
        n, d = X.shape
        signs = 2.0 * y - 1.0  # {-1, +1}
        alpha = 1.0 / (2.0 * self.C)

        def loss_grad(w: np.ndarray) -> tuple[float, np.ndarray]:
            coef, bias = w[:d], w[d]
            margins = signs * (X @ coef + bias)
            # log(1 + exp(-m)) computed stably.
            loss = np.logaddexp(0.0, -margins).sum() + alpha * coef @ coef
            probs = 1.0 / (1.0 + np.exp(np.clip(margins, -500, 500)))
            weighted = -signs * probs
            grad_coef = X.T @ weighted + 2.0 * alpha * coef
            grad_bias = weighted.sum()
            return float(loss), np.concatenate([grad_coef, [grad_bias]])

        w0 = np.zeros(d + 1)
        result = optimize.minimize(
            loss_grad,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        p1 = 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)


class LinearRegressionScorer(BaseEstimator):
    """Ordinary least squares on 0/1 targets, scored as a ranking model.

    Provided for completeness against the paper's literal "Linear
    Regression" naming; predicted values serve as AUC-ranking scores with
    probabilities clipped to ``[0, 1]``.
    """

    def __init__(self, ridge: float = 1e-8) -> None:
        self.ridge = ridge
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressionScorer":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        design = np.column_stack([X, np.ones(n)])
        gram = design.T @ design + self.ridge * np.eye(d + 1)
        weights = np.linalg.solve(gram, design.T @ y)
        self.coef_ = weights[:d]
        self.intercept_ = float(weights[d])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearRegressionScorer is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = np.clip(self.decision_function(X), 0.0, 1.0)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.5).astype(np.int64)
