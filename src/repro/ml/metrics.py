"""Classification metrics: ROC AUC (the paper's primary metric) and helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy_score", "log_loss", "roc_auc_score"]


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the Mann–Whitney U statistic.

    Ties in *y_score* contribute half, matching scikit-learn.  Raises if
    only one class is present, since AUC is undefined there.
    """
    y_true = np.asarray(y_true).astype(np.int64)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_score.shape}")
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score requires both classes present")
    order = np.argsort(y_score, kind="stable")
    ranks = np.empty(len(y_score), dtype=np.float64)
    sorted_scores = y_score[order]
    # Average ranks over tied groups.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = ranks[y_true == 1].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        raise ValueError("accuracy_score on empty input")
    return float((y_true == y_pred).mean())


def log_loss(y_true: np.ndarray, y_prob: np.ndarray, eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted positive-class probabilities."""
    y_true = np.asarray(y_true, dtype=np.float64)
    p = np.clip(np.asarray(y_prob, dtype=np.float64), eps, 1.0 - eps)
    return float(-(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p)).mean())
