"""Data splitting and cross-validation.

The paper's protocol (Section 4.1): random 75/25 train/test partition and
10-fold cross-validation, AUC as the metric.  :func:`cross_val_auc` is the
workhorse used by the evaluation harness and the CAAFE baseline's
validation step.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import roc_auc_score

__all__ = ["KFold", "StratifiedKFold", "cross_val_auc", "train_test_split"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.25,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into train/test; stratified on *y* by default.

    The default ``test_size=0.25`` matches the paper's 75/25 partition.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y length mismatch")
    rng = np.random.default_rng(seed)
    n = len(y)
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            n_test = max(1, int(round(test_size * len(members))))
            test_idx.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Plain k-fold splitter over shuffled row positions."""

    def __init__(self, n_splits: int = 10, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold that preserves class proportions in every fold."""

    def __init__(self, n_splits: int = 10, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        per_class_folds: list[list[np.ndarray]] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            per_class_folds.append(np.array_split(members, self.n_splits))
        for i in range(self.n_splits):
            test_idx = np.concatenate([folds[i] for folds in per_class_folds])
            test_mask = np.zeros(len(y), dtype=bool)
            test_mask[test_idx] = True
            yield np.flatnonzero(~test_mask), np.flatnonzero(test_mask)


def cross_val_auc(
    model: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    seed: int = 0,
) -> list[float]:
    """Stratified k-fold cross-validated AUC scores for *model*.

    A fresh clone is fitted per fold.  Folds where AUC is undefined (a
    single class in the test fold — possible on tiny data) are skipped.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    splitter = StratifiedKFold(n_splits=n_splits, seed=seed)
    scores: list[float] = []
    for train_idx, test_idx in splitter.split(y):
        if len(np.unique(y[test_idx])) < 2 or len(np.unique(y[train_idx])) < 2:
            continue
        fold_model = clone(model)
        fold_model.fit(X[train_idx], y[train_idx])
        prob = fold_model.predict_proba(X[test_idx])[:, 1]
        scores.append(roc_auc_score(y[test_idx], prob))
    if not scores:
        raise ValueError("no valid folds: target appears single-class")
    return scores
