"""Gaussian naive Bayes, the paper's "NB" downstream model."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["GaussianNB"]


class GaussianNB(BaseEstimator):
    """Per-class Gaussian likelihoods with variance smoothing.

    Mirrors scikit-learn's ``GaussianNB`` with
    ``var_smoothing=1e-9 * max feature variance``.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("GaussianNB needs at least two classes")
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        theta, var, prior = [], [], []
        for label in self.classes_:
            members = X[y == label]
            theta.append(members.mean(axis=0))
            var.append(members.var(axis=0) + epsilon)
            prior.append(len(members) / len(X))
        self.theta_ = np.array(theta)
        self.var_ = np.array(var)
        self.class_prior_ = np.array(prior)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((len(X), len(self.classes_)))
        for i in range(len(self.classes_)):
            log_prior = np.log(self.class_prior_[i])
            gauss = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[i])
                + (X - self.theta_[i]) ** 2 / self.var_[i],
                axis=1,
            )
            out[:, i] = log_prior + gauss
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def predict(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        return self.classes_[jll.argmax(axis=1)]
